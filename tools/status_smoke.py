#!/usr/bin/env python3
"""CI smoke test for the live run registry and coverage surface.

Launches a real ``repro check paxos --coverage`` run in a background
process, polls ``repro status`` until the registry reports it finished,
then asserts that ``repro coverage`` lists every declared Paxos handler as
exercised.  Exercises the same cross-process read path an operator uses —
argparse, registry discovery, heartbeat staleness judgement, coverage
rendering — not the in-process API.

Exit code 0 on success; non-zero with a diagnostic dump on any failure.
Usage: ``python tools/status_smoke.py [--runs-root DIR] [--timeout SECONDS]``
"""

import argparse
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: Every handler the Paxos protocol declares; `repro coverage` must show
#: each one as exercised after a full default check run.
PAXOS_HANDLERS = ("Prepare", "PrepareResponse", "Accept", "Learn", "init", "propose")


def _repro(args, **kwargs):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        **kwargs,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-root", default=os.path.join(REPO_ROOT, ".lmc", "runs"))
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)
    registry = ["--registry-root", args.runs_root]

    env = dict(os.environ, PYTHONPATH=SRC)
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "check",
            "paxos",
            "--metrics-interval",
            "0.2",
            "--coverage",
            *registry,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    # Poll the status surface from *this* process until the run finishes.
    status_out = ""
    deadline = time.time() + args.timeout
    finished = False
    while time.time() < deadline:
        result = _repro(["status", *registry])
        status_out = result.stdout + result.stderr
        if result.returncode == 0 and "status        : finished" in result.stdout:
            finished = True
            break
        if child.poll() is not None and child.returncode != 0:
            break  # child died; fall through to the diagnostics
        time.sleep(0.5)

    child_out, _ = child.communicate(timeout=args.timeout)
    failures = []
    if child.returncode != 0:
        failures.append(f"check run exited {child.returncode}")
    if not finished:
        failures.append("status never reported the run finished")

    coverage = _repro(["coverage", *registry])
    if coverage.returncode != 0:
        failures.append(f"repro coverage exited {coverage.returncode}")
    for handler in PAXOS_HANDLERS:
        if handler not in coverage.stdout:
            failures.append(f"coverage output is missing handler {handler!r}")
    if "UNEXERCISED" in coverage.stdout:
        failures.append("coverage reports unexercised Paxos transitions")

    runs = _repro(["runs", *registry])
    if failures:
        print("STATUS SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        for title, text in (
            ("check output", child_out),
            ("last status output", status_out),
            ("coverage output", coverage.stdout + coverage.stderr),
            ("runs output", runs.stdout + runs.stderr),
        ):
            print(f"\n--- {title} ---\n{text}", file=sys.stderr)
        return 1

    print("status smoke OK")
    print(runs.stdout, end="")
    print(coverage.stdout, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
