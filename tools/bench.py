#!/usr/bin/env python3
"""Before/after benchmark harness for the LMC hot-path caches.

Runs the Fig. 10/11 workloads (and the §5.5/§5.6 snapshot experiments) in
two modes — *cached* (every cache enabled, the library default) and
*uncached* (interning, encoding caches, soundness memoization and
incremental enumeration all disabled, reproducing the pre-optimization hot
path) — and writes ``BENCH_lmc.json`` with wall-clock, transition counts,
peak RSS and cache hit rates.

Every (workload, mode) pair executes in a fresh child process so each
measurement sees cold caches, an honest ``ru_maxrss``, and no JIT-warm
interpreter state from the other mode.  Wall-clock is the **minimum** over
``--repeat`` runs (minimum, not mean: scheduling noise only ever adds time).

A third leg (``--explore-workers N``, default 2; 0 disables) reruns every
workload with parallel frontier exploration on — caches as in cached mode —
and asserts the same counter/verdict/trace equality against the serial
cached run (docs/PERFORMANCE.md: the parallel merge must be semantics-
preserving, exactly like the caches).  The measured wall clock and
serial/parallel speedup are recorded; the payload also records ``cpus`` so
a reader can tell a real speedup environment from a single-core container,
where the speculative executor can only break even at best.

A fourth leg (on by default; ``--no-reduction`` disables) reruns every
workload with symmetry reduction and commutativity pruning on
(docs/REDUCTION.md).  Reduction legitimately shrinks visit counts, so this
leg gates only verdicts and bug sets and records ``reduction_ratio`` —
unreduced over reduced ``system_states_created``.  The dedicated
``paxos_sym`` workload (four nodes, three interchangeable acceptors, LMC-GEN)
must show at least the 2x ratio the reduction promises; the gate is
count-based and therefore deterministic.

A fifth leg (full suite only; ``--no-incremental`` disables) measures
checkpoint-based depth extension (docs/CHECKPOINTS.md): one child runs the
Fig. 10 sweep *incrementally* — cold at d=4 with a final checkpoint, then
``extend_depth`` through d=6, 8, 10, each leg exploring only the frontier
the larger bound unblocks.  Per-depth counters must equal the cold
``fig10_dN`` runs exactly; the gated ``incremental_speedup`` is the
deterministic work ratio — transitions the cold sweep executes over
transitions the incremental chain executes — and must reach 1.5x, while
``wall_speedup`` records the measured wall-clock ratio (noisy, never
gated, and dominated by snapshot serialization on these sub-second
workloads).

The harness *asserts* that all modes produce identical counters, verdicts
and witness traces — the caches are required to be semantics-preserving —
and exits non-zero on any divergence, which is what the CI perf-smoke job
keys on.  Wall-clock is recorded but never gated in ``--quick`` mode:
shared CI runners are too noisy to assert timing.

Usage::

    PYTHONPATH=src python tools/bench.py                 # full suite
    PYTHONPATH=src python tools/bench.py --quick         # CI smoke subset
    PYTHONPATH=src python tools/bench.py --verify-counts BENCH_lmc.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
if SRC_ROOT not in sys.path:
    sys.path.insert(0, SRC_ROOT)

#: Counter keys excluded from the cross-mode equality check: phase timers
#: are wall-clock, and the cache-hit counters are *about* the caches (the
#: uncached mode reports zeros for them by construction).
NONDETERMINISTIC_KEYS = ("phase_",)
CACHE_ONLY_KEYS = frozenset(
    {"sequence_cache_hits", "replay_cache_hits", "rejected_cache_evictions"}
)
#: Likewise excluded: these count parallel-exploration machinery (rounds
#: dispatched, shards, merge-suppressed rediscoveries), so serial runs
#: report zeros for them by construction.
EXPLORE_ONLY_KEYS = frozenset(
    {
        "explore_rounds_parallel",
        "explore_shards",
        "explore_merge_conflicts_suppressed",
    }
)
#: And these count the reduction machinery (docs/REDUCTION.md): orbit skips
#: and suppressed delivery orderings are zero with the knobs off and are
#: reported in the ``reduced`` leg's own section, not in ``counts``.
REDUCTION_ONLY_KEYS = frozenset({"symmetry_skips", "por_links_suppressed"})

#: Depths for the Fig. 10 sweep.  ``max_depth`` bounds *per-node* discovery
#: depth, which saturates around 9 on the single-proposal space, so this
#: brackets early, middle and full exploration.
FIG10_DEPTHS = (4, 6, 8, 10)

#: Synthetic workload name for the incremental-extension leg (the child
#: chains the whole ``fig10_dN`` series in one process, so it is not one of
#: the per-depth workloads).
INCREMENTAL_SERIES = "fig10_series"


def _filtered_counts(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic, mode-independent subset of a stats snapshot."""
    return {
        key: value
        for key, value in snapshot.items()
        if not key.startswith(NONDETERMINISTIC_KEYS)
        and key not in CACHE_ONLY_KEYS
        and key not in EXPLORE_ONLY_KEYS
        and key not in REDUCTION_ONLY_KEYS
    }


# -- workload definitions (imported lazily, children only) ---------------------


def _build_checker(workload: str, config_overrides: Dict[str, Any]):
    """Return ``(checker, initial_system)`` for a workload name.

    Imports live here so the parent process never loads ``repro`` — parents
    only fork children and compare their JSON reports.
    """
    from repro.core.checker import LocalModelChecker
    from repro.core.config import LMCConfig
    from repro.explore.budget import SearchBudget

    if workload == "paxos2_d6":
        # The deep parallel-exploration workload: two competing proposals
        # make the frontier wide enough (thousands of items per round) that
        # round sharding has real work to amortize dispatch against.
        from repro.protocols.paxos import PaxosAgreement, PaxosProtocol

        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"), (1, 1, "v1"))
        )
        config = LMCConfig.optimized(**config_overrides)
        return (
            LocalModelChecker(
                protocol, PaxosAgreement(0), SearchBudget(max_depth=6), config
            ),
            None,
        )

    if workload in ("paxos_opt", "paxos_gen") or workload.startswith("fig10_d"):
        from repro.protocols.paxos import PaxosAgreement, PaxosProtocol

        protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
        invariant = PaxosAgreement(0)
        if workload == "paxos_gen":
            config = LMCConfig.general(**config_overrides)
            budget = SearchBudget.unbounded()
        else:
            config = LMCConfig.optimized(**config_overrides)
            budget = (
                SearchBudget(max_depth=int(workload[len("fig10_d") :]))
                if workload.startswith("fig10_d")
                else SearchBudget.unbounded()
            )
        return LocalModelChecker(protocol, invariant, budget, config), None

    if workload == "paxos_sym":
        # The symmetry-reduction workload (docs/REDUCTION.md): four nodes,
        # one scripted proposer, so the three passive acceptors form one
        # symmetry class (group size 6).  LMC-GEN so the full Cartesian
        # product is actually enumerated — LMC-OPT on the correct protocol
        # creates no system states at all, leaving nothing to reduce — and
        # depth-bounded because the four-node product explodes past d=4.
        from repro.protocols.paxos import PaxosAgreement, PaxosProtocol

        protocol = PaxosProtocol(num_nodes=4, proposals=((0, 0, "v0"),))
        config = LMCConfig.general(**config_overrides)
        return (
            LocalModelChecker(
                protocol, PaxosAgreement(0), SearchBudget(max_depth=4), config
            ),
            None,
        )

    if workload == "paxos_faults":
        # Crash–restart scheduling on (docs/FAULTS.md): the single-proposal
        # space with one crash per node.  Count-equality gated like every
        # workload; wall-clock never gated.
        from repro.protocols.paxos import PaxosAgreement, PaxosProtocol

        protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
        config = LMCConfig.optimized(fault_events_enabled=True, **config_overrides)
        return (
            LocalModelChecker(
                protocol, PaxosAgreement(0), SearchBudget.unbounded(), config
            ),
            None,
        )

    if workload == "twophase_drops":
        # Omission-fault scheduling on (docs/FAULTS.md): presumed-abort 2PC
        # whose atomicity invariant only breaks when the checker drops the
        # coordinator's Decision message.  Bug-found gated in main() — this
        # leg exists to prove the drop sweep reaches real violations, and
        # count-equality gated across modes like every workload.
        from repro.protocols.twophase import Atomicity, TimeoutTwoPhaseCommit

        protocol = TimeoutTwoPhaseCommit(3)
        config = LMCConfig.optimized(drop_faults=True, **config_overrides)
        return (
            LocalModelChecker(
                protocol, Atomicity(), SearchBudget.unbounded(), config
            ),
            None,
        )

    if workload == "s55_snapshot":
        from repro.protocols.paxos import PaxosAgreement
        from repro.protocols.paxos.scenarios import (
            partial_choice_state,
            scenario_protocol,
        )

        checker = LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            config=LMCConfig.optimized(**config_overrides),
        )
        return checker, partial_choice_state()

    if workload == "s56_onepaxos":
        from repro.protocols.onepaxos import OnePaxosAgreement
        from repro.protocols.onepaxos.scenarios import (
            post_leaderchange_state,
            scenario_protocol,
        )

        protocol = scenario_protocol(buggy=True)
        checker = LocalModelChecker(
            protocol,
            OnePaxosAgreement(0),
            config=LMCConfig.optimized(**config_overrides),
        )
        return checker, post_leaderchange_state(protocol)

    raise SystemExit(f"unknown workload: {workload}")


def _run_child(workload: str, mode: str) -> None:
    """Child entry: run one (workload, mode) and print a JSON report."""
    if mode == "incremental":
        if workload != INCREMENTAL_SERIES:
            raise SystemExit(
                f"incremental mode runs the whole {INCREMENTAL_SERIES} chain, "
                f"not {workload!r}"
            )
        _run_incremental_child()
        return

    import resource

    from repro.model import hashing

    if mode == "uncached":
        hashing.configure_interning(False)
        hashing.configure_encoding_caches(False)
        overrides: Dict[str, Any] = {
            "memoize_soundness": False,
            "incremental_enumeration": False,
        }
    elif mode.startswith("explore"):
        # Parallel frontier exploration on top of the cached defaults.  Low
        # threshold/shard floor so even the smaller workloads actually cross
        # the dispatch path instead of silently staying serial.
        overrides = {
            "explore_workers": int(mode[len("explore") :]),
            "explore_round_threshold": 32,
            "explore_shard_min": 8,
        }
    elif mode == "reduced":
        # Symmetry + commutativity reduction on top of the cached defaults
        # (docs/REDUCTION.md).  Visit counts legitimately shrink, so this
        # leg is gated on verdicts and bug sets, never on counts.
        overrides = {"symmetry_reduction": True, "por_pruning": True}
    else:
        overrides = {}

    checker, initial = _build_checker(workload, overrides)
    # Register with the run registry (docs/OBSERVABILITY.md "Live
    # operations") so `repro runs`/`repro status` can watch long bench
    # children.  Best effort: a read-only checkout still benches.
    handle = None
    try:
        from repro.obs.registry import RunRegistry

        handle = RunRegistry().register(
            command="bench", workload=workload, algorithm=mode
        )
        checker.run_handle = handle
    except OSError:
        pass
    start = time.perf_counter()
    try:
        result = checker.run(initial)
    except BaseException as exc:
        if handle is not None:
            handle.finish(status="failed", error=repr(exc))
        raise
    wall_s = time.perf_counter() - start
    if handle is not None:
        handle.finish(
            status="finished",
            completed=result.completed,
            stop_reason=result.stop_reason,
            transitions=result.stats.transitions,
            wall_s=wall_s,
        )

    counts = _filtered_counts(result.stats.snapshot())
    report = {
        "wall_s": wall_s,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "config": {
            "fault_events_enabled": checker.config.fault_events_enabled,
            "max_crashes_per_node": checker.config.max_crashes_per_node,
            "max_total_crashes": checker.config.max_total_crashes,
            "drop_faults": checker.config.drop_faults,
            "max_drops": checker.config.max_drops,
            "duplicate_faults": checker.config.duplicate_faults,
            "duplicate_limit": checker.config.duplicate_limit,
            "partition_schedules": [
                [start, end, list(srcs), list(dests)]
                for start, end, srcs, dests in checker.config.partition_schedules
            ],
            "explore_workers": checker.config.explore_workers,
            "symmetry_reduction": checker.config.symmetry_reduction,
            "por_pruning": checker.config.por_pruning,
        },
        "counts": counts,
        "completed": result.completed,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
        "intern": hashing.intern_stats(),
        "cache_hits": {
            key: result.stats.snapshot()[key] for key in sorted(CACHE_ONLY_KEYS)
        },
        "explore": {
            key: result.stats.snapshot()[key] for key in sorted(EXPLORE_ONLY_KEYS)
        },
        "reduction": {
            key: result.stats.snapshot()[key] for key in sorted(REDUCTION_ONLY_KEYS)
        },
    }
    json.dump(report, sys.stdout)


def _run_incremental_child() -> None:
    """Child entry for the incremental leg: one chained Fig. 10 sweep.

    Runs ``fig10_d4`` cold with a final checkpoint, then builds a fresh
    checker per larger depth and feeds it the previous leg's snapshot via
    :meth:`~repro.core.checker.LocalModelChecker.extend_depth`, so each leg
    pays only for the frontier the new bound unblocks.  Reports per-depth
    wall clock and the same filtered counters as the normal child so the
    parent can assert equality against the cold ``fig10_dN`` runs.

    No run-registry handle here: four chained checkers sharing one
    heartbeat file would report a garbled depth series.
    """
    import resource
    import tempfile

    from repro.core.checkpoint import Checkpointer, load_checkpoint

    legs: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="bench-incremental-") as tmp:
        prev_path: Optional[str] = None
        for depth in FIG10_DEPTHS:
            workload = f"fig10_d{depth}"
            checker, _ = _build_checker(workload, {})
            path = os.path.join(tmp, f"{workload}.checkpoint.json")
            # ``every_rounds=None`` writes only the completed-pass snapshot
            # the next leg extends from — no mid-run cadence overhead.  The
            # deepest leg feeds no one, so it skips the write entirely.
            if depth != FIG10_DEPTHS[-1]:
                checker.checkpointer = Checkpointer(path)
            start = time.perf_counter()
            if prev_path is None:
                result = checker.run()
            else:
                result = checker.extend_depth(load_checkpoint(prev_path))
            wall_s = time.perf_counter() - start
            prev_path = path
            legs[workload] = {
                "wall_s": wall_s,
                "counts": _filtered_counts(result.stats.snapshot()),
                "completed": result.completed,
                "bugs": [bug.description for bug in result.bugs],
            }
    json.dump(
        {
            "legs": legs,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        },
        sys.stdout,
    )


# -- parent-side orchestration -------------------------------------------------


def _spawn(workload: str, mode: str) -> Dict[str, Any]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", workload, mode],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"child {workload}/{mode} failed:\n{proc.stderr}\n{proc.stdout}"
        )
    return json.loads(proc.stdout)


def _measure(workload: str, mode: str, repeat: int) -> Dict[str, Any]:
    """Best-of-``repeat`` child runs; counts must agree across repeats."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeat):
        report = _spawn(workload, mode)
        if best is None:
            best = report
        else:
            if report["counts"] != best["counts"]:
                raise SystemExit(
                    f"{workload}/{mode}: counts differ between repeats "
                    "(the checker must be deterministic)"
                )
            if report["wall_s"] < best["wall_s"]:
                best["wall_s"] = report["wall_s"]
            best["peak_rss_kb"] = min(best["peak_rss_kb"], report["peak_rss_kb"])
    assert best is not None
    return best


def _measure_incremental(repeat: int) -> Dict[str, Any]:
    """Best-of-``repeat`` incremental children; counts must agree across repeats."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeat):
        report = _spawn(INCREMENTAL_SERIES, "incremental")
        if best is None:
            best = report
            continue
        for workload, leg in report["legs"].items():
            kept = best["legs"][workload]
            if leg["counts"] != kept["counts"]:
                raise SystemExit(
                    f"{INCREMENTAL_SERIES}/{workload}: counts differ between "
                    "repeats (the checker must be deterministic)"
                )
            kept["wall_s"] = min(kept["wall_s"], leg["wall_s"])
        best["peak_rss_kb"] = min(best["peak_rss_kb"], report["peak_rss_kb"])
    assert best is not None
    return best


def _hit_rate(intern: Dict[str, int]) -> Optional[float]:
    total = intern.get("hits", 0) + intern.get("misses", 0)
    return round(intern["hits"] / total, 4) if total else None


def _compare_modes(
    workload: str, label: str, base: Dict[str, Any], other: Dict[str, Any]
) -> List[str]:
    """Equality errors between two mode reports ([] when semantics match)."""
    errors = []
    for field in ("counts", "completed", "bugs", "traces"):
        if base[field] != other[field]:
            errors.append(
                f"{workload}: {field} diverge between cached and {label} "
                f"modes:\n  cached: {base[field]}\n  {label}: {other[field]}"
            )
    return errors


def _reduction_ratio(
    base_counts: Dict[str, Any], reduced_counts: Dict[str, Any]
) -> Optional[float]:
    """Unreduced/reduced ``system_states_created`` (None when nothing ran)."""
    base = base_counts.get("system_states_created", 0)
    reduced = reduced_counts.get("system_states_created", 0)
    if base == 0 or reduced == 0:
        return None
    return round(base / reduced, 3)


def run_incremental_leg(
    results: Dict[str, Any], repeat: int, errors: List[str]
) -> None:
    """Measure the chained Fig. 10 extension and gate it against the cold sweep.

    Appends equality errors to ``errors`` and records the leg under
    ``results[INCREMENTAL_SERIES]``.  The entry carries the final depth's
    ``counts``/``completed``/``bugs`` so ``--verify-counts`` gates it like
    any other workload.
    """
    series = [f"fig10_d{depth}" for depth in FIG10_DEPTHS]
    print(f"[bench] {INCREMENTAL_SERIES} (checkpoint depth extension) ...", flush=True)
    report = _measure_incremental(repeat)
    cold_wall = warm_wall = 0.0
    for workload in series:
        leg = report["legs"][workload]
        cold = results[workload]
        for field in ("counts", "completed", "bugs"):
            if cold[field] != leg[field]:
                errors.append(
                    f"{INCREMENTAL_SERIES}/{workload}: {field} diverge between "
                    f"cold and extended runs:\n  cold:     {cold[field]}\n"
                    f"  extended: {leg[field]}"
                )
        cold_wall += cold["cached_wall_s"]
        warm_wall += leg["wall_s"]
    final = report["legs"][series[-1]]
    # The extended chain's stats accumulate across legs and must end equal
    # to the cold run at the final depth, so its ``transitions`` counter IS
    # the total exploration work the chain executed; the cold sweep re-pays
    # every shallower depth from scratch.  ``incremental_speedup`` is this
    # count-based work ratio — deterministic, hence the gated metric —
    # while ``wall_speedup`` records the measured (noisy, never gated)
    # wall-clock ratio.
    cold_transitions = sum(
        results[workload]["counts"]["transitions"] for workload in series
    )
    warm_transitions = final["counts"]["transitions"]
    results[INCREMENTAL_SERIES] = {
        "counts": final["counts"],
        "completed": final["completed"],
        "bugs": final["bugs"],
        "legs": {
            workload: {
                "wall_s": round(report["legs"][workload]["wall_s"], 4),
                "transitions": report["legs"][workload]["counts"]["transitions"],
            }
            for workload in series
        },
        "cold_sweep_wall_s": round(cold_wall, 4),
        "incremental_wall_s": round(warm_wall, 4),
        "wall_speedup": (
            round(cold_wall / warm_wall, 3) if warm_wall > 0 else None
        ),
        "cold_sweep_transitions": cold_transitions,
        "incremental_transitions": warm_transitions,
        "incremental_speedup": (
            round(cold_transitions / warm_transitions, 3) if warm_transitions else None
        ),
        "peak_rss_kb": report["peak_rss_kb"],
    }
    print(
        f"[bench]   cold_sweep={cold_wall:.3f}s incremental={warm_wall:.3f}s "
        f"incremental_speedup={results[INCREMENTAL_SERIES]['incremental_speedup']}x "
        f"(transitions) wall_speedup={results[INCREMENTAL_SERIES]['wall_speedup']}x",
        flush=True,
    )


def run_suite(
    workloads: List[str],
    repeat: int,
    explore_workers: int,
    reduction: bool,
    incremental: bool = True,
) -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    errors: List[str] = []
    for workload in workloads:
        print(f"[bench] {workload} ...", flush=True)
        cached = _measure(workload, "cached", repeat)
        uncached = _measure(workload, "uncached", repeat)
        errors.extend(_compare_modes(workload, "uncached", cached, uncached))
        speedup = (
            round(uncached["wall_s"] / cached["wall_s"], 3)
            if cached["wall_s"] > 0
            else None
        )
        results[workload] = {
            "config": cached["config"],
            "counts": cached["counts"],
            "completed": cached["completed"],
            "bugs": cached["bugs"],
            "cached_wall_s": round(cached["wall_s"], 4),
            "uncached_wall_s": round(uncached["wall_s"], 4),
            "speedup": speedup,
            "cached_peak_rss_kb": cached["peak_rss_kb"],
            "uncached_peak_rss_kb": uncached["peak_rss_kb"],
            "intern_hit_rate": _hit_rate(cached["intern"]),
            "cache_hits": cached["cache_hits"],
        }
        print(
            f"[bench]   cached={cached['wall_s']:.3f}s "
            f"uncached={uncached['wall_s']:.3f}s speedup={speedup}x",
            flush=True,
        )
        if explore_workers > 0:
            # Serial vs parallel exploration, both with warm caches: the
            # parallel merge must reproduce the serial run bit for bit.
            explore = _measure(workload, f"explore{explore_workers}", repeat)
            errors.extend(_compare_modes(workload, "explore", cached, explore))
            speedup_explore = (
                round(cached["wall_s"] / explore["wall_s"], 3)
                if explore["wall_s"] > 0
                else None
            )
            results[workload]["explore"] = {
                "config": explore["config"],
                "wall_s": round(explore["wall_s"], 4),
                "speedup_vs_serial": speedup_explore,
                "peak_rss_kb": explore["peak_rss_kb"],
                "counters": explore["explore"],
            }
            print(
                f"[bench]   explore({explore_workers}w)={explore['wall_s']:.3f}s "
                f"speedup_vs_serial={speedup_explore}x "
                f"rounds={explore['explore']['explore_rounds_parallel']}",
                flush=True,
            )
        if reduction:
            # Symmetry + commutativity reduction on (docs/REDUCTION.md).
            # Visit counts legitimately shrink, so unlike the other legs
            # this one gates only the verdict and the bug set; the witness
            # may be the orbit's canonical representative rather than the
            # unreduced run's, so traces are not compared either.
            reduced = _measure(workload, "reduced", repeat)
            for field in ("completed", "bugs"):
                if cached[field] != reduced[field]:
                    errors.append(
                        f"{workload}: {field} diverge between cached and "
                        f"reduced modes:\n  cached:  {cached[field]}\n"
                        f"  reduced: {reduced[field]}"
                    )
            ratio = _reduction_ratio(cached["counts"], reduced["counts"])
            results[workload]["reduced"] = {
                "config": reduced["config"],
                "wall_s": round(reduced["wall_s"], 4),
                "system_states_created": reduced["counts"].get(
                    "system_states_created", 0
                ),
                "soundness_calls": reduced["counts"].get("soundness_calls", 0),
                "counters": reduced["reduction"],
                "reduction_ratio": ratio,
            }
            print(
                f"[bench]   reduced={reduced['wall_s']:.3f}s "
                f"reduction_ratio={ratio}x "
                f"skips={reduced['reduction']['symmetry_skips']} "
                f"por={reduced['reduction']['por_links_suppressed']}",
                flush=True,
            )
    if incremental and all(f"fig10_d{d}" in results for d in FIG10_DEPTHS):
        run_incremental_leg(results, repeat, errors)
    if errors:
        raise SystemExit("count/verdict divergence:\n" + "\n".join(errors))
    return results


def verify_counts(results: Dict[str, Any], baseline_path: str) -> None:
    """Fail when counts drifted from a committed baseline (timing ignored)."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    errors = []
    for workload, entry in results.items():
        base = baseline.get("workloads", {}).get(workload)
        if base is None:
            continue  # baseline predates this workload; not a regression
        for field in ("counts", "completed", "bugs"):
            current = entry[field]
            if field == "counts":
                # A counter the baseline predates is not drift as long as
                # it is zero here — the schema grew, the work did not.
                current = {
                    key: value
                    for key, value in current.items()
                    if key in base[field] or value != 0
                }
            if current != base[field]:
                errors.append(
                    f"{workload}: {field} regressed vs {baseline_path}:\n"
                    f"  baseline: {base[field]}\n  current:  {current}"
                )
    if errors:
        raise SystemExit("baseline regression:\n" + "\n".join(errors))
    print(f"[bench] counts match baseline {baseline_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", nargs=2, metavar=("WORKLOAD", "MODE"))
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI subset: skips paxos_gen and the full-depth sweep",
    )
    parser.add_argument("--out", default=os.path.join(REPO_ROOT, "BENCH_lmc.json"))
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per (workload, mode); best kept"
    )
    parser.add_argument(
        "--verify-counts",
        metavar="BASELINE.json",
        help="compare counts/verdicts against a committed baseline "
        "(wall-clock is never compared)",
    )
    parser.add_argument(
        "--no-speedup-gate",
        action="store_true",
        help="skip the >=2x paxos_opt wall-clock assertion (implied by --quick)",
    )
    parser.add_argument(
        "--explore-workers",
        type=int,
        default=2,
        metavar="N",
        help="also run each workload with N-worker parallel exploration and "
        "gate its counts against the serial run (0 skips the leg)",
    )
    parser.add_argument(
        "--no-reduction",
        action="store_true",
        help="skip the symmetry/commutativity reduction leg "
        "(docs/REDUCTION.md); on by default so BENCH_lmc.json records "
        "reduction_ratio per workload",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="skip the checkpoint depth-extension leg (docs/CHECKPOINTS.md); "
        "on by default in the full suite (it needs the whole fig10 series, "
        "so --quick implies it)",
    )
    args = parser.parse_args()

    if args.child:
        _run_child(*args.child)
        return

    if args.quick:
        workloads = [
            "paxos_opt",
            "fig10_d6",
            "s55_snapshot",
            "paxos_faults",
            "twophase_drops",
            "paxos_sym",
        ]
        repeat = max(1, min(args.repeat, 2))
    else:
        workloads = [
            "paxos_opt",
            "paxos_gen",
            *[f"fig10_d{d}" for d in FIG10_DEPTHS],
            "s55_snapshot",
            "s56_onepaxos",
            "paxos_faults",
            "twophase_drops",
            "paxos2_d6",
            "paxos_sym",
        ]
        repeat = args.repeat

    results = run_suite(
        workloads,
        repeat,
        max(0, args.explore_workers),
        not args.no_reduction,
        incremental=not args.no_incremental,
    )

    # Write the report before any gating so a failing gate still leaves the
    # measurements on disk (CI uploads them as an artifact either way).
    payload = {
        "benchmark": "LMC hot-path caches (cached vs uncached)",
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "repeat": repeat,
        "quick": args.quick,
        "explore_workers": max(0, args.explore_workers),
        "workloads": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")

    if args.verify_counts:
        verify_counts(results, args.verify_counts)

    if not args.quick and not args.no_speedup_gate:
        speedup = results["paxos_opt"]["speedup"]
        if speedup is None or speedup < 2.0:
            raise SystemExit(
                f"paxos_opt speedup {speedup}x below the 2x target "
                "(rerun on an idle machine, or pass --no-speedup-gate)"
            )

    # The incremental gate is count-based, hence deterministic: transitions
    # the cold per-depth sweep executes over transitions the extension
    # chain executes (docs/CHECKPOINTS.md).  Wall-clock incremental_speedup
    # is recorded but never gated.
    inc_entry = results.get(INCREMENTAL_SERIES)
    if inc_entry is not None:
        ratio = inc_entry["incremental_speedup"]
        if ratio is None or ratio < 1.5:
            raise SystemExit(
                f"{INCREMENTAL_SERIES} incremental_speedup {ratio}x below the "
                "1.5x target (depth extension re-explored paid-for state; "
                "see docs/CHECKPOINTS.md)"
            )

    # The drop-fault gate is a bug-found assertion, hence deterministic:
    # the twophase_drops leg exists precisely because its atomicity bug is
    # reachable only through the omission-fault sweep (docs/FAULTS.md), so
    # an empty bug list means the drop machinery silently stopped exploring.
    drops_entry = results.get("twophase_drops")
    if drops_entry is not None and not drops_entry["bugs"]:
        raise SystemExit(
            "twophase_drops found no atomicity violation (the drop-fault "
            "sweep regressed; see docs/FAULTS.md)"
        )

    # The reduction gate is count-based, hence deterministic — unlike the
    # wall-clock speedup it is safe to assert even on noisy CI runners.
    sym_entry = results.get("paxos_sym", {}).get("reduced")
    if sym_entry is not None:
        ratio = sym_entry["reduction_ratio"]
        if ratio is None or ratio < 2.0:
            raise SystemExit(
                f"paxos_sym reduction_ratio {ratio}x below the 2x target "
                "(symmetry reduction regressed; see docs/REDUCTION.md)"
            )


if __name__ == "__main__":
    main()
