#!/usr/bin/env python3
"""Fail on dead relative links, dead anchors, and dead code refs in docs.

Scans the given markdown files (default: docs/*.md and README.md) for:

* inline links ``[text](target)`` whose target is a relative path —
  resolved against the containing file's directory; external
  (``http(s)://``, ``mailto:``) links are ignored;
* ``#fragment`` anchors on those links (and pure ``#...`` self links) —
  validated against the GitHub-style slugs of the target file's headings;
* backticked code references that look like repository paths
  (`` `src/...` ``, `` `tools/...` ``, `` `tests/...` ``,
  `` `docs/...` ``, `` `repro/...` ``, or any backticked token ending in
  ``.py`` / ``.md`` / ``.json`` with a directory separator) — checked for
  existence from the repository root, so a doc cannot keep pointing at a
  module that was moved or deleted.

Exits non-zero listing every violation.

Usage::

    python tools/check_doc_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; deliberately simple — no reference-style links
#: or angle-bracket targets are used in this repository's docs.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, for anchor validation.
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Backticked tokens that look like repository file references.  Two
#: shapes: rooted in a known top-level directory, or any path-like token
#: with a checkable suffix.  Trailing ``:line`` qualifiers are allowed.
CODE_REF = re.compile(
    r"`((?:src|tools|tests|docs|benchmarks|examples)/[\w./-]+"
    r"|[\w-]+(?:/[\w.-]+)+\.(?:py|md|json))(?::\d+)?`"
)

#: Code-ref prefixes that name packages as *imported*, not as checked out:
#: ``repro/...`` maps to ``src/repro/...``.
CODE_REF_ALIASES = {"repro": "src/repro"}

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading.

    Lowercase; markup characters (backticks, emphasis) and punctuation
    dropped; spaces become hyphens.  This matches GitHub's slugger closely
    enough for the ASCII-plus-section-signs headings this repository uses.
    """
    text = heading.strip().lower()
    # Strip inline code/emphasis markers but keep their contents
    # (underscores survive: GitHub slugs `BENCH_lmc` as bench_lmc).
    text = text.replace("`", "").replace("*", "")
    # Markdown links in headings contribute only their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    out = []
    for char in text:
        if char.isalnum() or char in ("-", "_"):
            out.append(char)
        elif char == " ":
            out.append("-")
        # Everything else (punctuation, →, §, parens, dots) is dropped.
    return "".join(out)


def heading_slugs(path: Path, cache: dict) -> set:
    """All anchor slugs defined by ``path``'s headings (with -1 dedup)."""
    cached = cache.get(path)
    if cached is not None:
        return cached
    slugs: set = set()
    counts: dict = {}
    in_fence = False
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        cache[path] = slugs
        return slugs
    for line in lines:
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    cache[path] = slugs
    return slugs


def dead_links(path: Path, root: Path, slug_cache: dict) -> list:
    """(line number, problem) pairs for ``path``."""
    found = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative, _, fragment = target.partition("#")
            dest = path if not relative else (path.parent / relative)
            if not dest.exists():
                found.append((lineno, f"dead link: {target}"))
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in heading_slugs(dest, slug_cache):
                    found.append(
                        (lineno, f"dead anchor: {target} (no such heading)")
                    )
        if in_fence:
            continue
        for match in CODE_REF.finditer(line):
            ref = match.group(1)
            head = ref.split("/", 1)[0]
            resolved = CODE_REF_ALIASES.get(head)
            candidates = [
                root / (resolved + ref[len(head):]) if resolved else root / ref,
                # Package-relative refs (`core/checker.py`, `model/events.py`)
                # name modules as seen from inside the installed package.
                root / "src" / "repro" / ref,
            ]
            if not any(candidate.exists() for candidate in candidates):
                found.append((lineno, f"dead code ref: `{ref}`"))
    return found


def main(argv: list) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = sorted(root.glob("docs/*.md")) + [root / "README.md"]
    broken = 0
    slug_cache: dict = {}
    for path in files:
        if not path.exists():
            print(f"{path}: file not found", file=sys.stderr)
            broken += 1
            continue
        for lineno, problem in dead_links(path, root, slug_cache):
            print(f"{path}:{lineno}: {problem}", file=sys.stderr)
            broken += 1
    if broken:
        print(f"{broken} problem(s)", file=sys.stderr)
        return 1
    print(
        f"checked {len(files)} file(s): links, anchors and code refs resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
