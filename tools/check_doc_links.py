#!/usr/bin/env python3
"""Fail on dead relative links in markdown docs.

Scans the given markdown files (default: docs/*.md and README.md) for
inline links ``[text](target)`` whose target is a relative path, resolves
each against the containing file's directory, and exits non-zero listing
every target that does not exist.  External (``http(s)://``, ``mailto:``)
and pure-anchor (``#...``) links are ignored; a ``#fragment`` suffix on a
file link is stripped before the existence check.

Usage::

    python tools/check_doc_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; deliberately simple — no reference-style links
#: or angle-bracket targets are used in this repository's docs.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def dead_links(path: Path) -> list:
    """(line number, target) pairs in ``path`` that resolve nowhere."""
    found = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                found.append((lineno, target))
    return found


def main(argv: list) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = sorted(root.glob("docs/*.md")) + [root / "README.md"]
    broken = 0
    for path in files:
        if not path.exists():
            print(f"{path}: file not found", file=sys.stderr)
            broken += 1
            continue
        for lineno, target in dead_links(path):
            print(f"{path}:{lineno}: dead link: {target}", file=sys.stderr)
            broken += 1
    if broken:
        print(f"{broken} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
