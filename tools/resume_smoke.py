#!/usr/bin/env python3
"""CI smoke test for checkpoint/resume (docs/CHECKPOINTS.md).

The end-to-end kill story, exercised exactly as an operator would hit it:

1. run an uninterrupted ``repro check`` as the reference and record its
   final counters;
2. start the same check with ``--checkpoint-every 1`` in the background,
   wait (via the run registry) until it has written a mid-run checkpoint,
   and SIGKILL the pid from ``meta.json`` — no warning, no handler;
3. ``repro resume <run_id>`` and assert the resumed run's final counters
   match the reference byte-for-byte.

Because checkpoints land at round boundaries and the sweep is
deterministic, any divergence is a real bug in the snapshot codec or the
restore path, not noise.  If the child wins the race and finishes before
the kill, resuming its final checkpoint must *still* reproduce the
reference counters, so the assertion holds either way.

Exit code 0 on success; non-zero with a diagnostic dump on any failure.
Usage: ``python tools/resume_smoke.py [--runs-root DIR] [--timeout SECONDS]``
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: The workload both runs execute.  GEN at this depth runs long enough on
#: CI hardware to be killed mid-flight, and small enough to finish fast.
CHECK_ARGS = ("check", "paxos", "--algorithm", "lmc-gen", "--max-depth", "6")

#: Kill only once the heartbeat reports at least this explored depth (the
#: sum of per-node maxima — max_depth 6 over three nodes tops out around
#: 18), so the SIGKILL genuinely lands mid-depth, not at round 1.
KILL_AFTER_DEPTH = 9

#: ``print_result`` lines that must match between reference and resumed
#: run (deterministic counters; phase timings and ids naturally differ).
COUNTER_LABELS = (
    "transitions",
    "node states",
    "system states",
    "preliminary",
    "soundness",
    "bugs",
    "completed",
)


def _env():
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return env


def _repro(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        capture_output=True,
        text=True,
        **kwargs,
    )


def _counters(stdout):
    """The deterministic counter lines of a ``print_result`` dump."""
    picked = {}
    for line in stdout.splitlines():
        if ":" not in line:
            continue
        label, _, value = line.partition(":")
        label = label.strip()
        if label in COUNTER_LABELS:
            picked[label] = value.strip()
    return picked


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-root", default=os.path.join(REPO_ROOT, ".lmc", "runs"))
    parser.add_argument("--timeout", type=float, default=180.0)
    args = parser.parse_args(argv)
    registry = ["--registry-root", args.runs_root]
    failures = []

    # 1. The uninterrupted reference.
    reference = _repro([*CHECK_ARGS, "--no-registry"])
    if reference.returncode != 0:
        failures.append(f"reference run exited {reference.returncode}")
    expected = _counters(reference.stdout)
    if "transitions" not in expected:
        failures.append("reference output carried no counters")

    # 2. The same check, checkpointed, killed without warning mid-run.
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            *CHECK_ARGS,
            "--checkpoint-every",
            "1",
            "--metrics-interval",
            "0.2",
            *registry,
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    run_dir = pid = None
    checkpoint_seen = False
    deadline = time.time() + args.timeout
    while time.time() < deadline:
        if run_dir is None:
            try:
                entries = sorted(os.listdir(args.runs_root))
            except OSError:
                entries = []
            for name in reversed(entries):
                meta_path = os.path.join(args.runs_root, name, "meta.json")
                if not os.path.isfile(meta_path):
                    continue
                with open(meta_path) as handle:
                    meta = json.load(handle)
                if meta.get("pid") == child.pid:
                    run_dir = os.path.join(args.runs_root, name)
                    pid = meta["pid"]
                    break
        if run_dir is not None and os.path.isfile(
            os.path.join(run_dir, "checkpoint.json")
        ):
            try:
                with open(os.path.join(run_dir, "heartbeat.json")) as handle:
                    depth = json.load(handle).get("depth", 0)
            except (OSError, ValueError):
                depth = 0
            if depth >= KILL_AFTER_DEPTH:
                checkpoint_seen = True
                break
        if child.poll() is not None:
            break  # child finished (or died) before a kill was possible
        time.sleep(0.05)

    if run_dir is None:
        failures.append("checkpointed run never appeared in the registry")
    if not checkpoint_seen and child.poll() is None:
        failures.append("no checkpoint.json appeared before the timeout")
    if child.poll() is None and pid is not None:
        os.kill(pid, signal.SIGKILL)
    child_out, _ = child.communicate(timeout=args.timeout)
    run_id = os.path.basename(run_dir) if run_dir else None

    # 3. Resume and compare counters.
    resumed = None
    if run_id is not None and not failures:
        resumed = _repro(["resume", run_id, *registry], timeout=args.timeout)
        if resumed.returncode != 0:
            failures.append(f"repro resume exited {resumed.returncode}")
        else:
            got = _counters(resumed.stdout)
            for label in COUNTER_LABELS:
                if expected.get(label) != got.get(label):
                    failures.append(
                        f"counter {label!r} diverged: reference "
                        f"{expected.get(label)!r}, resumed {got.get(label)!r}"
                    )

    status = _repro(["status", *registry])
    if failures:
        print("RESUME SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        for title, text in (
            ("reference output", reference.stdout + reference.stderr),
            ("killed run output", child_out),
            (
                "resume output",
                (resumed.stdout + resumed.stderr) if resumed is not None else "<not run>",
            ),
            ("status output", status.stdout + status.stderr),
        ):
            print(f"\n--- {title} ---\n{text}", file=sys.stderr)
        return 1

    print("resume smoke OK")
    print(f"  killed run : {run_id} (mid-run checkpoint: {checkpoint_seen})")
    for label in COUNTER_LABELS:
        print(f"  {label:12s}: {expected.get(label)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
