#!/usr/bin/env python3
"""Head-to-head: B-DFS vs LMC-GEN vs LMC-OPT on the Fig. 10 Paxos space.

Regenerates the headline comparison of §5.1 on your machine: a three-node
Paxos in which exactly one node proposes once.  Prints the per-depth elapsed
time, the explored-state counts and the transition totals — the data behind
Figs. 10 and 11.

Run:  python examples/compare_explorers.py
"""

from repro import GlobalModelChecker, LMCConfig, LocalModelChecker, SearchBudget
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.stats.reporting import format_depth_series, format_table


def main() -> None:
    protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
    invariant = PaxosAgreement(0)

    print("exploring with LMC-OPT ...")
    opt = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
    print("exploring with LMC-GEN ...")
    gen = LocalModelChecker(
        protocol, invariant, config=LMCConfig.general()
    ).run()
    print("exploring with B-DFS (this is the slow one) ...")
    bdfs = GlobalModelChecker(
        protocol, invariant, budget=SearchBudget(max_seconds=600)
    ).run()

    print()
    print(
        format_depth_series(
            [bdfs.series, gen.series, opt.series],
            "elapsed_s",
            "elapsed seconds per completed depth (Fig. 10)",
        )
    )
    print()
    rows = [
        (
            result.algorithm,
            result.series.final().elapsed_s,
            result.stats.transitions,
            result.stats.global_states or result.stats.node_states,
            result.stats.system_states_created,
        )
        for result in (bdfs, gen, opt)
    ]
    print(
        format_table(
            ["algorithm", "total s", "transitions", "states", "system states"],
            rows,
        )
    )
    speedup = bdfs.series.final().elapsed_s / max(
        opt.series.final().elapsed_s, 1e-9
    )
    print(f"\nLMC-OPT speedup over B-DFS on this host: {speedup:,.0f}x "
          f"(paper: ~8,000x on MaceMC)")


if __name__ == "__main__":
    main()
