#!/usr/bin/env python3
"""§5.6: the 1Paxos postfix-increment bug, through the full service stack.

1Paxos runs its configuration service, PaxosUtility, *on top of Paxos* —
this example exercises the whole multi-layer stack: first a live leader
change decided by the embedded Paxos instance, then LMC uncovering the
initialization bug (``acceptor = *(members.begin()++)`` caches the leader
itself as acceptor) from the post-leader-change snapshot.

Run:  python examples/onepaxos_bug_hunt.py
"""

from repro import LMCConfig, LocalModelChecker
from repro.explore.global_checker import apply_event, enumerate_events
from repro.model.multiset import FrozenMultiset
from repro.model.system_state import GlobalState
from repro.protocols.onepaxos import OnePaxosAgreement, OnePaxosProtocol
from repro.protocols.onepaxos.scenarios import (
    post_leaderchange_state,
    scenario_protocol,
)


def demonstrate_utility_stack() -> None:
    """Drive one full LeaderChange through PaxosUtility, step by step."""
    print("== PaxosUtility over Paxos: a live leader change ==")
    protocol = OnePaxosProtocol(
        num_nodes=3,
        proposals=((2, 0, "v2"),),
        fault_suspects=(2,),
        require_init=False,
    )
    state = GlobalState(protocol.initial_system_state(), FrozenMultiset())
    steps = 0
    while steps < 200:
        events = enumerate_events(protocol, state)
        successor = None
        for event in events:
            successor = apply_event(protocol, state, event)
            if successor is not None:
                break
        if successor is None:
            break
        state = successor
        steps += 1
    print(f"events executed: {steps}")
    for node in protocol.node_ids():
        node_state = state.system.get(node)
        print(
            f"  node {node}: leader={node_state.believed_leader()} "
            f"chosen(0)={node_state.chosen_value(0)} "
            f"utility={node_state.utility_entries()}"
        )
    print()


def hunt(buggy: bool) -> None:
    label = "buggy (acceptor = *(members.begin()++))" if buggy else \
        "correct (acceptor = *(++members.begin()))"
    protocol = scenario_protocol(buggy)
    result = LocalModelChecker(
        protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
    ).run(post_leaderchange_state(protocol))
    print(f"== {label} ==")
    if result.found_bug:
        print(result.first_bug().summary())
    else:
        print("no violation found — the snapshot space is clean")
    print()


def main() -> None:
    print(__doc__)
    demonstrate_utility_stack()
    hunt(buggy=True)
    hunt(buggy=False)


if __name__ == "__main__":
    main()
