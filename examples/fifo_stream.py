#!/usr/bin/env python3
"""§4.3: model checking over simulated TCP — FIFO-aware exploration.

A sender streams numbered packets to a receiver.  Over raw datagrams every
arrival order is a distinct behaviour, so the receiver's state space grows
with the number of permutations; rejecting out-of-order deliveries the way
TCP would (the paper's §4.3 suggestion) collapses it to a single chain.
The demo measures both, and shows an ordering invariant that real datagram
runs violate while the FIFO transport guarantees it.

Run:  python examples/fifo_stream.py
"""

from repro import LocalModelChecker
from repro.invariants.base import PredicateInvariant
from repro.protocols.fifo_wrapper import FifoStampedProtocol, unwrap_system_state
from repro.protocols.stream import InOrderDelivery, StreamProtocol

TRUE = PredicateInvariant("true", lambda s: True)


def main() -> None:
    print(__doc__)
    print(f"{'length':>7} {'raw states':>11} {'fifo states':>12} "
          f"{'raw transitions':>16} {'fifo transitions':>17}")
    for length in (3, 4, 5, 6):
        raw = LocalModelChecker(StreamProtocol(length), TRUE).run()
        fifo = LocalModelChecker(
            FifoStampedProtocol(StreamProtocol(length), mode="reject"), TRUE
        ).run()
        print(f"{length:>7} {raw.stats.node_states:>11} "
              f"{fifo.stats.node_states:>12} {raw.stats.transitions:>16} "
              f"{fifo.stats.transitions:>17}")

    print("\nthe in-order invariant over raw datagrams:")
    violated = LocalModelChecker(StreamProtocol(3), InOrderDelivery()).run()
    print(f"  violated: {violated.found_bug}   (reordering is real)")
    if violated.found_bug:
        for line in violated.first_bug().trace_lines():
            print("   ", line)

    print("\nthe same invariant under the FIFO transport:")
    inv = PredicateInvariant(
        "in-order+unwrap",
        lambda s: InOrderDelivery().check(unwrap_system_state(s)),
    )
    guarded = LocalModelChecker(
        FifoStampedProtocol(StreamProtocol(3), mode="reject"), inv
    ).run()
    print(f"  violated: {guarded.found_bug}   (TCP-style rejection holds it)")


if __name__ == "__main__":
    main()
