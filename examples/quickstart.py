#!/usr/bin/env python3
"""Quickstart: the §2 primer — model checking without the network.

Runs both checkers on the five-node forwarding tree of the paper's Fig. 2
and prints the numbers behind Figs. 3-4: the global approach enumerates
every (system state, network state) pair, while the local approach tracks
node states only and materialises a handful of temporary system states —
including one *invalid* combination (``----r``: the target received before
the origin sent) that soundness verification rejects.

Run:  python examples/quickstart.py
"""

from repro import GlobalModelChecker, LocalModelChecker
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol


def main() -> None:
    # The paper's exact setting: interior nodes forward statelessly, so the
    # only visible state changes are the origin's "sent" and the target's
    # "received" — five glyphs, e.g. "s---r".
    protocol = TreeProtocol(track_forwarding=False)
    invariant = ReceivedImpliesSent()

    print("== global model checking (B-DFS) ==")
    global_result = GlobalModelChecker(protocol, invariant).run()
    print(f"explored global states : {global_result.stats.global_states}")
    print(f"transitions executed   : {global_result.stats.transitions}")
    print(f"bugs                   : {len(global_result.bugs)}")

    print("\n== local model checking (LMC) ==")
    local_result = LocalModelChecker(protocol, invariant).run()
    print(f"node states tracked    : {local_result.stats.node_states}")
    print(f"system states created  : {local_result.stats.system_states_created}")
    print(f"preliminary violations : {local_result.stats.preliminary_violations}")
    print(f"rejected by soundness  : "
          f"{local_result.stats.preliminary_violations - local_result.stats.confirmed_bugs}")
    print(f"bugs                   : {len(local_result.bugs)}")

    print(
        "\nThe one preliminary violation is the invalid Cartesian combination"
        "\nthe paper calls '----r' (received before sent): LMC creates it"
        "\na priori, and the a-posteriori soundness verification proves no"
        "\nreal run can produce it — so no bug is reported.  Both checkers"
        "\nagree the protocol is correct."
    )

    assert not global_result.found_bug and not local_result.found_bug


if __name__ == "__main__":
    main()
