#!/usr/bin/env python3
"""§5.5: re-finding the WiDS-reported Paxos bug from a live snapshot.

The injected bug: on completing a quorum of PrepareResponses, the proposer
adopts the value of the *last received* response instead of the one with the
highest accepted ballot.  Starting LMC from the paper's live state — ``v0``
proposed by node 0, accepted by nodes 0 and 1, learned only by node 0 — the
checker finds the interleaving in which node 1 proposes ``v1``, closes its
quorum on the fresh acceptor's empty response, and drives the system to two
different chosen values.

Run:  python examples/paxos_bug_hunt.py
"""

import time

from repro import LMCConfig, LocalModelChecker
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol


def hunt(buggy: bool) -> None:
    label = "buggy" if buggy else "correct"
    protocol = scenario_protocol(buggy)
    live_state = partial_choice_state()

    started = time.perf_counter()
    result = LocalModelChecker(
        protocol, PaxosAgreement(0), config=LMCConfig.optimized()
    ).run(live_state)
    elapsed = time.perf_counter() - started

    print(f"== {label} build ==")
    print(f"explored node states     : {result.stats.node_states}")
    print(f"preliminary violations   : {result.stats.preliminary_violations}")
    print(f"soundness verifications  : {result.stats.soundness_calls}")
    print(f"elapsed                  : {elapsed:.3f}s")
    if result.found_bug:
        print("\n" + result.first_bug().summary())
    else:
        print("no violation — every preliminary report was an invalid "
              "combination, correctly rejected")
    print()


def main() -> None:
    print(__doc__)
    hunt(buggy=True)
    hunt(buggy=False)


if __name__ == "__main__":
    main()
