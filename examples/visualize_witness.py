#!/usr/bin/env python3
"""Render the §5.5 witness trace and predecessor DAG as Graphviz DOT.

Writes two files next to this script:

* ``witness.dot`` — the confirmed Paxos agreement violation as a
  message-flow diagram (one column per process, blue edges = messages);
* ``predecessors.dot`` — the §2 tree primer's predecessor DAG, the
  structure soundness verification walks.

Render them with ``dot -Tsvg witness.dot -o witness.svg`` or any online
Graphviz viewer.

Run:  python examples/visualize_witness.py
"""

import os

from repro import LMCConfig, LocalModelChecker
from repro.core.checker import _ExplorationPass
from repro.explore.budget import BudgetClock, SearchBudget
from repro.invariants.base import PredicateInvariant
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.tree import TreeProtocol
from repro.viz import predecessor_dag, witness_sequence_diagram

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    print(__doc__)

    # 1. the §5.5 witness as a sequence diagram
    protocol = scenario_protocol(buggy=True)
    result = LocalModelChecker(
        protocol, PaxosAgreement(0), config=LMCConfig.optimized()
    ).run(partial_choice_state())
    bug = result.first_bug()
    witness_path = os.path.join(HERE, "witness.dot")
    with open(witness_path, "w") as handle:
        handle.write(witness_sequence_diagram(bug) + "\n")
    print(f"wrote {witness_path} ({len(bug.trace)} events)")

    # 2. the tree primer's predecessor DAG
    tree = TreeProtocol(track_forwarding=False)
    checker = LocalModelChecker(
        tree, PredicateInvariant("true", lambda s: True)
    )
    pass_run = _ExplorationPass(
        checker,
        tree.initial_system_state(),
        BudgetClock(SearchBudget.unbounded()),
        None,
    )
    pass_run.execute()
    dag_path = os.path.join(HERE, "predecessors.dot")
    with open(dag_path, "w") as handle:
        handle.write(
            predecessor_dag(pass_run.space, describe_state=lambda s: s.glyph())
            + "\n"
        )
    print(f"wrote {dag_path} "
          f"({pass_run.space.total_states()} node states)")


if __name__ == "__main__":
    main()
