#!/usr/bin/env python3
"""The full online model checking session of §5.5 (CrystalBall-style).

Three Paxos nodes run live over a 30%-lossy UDP network; every node proposes
its id at fresh indexes and sleeps up to 60 simulated seconds between
proposals.  Every 60 simulated seconds the live state is snapshotted, the
§4.2 test driver adds a contending proposal at a recent half-learned index,
and LMC explores the driven snapshot for up to 5 wall-clock seconds.  With
the injected value-selection bug, a restart eventually confirms an agreement
violation; the paper's run detected it after 1150 simulated seconds.

Run:  python examples/online_crystalball.py            (buggy build)
      python examples/online_crystalball.py --correct  (control)
"""

import sys
import time

from repro import LMCConfig, LocalModelChecker, SearchBudget
from repro.online import (
    FreshIndexInjector,
    LiveRun,
    OnlineModelChecker,
    PaxosTestDriver,
    paxos_online_driver,
)
from repro.protocols.paxos import (
    BuggyPaxosProtocol,
    PaxosAgreementAll,
    PaxosProtocol,
)


def main() -> None:
    buggy = "--correct" not in sys.argv
    cls = BuggyPaxosProtocol if buggy else PaxosProtocol
    protocol = cls(num_nodes=3, proposals=(), require_init=False, retransmit=True)
    live = LiveRun(
        protocol,
        paxos_online_driver(max_sleep=60.0),
        seed=1,
        drop_probability=0.3,
    )
    test_driver = PaxosTestDriver()

    def checker_factory(snapshot):
        return LocalModelChecker(
            protocol,
            PaxosAgreementAll(),
            budget=SearchBudget(max_seconds=5.0),
            config=LMCConfig.optimized(),
        ).run(test_driver.drive(snapshot))

    online = OnlineModelChecker(
        live,
        checker_factory,
        check_interval=60.0,
        interval_hook=FreshIndexInjector(),
    )

    print(f"running the {'buggy' if buggy else 'correct'} build ...")
    started = time.perf_counter()
    outcome = online.run(max_sim_seconds=3600.0)
    wall = time.perf_counter() - started

    print(f"checker restarts        : {outcome.restarts}")
    print(f"total checking time     : {outcome.total_checking_seconds:.1f}s wall")
    print(f"session wall time       : {wall:.1f}s")
    if outcome.found_bug:
        print(f"bug detected at sim time: {outcome.detection_sim_time:.0f}s "
              f"(paper: 1150 s)")
        print("\n" + outcome.bug.summary())
    else:
        print("no violation detected in the whole session")


if __name__ == "__main__":
    main()
