"""Ablation: FIFO/simulated-TCP awareness (§4.3).

"LMC implementation should be also augmented to benefit from the fact that
reordered messages in a connection will eventually be rejected by TCP and
could, hence, be ignored, saving some unnecessary handler executions in the
model checker."

Quantified on the sequenced-stream workload, where *all* state-space growth
comes from datagram reordering: wrapping the protocol in per-channel FIFO
(reject mode) collapses the receiver's permutation-prefix space to a single
chain.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.invariants.base import PredicateInvariant
from repro.protocols.fifo_wrapper import FifoStampedProtocol
from repro.protocols.stream import StreamProtocol
from repro.stats.reporting import format_table

TRUE = PredicateInvariant("true", lambda s: True)


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for length in (3, 4, 5):
        raw = LocalModelChecker(StreamProtocol(length), TRUE).run()
        fifo = LocalModelChecker(
            FifoStampedProtocol(StreamProtocol(length), mode="reject"), TRUE
        ).run()
        rows.append(
            {
                "length": length,
                "raw_states": raw.stats.node_states,
                "raw_transitions": raw.stats.transitions,
                "fifo_states": fifo.stats.node_states,
                "fifo_transitions": fifo.stats.transitions,
            }
        )
    return rows


def test_fifo_collapse(measurements, report):
    table = [
        (
            row["length"],
            row["raw_states"],
            row["fifo_states"],
            row["raw_transitions"],
            row["fifo_transitions"],
        )
        for row in measurements
    ]
    report(
        "§4.3 ablation — datagram vs simulated-TCP stream (LMC node states)\n"
        + format_table(
            [
                "stream length",
                "raw states",
                "fifo states",
                "raw transitions",
                "fifo transitions",
            ],
            table,
        )
        + "\n(raw grows with the number of arrival orders; FIFO stays linear)"
    )
    for row in measurements:
        # FIFO receiver: exactly the in-order prefixes (+ sender chain).
        assert row["fifo_states"] == 2 * (row["length"] + 1)
        assert row["fifo_states"] < row["raw_states"]
    # Raw growth is superlinear across lengths; FIFO growth is linear.
    raw_ratio = measurements[-1]["raw_states"] / measurements[0]["raw_states"]
    fifo_ratio = measurements[-1]["fifo_states"] / measurements[0]["fifo_states"]
    assert raw_ratio > 2 * fifo_ratio
