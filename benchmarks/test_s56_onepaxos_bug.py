"""§5.6: finding the postfix-``++`` initialization bug in 1Paxos.

The buggy build caches ``acceptor = *(members.begin()++)`` — the first
member, i.e. the leader itself.  From the paper's live snapshot (node 2
became leader through PaxosUtility and got ``v3``≙``v2`` chosen at nodes 1
and 2; node 0 missed everything and still believes it leads), LMC uncovers
the loopback scenario: node 0 proposes to *itself*, accepts, self-learns,
and diverges from the rest of the system.  Paper: the tool found the bug in
225 s of the online session.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.onepaxos import (
    OnePaxosAgreement,
    OnePaxosProtocol,
    SingleActiveRoles,
)
from repro.protocols.onepaxos.scenarios import (
    post_leaderchange_state,
    scenario_protocol,
)
from repro.stats.reporting import format_table


def test_s56_bug_confirmed_from_snapshot(report, benchmark):
    protocol = scenario_protocol(buggy=True)
    live = post_leaderchange_state(protocol)

    result = benchmark.pedantic(
        lambda: LocalModelChecker(
            protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
        ).run(live),
        rounds=3,
        iterations=1,
    )
    assert result.found_bug
    bug = result.first_bug()
    report(
        "§5.6 — 1Paxos initialization bug confirmed\n"
        + bug.summary()
        + "\n(paper: found in 225 s of online session; the witness is the "
        "loopback propose/learn of the node that is leader by initialization)"
    )
    described = " ".join(bug.trace_lines())
    assert "0->0" in described  # the self-addressed data-plane messages
    assert "v0" in bug.description and "v2" in bug.description


def test_s56_correct_build_clean(report):
    protocol = scenario_protocol(buggy=False)
    result = LocalModelChecker(
        protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
    ).run(post_leaderchange_state(protocol))
    assert result.completed and not result.found_bug
    report(
        "§5.6 control — correct 1Paxos build from the same snapshot\n"
        + format_table(
            ["metric", "value"],
            [
                ("node states", result.stats.node_states),
                ("preliminary violations", result.stats.preliminary_violations),
                ("bugs", len(result.bugs)),
            ],
        )
    )


def test_s56_global_checker_cross_validates(report):
    rows = []
    for buggy in (True, False):
        protocol = scenario_protocol(buggy=buggy)
        result = GlobalModelChecker(
            protocol,
            OnePaxosAgreement(0),
            budget=SearchBudget(max_seconds=120),
        ).run(post_leaderchange_state(protocol))
        rows.append(("buggy" if buggy else "correct", result.found_bug))
        assert result.found_bug is buggy
    report(
        "§5.6 cross-validation — global checker agrees with LMC\n"
        + format_table(["build", "bug found"], rows)
    )


class TestOnlineExperiment:
    """The full §5.6 online session: fault detector, lossy UDP, restarts.

    The live application triggers the fault detector with probability 0.1
    (the paper's driver); node 2's LeaderChange runs through PaxosUtility
    over the lossy network *without* retransmission (configuration changes
    are fire-and-forget), so some sessions leave node 0 believing it still
    leads — the stale split-brain in which the buggy cached acceptor turns
    driver-injected contention into divergent choices.  Paper: found in
    225 s of live run.
    """

    def _session(self, buggy: bool, seed: int, max_sim_seconds: float = 1800.0):
        from repro.online import (
            LiveRun,
            OnePaxosTestDriver,
            OnlineModelChecker,
            onepaxos_online_driver,
        )
        from repro.protocols.onepaxos import OnePaxosAgreementAll

        protocol = OnePaxosProtocol(
            num_nodes=3,
            proposals=((2, 0, "v2"),),
            fault_suspects=(2,),
            buggy_init=buggy,
            require_init=False,
            retransmit=True,
            utility_retransmit=False,
        )
        live = LiveRun(
            protocol,
            onepaxos_online_driver(suspect_probability=0.1),
            seed=seed,
            drop_probability=0.3,
        )
        test_driver = OnePaxosTestDriver()

        def factory(snapshot):
            return LocalModelChecker(
                protocol,
                OnePaxosAgreementAll(),
                budget=SearchBudget(max_seconds=3.0),
                config=LMCConfig.optimized(),
            ).run(test_driver.drive(snapshot))

        online = OnlineModelChecker(live, factory, check_interval=15.0)
        return online.run(max_sim_seconds=max_sim_seconds)

    def test_online_loop_finds_init_bug(self, report):
        # Seed chosen from a scan: a session whose LeaderChange is only
        # partially observed, the §5.6 precondition (the paper likewise
        # reports one concrete 225 s session).
        outcome = self._session(buggy=True, seed=7)
        report(
            "§5.6 online experiment — buggy 1Paxos, fault detector p=0.1\n"
            + format_table(
                ["metric", "value"],
                [
                    ("detected", outcome.found_bug),
                    ("sim time at detection (s)", outcome.detection_sim_time),
                    ("checker restarts", outcome.restarts),
                ],
            )
            + "\n(paper: found after 225 s of live run)"
        )
        assert outcome.found_bug
        assert "1Paxos agreement violated" in outcome.bug.description

    def test_online_loop_clean_on_correct_build(self):
        outcome = self._session(buggy=False, seed=7, max_sim_seconds=900.0)
        assert not outcome.found_bug


def test_s56_role_invariant_catches_bug_without_system_states(report):
    """The distinct-roles property is node-local: LMC needs no combinations."""
    protocol = scenario_protocol(buggy=True)
    result = LocalModelChecker(
        protocol, SingleActiveRoles(true_initial_acceptor=1)
    ).run(post_leaderchange_state(protocol))
    assert result.found_bug
    report(
        "§5.6 extra — local-invariant variant\n"
        + format_table(
            ["metric", "value"],
            [
                ("system states created", result.stats.system_states_created),
                ("bugs", len(result.bugs)),
            ],
        )
    )
