"""Shared fixtures for the figure/table benchmarks.

Every bench regenerates one figure or table of the paper's evaluation (§5)
and *prints* the series the figure plots, via the ``report`` fixture, which
also persists the text under ``benchmarks/results/`` so EXPERIMENTS.md can
quote it.  Shape assertions (who wins, by roughly what factor) live in the
benches themselves; absolute numbers are hardware-bound and not asserted.
"""

from __future__ import annotations

import os
import re
import sys

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _assert_results_not_rotted() -> None:
    """Every persisted ``results/*.txt`` must belong to a live bench test.

    The ``report`` fixture names each result file after the test that wrote
    it, so a file whose stem no longer matches any ``def test_...`` in this
    directory is rot: its numbers would keep being quoted (EXPERIMENTS.md
    references these files) long after the test that produced them was
    renamed or deleted.  Checked statically against the test *sources*, not
    the collected items, so ``-k``/path selections never trip it.
    """
    if not os.path.isdir(RESULTS_DIR):
        return
    bench_dir = os.path.dirname(__file__)
    defined = set()
    for filename in os.listdir(bench_dir):
        if filename.startswith("test_") and filename.endswith(".py"):
            with open(os.path.join(bench_dir, filename)) as handle:
                defined.update(re.findall(r"^\s*def (test_\w+)", handle.read(), re.M))
    stale = sorted(
        name
        for name in os.listdir(RESULTS_DIR)
        if name.endswith(".txt")
        # Parametrized tests persist as test_name[param]; match the base.
        and re.sub(r"\[.*\]$", "", name[: -len(".txt")]) not in defined
    )
    if stale:
        raise pytest.UsageError(
            "stale benchmark results (no matching test defines them): "
            + ", ".join(stale)
            + " — delete the file(s) or restore the test(s)"
        )


_assert_results_not_rotted()


@pytest.fixture(autouse=True)
def _benchmark_mode(benchmark):
    """Mark every module here as a benchmark for ``--benchmark-only`` runs.

    Several benches measure whole checker runs through shared fixtures and
    shape assertions rather than through ``benchmark()`` micro-timing;
    requesting the fixture keeps them part of the benchmark suite.
    """
    yield


@pytest.fixture(scope="session")
def single_proposal_runs():
    """The Fig. 10-12 workload, run once per bench session.

    Three-node Paxos, one proposal (the 22-event space), explored by B-DFS,
    LMC-GEN, LMC-OPT and LMC-local (system-state creation disabled).
    """
    protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
    invariant = PaxosAgreement(0)
    runs = {
        "B-DFS": GlobalModelChecker(
            protocol, invariant, budget=SearchBudget(max_seconds=600)
        ).run(),
        "LMC-GEN": LocalModelChecker(
            protocol, invariant, config=LMCConfig.general()
        ).run(),
        "LMC-OPT": LocalModelChecker(
            protocol, invariant, config=LMCConfig.optimized()
        ).run(),
        "LMC-local": LocalModelChecker(
            protocol, invariant, config=LMCConfig(create_system_states=False)
        ).run(),
    }
    for label, result in runs.items():
        if result.series is not None:
            result.series.label = label
    return runs


@pytest.fixture
def report(request):
    """Print a bench's tables and persist them under benchmarks/results/."""

    chunks = []

    def _report(text: str) -> None:
        chunks.append(text)
        sys.stdout.write("\n" + text + "\n")

    yield _report

    if chunks:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write("\n\n".join(chunks) + "\n")
