"""§2 primer (Figs. 3-4): global vs local exploration of the forwarding tree.

Paper numbers: the global approach creates 12 global states (Fig. 3 counts
duplicates; 11 deduplicated for this topology) while the local approach
temporarily creates only 4 system states (the initial one plus 3), of which
one — ``----r``, received before sent — is invalid and must be rejected by
soundness verification.
"""

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.stats.reporting import format_table


def test_primer_counts(report, benchmark):
    protocol = TreeProtocol(track_forwarding=False)
    invariant = ReceivedImpliesSent()

    local = benchmark.pedantic(
        lambda: LocalModelChecker(protocol, invariant).run(),
        rounds=5,
        iterations=1,
    )
    glob = GlobalModelChecker(protocol, invariant).run()

    rows = [
        ("global states (B-DFS)", glob.stats.global_states),
        ("system states created (LMC)", local.stats.system_states_created + 1),
        ("node states (LMC)", local.stats.node_states),
        ("preliminary violations", local.stats.preliminary_violations),
        ("violations surviving soundness", local.stats.confirmed_bugs),
    ]
    report(
        "§2 primer — five-node forwarding tree\n"
        + format_table(["quantity", "count"], rows)
        + "\n(paper: 12 global states vs 4 temporary system states; the "
        "combination ----r is invalid and rejected)"
    )

    assert glob.stats.global_states == 11
    # 3 combinations anchored at new node states + the checked seed = 4.
    assert local.stats.system_states_created == 3
    assert local.stats.preliminary_violations == 1  # exactly ----r
    assert not local.found_bug
    assert not glob.found_bug


def test_primer_tracked_mode_also_clean(report):
    """With interior-forwarding state the primer stays violation-free."""
    protocol = TreeProtocol(track_forwarding=True)
    local = LocalModelChecker(protocol, ReceivedImpliesSent()).run()
    glob = GlobalModelChecker(protocol, ReceivedImpliesSent()).run()
    report(
        "§2 primer, tracked-forwarding variant\n"
        + format_table(
            ["quantity", "count"],
            [
                ("global states", glob.stats.global_states),
                ("node states", local.stats.node_states),
                ("system states created", local.stats.system_states_created),
                ("preliminary violations", local.stats.preliminary_violations),
            ],
        )
    )
    assert not local.found_bug and not glob.found_bug
    assert local.stats.preliminary_violations > 0  # all rejected


def test_primer_opt_skips_undecided_combinations(report):
    """Invariant-specific creation on the primer's decomposable invariant."""
    protocol = TreeProtocol(track_forwarding=False)
    opt = LocalModelChecker(
        protocol, ReceivedImpliesSent(), config=LMCConfig.optimized()
    ).run()
    gen = LocalModelChecker(
        protocol, ReceivedImpliesSent(), config=LMCConfig.general()
    ).run()
    report(
        "§2 primer — OPT vs GEN system-state creation\n"
        + format_table(
            ["configuration", "system states"],
            [
                ("LMC-GEN", gen.stats.system_states_created),
                ("LMC-OPT", opt.stats.system_states_created),
            ],
        )
    )
    assert opt.stats.system_states_created <= gen.stats.system_states_created
    assert not opt.found_bug and not gen.found_bug
