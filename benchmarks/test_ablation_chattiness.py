"""§4.3 ablation: where local model checking helps — chatty vs chain.

"Local model checking is ... most effective for the protocols that are
chatty ... The more parallel network activities in the system, the more
effective LMC is.  For example, we could not expect much from LMC in a chain
system in which each node simply forwards the input message to the next."

The bench measures the global-to-local state ratio on three workloads with
increasing parallel network activity: the sequential chain, the forwarding
tree, the all-to-all echo, and Paxos.  The ratio must grow with chattiness.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.invariants.base import PredicateInvariant
from repro.protocols.chain import ChainOrder, ChainProtocol
from repro.protocols.echo import EchoProtocol, PongsImplyPing
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.stats.reporting import format_table

WORKLOADS = [
    ("chain (sequential)", ChainProtocol(5), ChainOrder()),
    ("tree (two branches)", TreeProtocol(), ReceivedImpliesSent()),
    ("echo (all-to-all)", EchoProtocol(3), PongsImplyPing()),
]


@pytest.fixture(scope="module")
def measurements(single_proposal_runs):
    rows = []
    for label, protocol, invariant in WORKLOADS:
        glob = GlobalModelChecker(
            protocol, invariant, budget=SearchBudget(max_seconds=600)
        ).run()
        local = LocalModelChecker(
            protocol, invariant, config=LMCConfig.optimized()
            if hasattr(invariant, "local_projection")
            else LMCConfig.general(),
        ).run()
        rows.append(
            {
                "label": label,
                "global_states": glob.stats.global_states,
                "node_states": local.stats.node_states,
                "global_transitions": glob.stats.transitions,
                "lmc_transitions": local.stats.transitions,
                "ratio": glob.stats.global_states / max(local.stats.node_states, 1),
            }
        )
    # Paxos reuses the session-wide single-proposal runs (the expensive
    # B-DFS exploration happens once per bench session).
    glob = single_proposal_runs["B-DFS"]
    local = single_proposal_runs["LMC-OPT"]
    rows.append(
        {
            "label": "paxos (one proposal)",
            "global_states": glob.stats.global_states,
            "node_states": local.stats.node_states,
            "global_transitions": glob.stats.transitions,
            "lmc_transitions": local.stats.transitions,
            "ratio": glob.stats.global_states / max(local.stats.node_states, 1),
        }
    )
    return rows


def test_ablation_chattiness(measurements, report):
    table = [
        (
            row["label"],
            row["global_states"],
            row["node_states"],
            round(row["ratio"], 2),
            row["global_transitions"],
            row["lmc_transitions"],
        )
        for row in measurements
    ]
    report(
        "§4.3 ablation — state-space compression by workload chattiness\n"
        + format_table(
            [
                "workload",
                "global states",
                "node states",
                "compression",
                "global transitions",
                "LMC transitions",
            ],
            table,
        )
        + "\n(the chain gains nothing; parallel broadcasts gain the most)"
    )
    ratios = {row["label"]: row["ratio"] for row in measurements}
    # The chain's global space is essentially its local space: no gain.
    assert ratios["chain (sequential)"] <= 1.0
    # Chatty workloads compress by at least an order of magnitude.
    assert ratios["echo (all-to-all)"] > 5
    assert ratios["paxos (one proposal)"] > 10
    # Monotone story: paxos > echo-ish > tree > chain.
    assert ratios["paxos (one proposal)"] > ratios["tree (two branches)"]
    assert ratios["echo (all-to-all)"] > ratios["chain (sequential)"]


def test_ablation_transitions_follow_same_story(measurements):
    by_label = {row["label"]: row for row in measurements}
    paxos = by_label["paxos (one proposal)"]
    chain = by_label["chain (sequential)"]
    paxos_gain = paxos["global_transitions"] / max(paxos["lmc_transitions"], 1)
    chain_gain = chain["global_transitions"] / max(chain["lmc_transitions"], 1)
    assert paxos_gain > 10 * chain_gain
