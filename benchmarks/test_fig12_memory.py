"""Figure 12: memory consumption vs depth, single-proposal Paxos.

Paper result: B-DFS's memory grows exponentially with depth while every LMC
configuration stays small (~200 KB total) and grows only linearly — LMC
retains node states only, and system states are temporary.  Our memory
metric is deterministic retained-bytes (serialized state sizes plus
hash-table/predecessor entries), so the curves are reproducible.
"""

from repro.stats.reporting import format_depth_series, format_table


def test_fig12_memory(single_proposal_runs, report):
    runs = single_proposal_runs
    report(
        format_depth_series(
            [run.series for run in runs.values()],
            "memory_bytes",
            "Figure 12 — retained bytes at completed depth",
        )
    )
    finals = {
        label: run.series.final().get("memory_bytes")
        for label, run in runs.items()
    }
    report(
        "Figure 12 — final retained bytes\n"
        + format_table(["configuration", "bytes"], sorted(finals.items()))
    )

    # Shape: the three LMC configurations are close together ("overlapped in
    # the figure") while B-DFS retains much more.
    lmc_values = [
        finals["LMC-GEN"], finals["LMC-OPT"], finals["LMC-local"]
    ]
    assert max(lmc_values) < 2.5 * min(lmc_values)
    assert finals["B-DFS"] > 2 * max(lmc_values)


def test_fig12_bdfs_growth_is_superlinear(single_proposal_runs):
    runs = single_proposal_runs
    series = runs["B-DFS"].series
    memory = series.column("memory_bytes")
    # High-water-mark curve: growth happens until the space is (nearly)
    # exhausted; compare the slope of the second half of the growth region
    # against the first half — an exponential's dwarfs a line's.
    peak = max(memory)
    growth_end = next(i for i, m in enumerate(memory) if m >= 0.95 * peak)
    assert growth_end >= 4, "growth region too short to measure"
    mid = growth_end // 2
    head_slope = (memory[mid] - memory[0]) / max(mid, 1)
    tail_slope = (memory[growth_end] - memory[mid]) / max(growth_end - mid, 1)
    assert tail_slope > 3 * head_slope


def test_fig12_lmc_growth_is_modest(single_proposal_runs):
    runs = single_proposal_runs
    series = runs["LMC-OPT"].series
    memory = series.column("memory_bytes")
    assert memory[-1] < 64 * 1024 * 1024  # sanity ceiling
    # Monotone non-decreasing (the checker only accumulates).
    assert all(a <= b for a, b in zip(memory, memory[1:]))
