"""Figure 11: number of explored states vs depth, single-proposal Paxos.

Paper result: global states (B-DFS) ≫ system states created by LMC-GEN ≫
node states (LMC-local); LMC-OPT creates **zero** system states because the
correct implementation never produces two different chosen values.  The §5.1
text adds the transition counts: 157,332 (B-DFS) vs 1,186 (LMC), ~132×.
"""

from repro.stats.reporting import format_depth_series, format_table


def test_fig11_state_counts(single_proposal_runs, report):
    runs = single_proposal_runs
    bdfs, gen, opt = runs["B-DFS"], runs["LMC-GEN"], runs["LMC-OPT"]
    report(
        format_depth_series(
            [bdfs.series], "global_states",
            "Figure 11a — global states explored by B-DFS, per depth",
        )
    )
    report(
        format_depth_series(
            [gen.series, opt.series], "system_states_created",
            "Figure 11b — system states created by LMC, per depth",
        )
    )
    report(
        format_depth_series(
            [gen.series], "node_states",
            "Figure 11c — node states (LMC-local), per depth",
        )
    )
    rows = [
        ("B-DFS global states", bdfs.stats.global_states),
        ("LMC-GEN system states", gen.stats.system_states_created),
        ("LMC-OPT system states", opt.stats.system_states_created),
        ("LMC node states (LMC-local)", gen.stats.node_states),
    ]
    report("Figure 11 — final counts\n" + format_table(["series", "count"], rows))

    # Shape assertions straight from the figure:
    assert opt.stats.system_states_created == 0
    assert gen.stats.node_states < bdfs.stats.global_states
    assert gen.stats.system_states_created > gen.stats.node_states
    assert gen.stats.node_states == opt.stats.node_states


def test_s51_transition_counts(single_proposal_runs, report):
    runs = single_proposal_runs
    bdfs, opt = runs["B-DFS"], runs["LMC-OPT"]
    ratio = bdfs.stats.transitions / max(opt.stats.transitions, 1)
    report(
        "§5.1 — transitions executed\n"
        + format_table(
            ["algorithm", "transitions"],
            [
                ("B-DFS", bdfs.stats.transitions),
                ("LMC", opt.stats.transitions),
                ("ratio", round(ratio, 1)),
            ],
        )
        + "\n(paper: 157,332 vs 1,186 — ratio ~132x)"
    )
    # The paper reports ~132×; assert the two-orders-of-magnitude shape.
    assert ratio > 50
