"""Figure 10: elapsed time vs depth, single-proposal Paxos (3 nodes).

Paper result: B-DFS explodes from the very early steps and takes 1514 s to
finish the space; LMC-GEN finishes in 5.16 s (~300× faster) and LMC-OPT in
189 ms (~8000× faster).  We assert the *shape*: both LMC variants finish the
whole space while being at least an order of magnitude faster than B-DFS,
with OPT faster than GEN.
"""

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.stats.reporting import format_depth_series, format_table


def single_proposal_space():
    return PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


def test_fig10_elapsed_time_by_depth(single_proposal_runs, report, benchmark):
    runs = single_proposal_runs
    benchmark.pedantic(
        lambda: LocalModelChecker(
            *single_proposal_space(), config=LMCConfig.optimized()
        ).run(),
        rounds=3,
        iterations=1,
    )
    series = [runs["B-DFS"].series, runs["LMC-GEN"].series, runs["LMC-OPT"].series]
    report(
        format_depth_series(
            series,
            "elapsed_s",
            "Figure 10 — elapsed seconds at completed depth "
            "(3-node Paxos, one proposal)",
        )
    )
    totals = [
        (label, result.series.final().elapsed_s, result.completed)
        for label, result in runs.items()
        if label != "LMC-local"
    ]
    report(
        "Totals\n"
        + format_table(["algorithm", "total elapsed s", "completed"], totals)
    )

    opt, gen, bdfs = (
        runs["LMC-OPT"].series.final().elapsed_s,
        runs["LMC-GEN"].series.final().elapsed_s,
        runs["B-DFS"].series.final().elapsed_s,
    )
    assert runs["LMC-OPT"].completed
    assert runs["LMC-GEN"].completed
    assert runs["B-DFS"].completed, "B-DFS must finish this small space"
    # Shape: OPT < GEN < B-DFS with an order of magnitude between OPT and
    # B-DFS (the paper reports 3-4 orders; Python narrows the gap but the
    # ordering and scale separation must survive).
    assert opt < gen < bdfs
    assert bdfs > 10 * opt


def test_fig10_no_bugs_in_correct_paxos(single_proposal_runs):
    runs = single_proposal_runs
    for result in runs.values():
        assert not result.found_bug
