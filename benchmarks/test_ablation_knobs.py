"""Ablations of the §4.2 pragmatic knobs DESIGN.md calls out.

Three design choices get quantified on the single-proposal Paxos space:

* the duplicate-message limit (paper uses 0 — extra copies are pure waste);
* the message-history rule (never redeliver a message already executed on
  the path) — measured through its skip counter;
* the reverify-rejected extension (our completeness patch for the paper's
  "could make the model checking incomplete" caveat) — measured as overhead
  on a clean workload.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.stats.reporting import format_table


def space():
    return PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


def test_ablation_duplicate_limit(report):
    rows = []
    results = {}
    for limit in (0, 1, 2):
        protocol, invariant = space()
        result = LocalModelChecker(
            protocol,
            invariant,
            config=LMCConfig.optimized(duplicate_limit=limit),
        ).run()
        results[limit] = result
        rows.append(
            (
                limit,
                result.stats.node_states,
                result.stats.transitions,
                result.stats.suppressed_duplicates,
                result.stats.history_skips,
                round(result.series.final().elapsed_s, 3),
            )
        )
    report(
        "Ablation — duplicate-message limit (§4.2; paper uses 0)\n"
        + format_table(
            [
                "limit",
                "node states",
                "transitions",
                "suppressed",
                "history skips",
                "elapsed s",
            ],
            rows,
        )
        + "\n(extra copies discover no states: pure overhead)"
    )
    # Identical state coverage at every limit; strictly more work with copies.
    assert (
        results[0].stats.node_states
        == results[1].stats.node_states
        == results[2].stats.node_states
    )
    assert results[2].stats.transitions > results[0].stats.transitions


def test_ablation_history_rule(report):
    """The history rule's skip counter quantifies avoided redundant work."""
    protocol, invariant = space()
    result = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
    total_considered = result.stats.transitions + result.stats.history_skips
    report(
        "Ablation — message-history rule (§4.2 'Duplicate messages')\n"
        + format_table(
            ["quantity", "count"],
            [
                ("handler executions", result.stats.transitions),
                ("redundant deliveries skipped", result.stats.history_skips),
                ("share of deliveries avoided",
                 f"{result.stats.history_skips / max(total_considered, 1):.0%}"),
            ],
        )
    )
    assert result.stats.history_skips > 0


def test_ablation_reverify_extension(report):
    """The completeness patch must confirm the §5.5 bug and cost little
    on the clean single-proposal space."""
    rows = []
    for reverify in (False, True):
        protocol, invariant = space()
        clean = LocalModelChecker(
            protocol,
            invariant,
            config=LMCConfig.optimized(reverify_rejected=reverify),
        ).run()
        buggy = LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            config=LMCConfig.optimized(reverify_rejected=reverify),
        ).run(partial_choice_state())
        rows.append(
            (
                "on" if reverify else "off",
                round(clean.series.final().elapsed_s, 3),
                clean.stats.soundness_calls,
                buggy.found_bug,
            )
        )
        assert buggy.found_bug
        assert not clean.found_bug
    report(
        "Ablation — reverify-rejected completeness extension\n"
        + format_table(
            ["reverify", "clean-space elapsed s", "soundness calls", "bug found"],
            rows,
        )
        + "\n(the paper's prototype omits this; both settings agree here)"
    )


def test_ablation_local_event_widening(report):
    """Iterative widening (§4.2 'Local events') vs a single unbounded pass."""
    rows = []
    for label, config in (
        ("unbounded", LMCConfig.optimized()),
        ("widened from 0", LMCConfig.optimized(local_event_bound=0, widen_increment=1)),
        ("widened from 1", LMCConfig.optimized(local_event_bound=1, widen_increment=1)),
    ):
        protocol, invariant = space()
        result = LocalModelChecker(protocol, invariant, config=config).run()
        rows.append(
            (
                label,
                result.stats.node_states,
                result.stats.transitions,
                round(result.series.final().elapsed_s, 3),
            )
        )
    report(
        "Ablation — local-event bound widening (restart-from-scratch)\n"
        + format_table(
            ["schedule", "node states (cumulative)", "transitions", "elapsed s"],
            rows,
        )
    )
    # All schedules saturate; widened schedules pay re-exploration.
    unbounded_states = rows[0][1]
    assert rows[1][1] >= unbounded_states
    assert rows[2][1] >= unbounded_states
