"""§5.5: finding the injected WiDS-reported bug in Paxos.

Two reproductions:

* **Snapshot experiment** — LMC started from the paper's described live
  state ("node N1 has proposed value v1, nodes N1 and N2 have accepted this
  proposal, but due to message losses only N1 has learned it") must confirm
  the agreement violation, with the paper's exact mechanism in the witness:
  the contender's quorum closes on an empty PrepareResponse and the buggy
  proposer pushes its own value.  Paper: found in 11 s; the correct build
  must stay clean from the same snapshot.

* **Online experiment** — the full CrystalBall-style loop: live 3-node Paxos
  over 30%-lossy UDP, each node proposing its id at fresh indexes, checker
  restarted every 60 simulated seconds with the §4.2 test driver.  Paper:
  detected after 1150 s of live run.  We assert detection within a bounded
  number of restarts; the correct build survives the same session.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.online import (
    FreshIndexInjector,
    LiveRun,
    OnlineModelChecker,
    PaxosTestDriver,
    paxos_online_driver,
)
from repro.protocols.paxos import (
    BuggyPaxosProtocol,
    PaxosAgreement,
    PaxosAgreementAll,
    PaxosProtocol,
)
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.stats.reporting import format_table


class TestSnapshotExperiment:
    def test_bug_confirmed_from_live_state(self, report, benchmark):
        live = partial_choice_state()
        protocol = scenario_protocol(buggy=True)

        result = benchmark.pedantic(
            lambda: LocalModelChecker(
                protocol, PaxosAgreement(0), config=LMCConfig.optimized()
            ).run(live),
            rounds=3,
            iterations=1,
        )
        assert result.found_bug
        bug = result.first_bug()
        report(
            "§5.5 snapshot experiment — confirmed violation\n"
            + bug.summary()
            + "\n\nstats: "
            + str(
                {
                    "preliminary": result.stats.preliminary_violations,
                    "soundness_calls": result.stats.soundness_calls,
                    "sequences": result.stats.soundness_sequences,
                }
            )
            + "\n(paper: detected in 11 s on a 3 GHz Pentium 4)"
        )
        described = " ".join(bug.trace_lines())
        assert "propose@1" in described
        assert "PrepareResponse" in described

    def test_correct_build_clean_from_same_state(self):
        result = LocalModelChecker(
            scenario_protocol(buggy=False),
            PaxosAgreement(0),
            config=LMCConfig.optimized(),
        ).run(partial_choice_state())
        assert result.completed and not result.found_bug


class TestOnlineExperiment:
    def _session(self, buggy: bool, seed: int, max_sim_seconds: float):
        cls = BuggyPaxosProtocol if buggy else PaxosProtocol
        protocol = cls(
            num_nodes=3, proposals=(), require_init=False, retransmit=True
        )
        live = LiveRun(
            protocol,
            paxos_online_driver(max_sleep=60.0),
            seed=seed,
            drop_probability=0.3,
        )
        test_driver = PaxosTestDriver()

        def factory(snapshot):
            return LocalModelChecker(
                protocol,
                PaxosAgreementAll(),
                budget=SearchBudget(max_seconds=5.0),
                config=LMCConfig.optimized(),
            ).run(test_driver.drive(snapshot))

        online = OnlineModelChecker(
            live,
            factory,
            check_interval=60.0,
            interval_hook=FreshIndexInjector(),
        )
        return online.run(max_sim_seconds=max_sim_seconds)

    def test_online_loop_finds_injected_bug(self, report):
        outcome = self._session(buggy=True, seed=1, max_sim_seconds=3600.0)
        rows = [
            ("detected", outcome.found_bug),
            ("sim time at detection (s)", outcome.detection_sim_time),
            ("checker restarts", outcome.restarts),
            ("total checking wall s", round(outcome.total_checking_seconds, 1)),
        ]
        report(
            "§5.5 online experiment — buggy Paxos, 30% drop, 60 s restarts\n"
            + format_table(["metric", "value"], rows)
            + "\n(paper: detected after 1150 s of live run)"
        )
        assert outcome.found_bug
        assert outcome.detection_sim_time is not None
        assert "v" in outcome.bug.description

    def test_online_loop_clean_on_correct_build(self, report):
        outcome = self._session(buggy=False, seed=1, max_sim_seconds=1200.0)
        report(
            "§5.5 online control — correct Paxos, same session shape\n"
            + format_table(
                ["metric", "value"],
                [("restarts", outcome.restarts), ("detected", outcome.found_bug)],
            )
        )
        assert not outcome.found_bug
