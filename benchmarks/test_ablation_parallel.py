"""Ablation: the "embarrassingly parallelized" claim of the paper's intro.

"Having the exploration, system state creation, and soundness verification
decoupled, the model checking process can be embarrassingly parallelized to
benefit from the ever increasing number of cores."

The bench decouples exactly as the paper suggests: one exploration pass
collects preliminary violations; the soundness verifications — each an
independent combination search — fan out over worker processes.  Measured on
the soundness-heavy buggy-Paxos workload of Fig. 13 (with a deterministic
transition budget so every configuration verifies the same work list).
"""

import time

import pytest

from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.stats.reporting import format_table

#: Deterministic exploration bound: every configuration collects the same
#: preliminary violations, so only verification throughput differs.
BUDGET = SearchBudget(max_transitions=1500)
CONFIG = LMCConfig.optimized(
    stop_on_first_bug=False, max_collected_preliminary=1024
)


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for workers in (0, 2, 4):
        protocol = scenario_protocol(buggy=True)
        started = time.perf_counter()
        result = ParallelLocalModelChecker(
            protocol,
            PaxosAgreement(0),
            budget=BUDGET,
            config=CONFIG,
            workers=workers,
        ).run(partial_choice_state())
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "workers": workers,
                "elapsed": elapsed,
                "soundness_calls": result.stats.soundness_calls,
                "confirmed": result.stats.confirmed_bugs,
            }
        )
    return rows


def test_parallel_configurations_agree(measurements, report):
    table = [
        (
            row["workers"] or "in-process",
            round(row["elapsed"], 3),
            row["soundness_calls"],
            row["confirmed"],
        )
        for row in measurements
    ]
    report(
        "Ablation — parallel soundness verification\n"
        + format_table(
            ["workers", "elapsed s", "verifications", "confirmed bugs"],
            table,
        )
        + "\n(identical work lists; wall time includes pool startup, so the "
        "speedup shows only when verification dominates)"
    )
    calls = {row["soundness_calls"] for row in measurements}
    confirmed = {row["confirmed"] for row in measurements}
    assert len(calls) == 1, "every configuration must verify the same list"
    assert len(confirmed) == 1, "every configuration must confirm the same bugs"
    assert measurements[0]["confirmed"] > 0
