"""Paxos under crash–restart faults (docs/FAULTS.md).

Not a figure of the paper — the paper's model (Fig. 5) is failure-free —
but the natural stress test for PR 4's fault scheduler: the Fig. 10/11
single-proposal workload re-explored with one crash–restart per node.
Durable acceptor state must keep the space clean (no fabricated agreement
violations), and the overhead of fault scheduling on this space must stay
modest: the 1 260 live node states dedup into a handful of crashed markers
(one per node and durable fragment), so the state count barely moves.
"""

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.stats.reporting import format_table


def _protocol():
    return PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))


def test_paxos_crash_restart_exploration(report, benchmark):
    baseline = LocalModelChecker(
        _protocol(), PaxosAgreement(0), config=LMCConfig.optimized()
    ).run()

    result = benchmark.pedantic(
        lambda: LocalModelChecker(
            _protocol(),
            PaxosAgreement(0),
            config=LMCConfig.optimized(fault_events_enabled=True),
        ).run(),
        rounds=3,
        iterations=1,
    )

    # Soundness of the fault model: durable acceptor ledgers mean a
    # crash–restart schedule cannot fabricate an agreement violation.
    assert baseline.completed and not baseline.found_bug
    assert result.completed and not result.found_bug

    base = baseline.stats.snapshot()
    faulted = result.stats.snapshot()
    assert faulted["fault_crashes"] > 0
    assert faulted["fault_restarts"] > 0
    # Dedup keeps the fault blow-up tiny: every crashed marker and every
    # recovered state folds into the per-node stores, so the space grows by
    # markers, not by a multiplicative factor.
    added_states = faulted["node_states"] - base["node_states"]
    assert 0 < added_states <= faulted["fault_restarts"] * 2

    report(
        "Paxos single proposal, LMC-OPT, crash–restart faults on\n"
        + format_table(
            ("counter", "baseline", "faults on"),
            [
                ("node_states", base["node_states"], faulted["node_states"]),
                ("transitions", base["transitions"], faulted["transitions"]),
                ("fault_crashes", base["fault_crashes"], faulted["fault_crashes"]),
                ("fault_restarts", base["fault_restarts"], faulted["fault_restarts"]),
                ("bugs", len(baseline.bugs), len(result.bugs)),
            ],
        )
    )
