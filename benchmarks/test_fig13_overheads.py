"""Figure 13: LMC overhead decomposition on the buggy Paxos run.

Paper setup: LMC-OPT checks the buggy Paxos from a live state close to the
violation, in three configurations — full (explore + system states +
soundness), "LMC-OPT-system-state" (soundness disabled) and "LMC-explore"
(system-state creation disabled too).  Paper result: the gap between full
and soundness-disabled (the soundness verification cost) is the major
contributor; the paper counts 773 soundness invocations.

To let the decomposition run deep enough to be visible, the bench uses
``stop_on_first_bug=False`` so the full configuration keeps exploring after
the first confirmed violation, exactly like the measurement run of Fig. 13
(which reached depth 28).
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.stats.reporting import format_table

BUDGET = SearchBudget(max_seconds=120.0)


@pytest.fixture(scope="module")
def runs():
    live = partial_choice_state()
    protocol = scenario_protocol(buggy=True)
    invariant = PaxosAgreement(0)
    configs = {
        "LMC-OPT (full)": LMCConfig.optimized(stop_on_first_bug=False),
        "LMC-OPT-system-state": LMCConfig.optimized(
            verify_soundness=False, stop_on_first_bug=False
        ),
        "LMC-explore": LMCConfig.optimized(
            create_system_states=False, stop_on_first_bug=False
        ),
    }
    return {
        label: LocalModelChecker(
            protocol, invariant, budget=BUDGET, config=config
        ).run(live)
        for label, config in configs.items()
    }


def test_fig13_overhead_breakdown(runs, report):
    rows = []
    for label, result in runs.items():
        rows.append(
            (
                label,
                round(result.series.final().elapsed_s, 4),
                result.stats.system_states_created,
                result.stats.preliminary_violations,
                result.stats.soundness_calls,
                result.stats.soundness_sequences,
                result.stats.confirmed_bugs,
            )
        )
    report(
        "Figure 13 — LMC-OPT phase decomposition on buggy Paxos\n"
        + format_table(
            [
                "configuration",
                "elapsed s",
                "system states",
                "prelim viol.",
                "soundness calls",
                "sequences",
                "confirmed",
            ],
            rows,
        )
        + "\n(paper: 773 soundness invocations, ~45 ms each, 427,731 sequences)"
    )

    full = runs["LMC-OPT (full)"]
    no_soundness = runs["LMC-OPT-system-state"]
    explore_only = runs["LMC-explore"]

    # Phase structure: explore-only does no checking work at all; disabling
    # soundness removes all soundness calls but keeps the preliminary
    # violations; the full configuration confirms bugs.
    assert explore_only.stats.system_states_created == 0
    assert no_soundness.stats.soundness_calls == 0
    assert no_soundness.stats.preliminary_violations > 0
    assert full.stats.soundness_calls > 0
    assert full.stats.confirmed_bugs > 0

    # Cost ordering of the configurations (the vertical gaps of Fig. 13).
    t_explore = explore_only.series.final().elapsed_s
    t_system = no_soundness.series.final().elapsed_s
    t_full = full.series.final().elapsed_s
    assert t_explore <= t_system <= t_full
    # Soundness verification is the major contributor (§5.4).
    soundness_share = full.stats.phase_seconds.get("soundness", 0.0)
    explore_share = full.stats.phase_seconds.get("explore", 0.0)
    assert soundness_share > explore_share


def test_fig13_phase_timers_sum_close_to_total(runs):
    full = runs["LMC-OPT (full)"]
    total = full.series.final().elapsed_s
    phases = sum(full.stats.phase_seconds.values())
    assert phases <= total * 1.1
    assert phases >= total * 0.5
