"""§5.2: the scalability limit — two proposers, 41-event space.

Paper result: neither algorithm finishes this space even after hours.
Within the shared time budget, B-DFS explores to ~depth 20 (of max 41)
while LMC reaches ~39 (of max 68, counting its invalid sequences); the
soundness-verification cost is what eventually slows LMC down.

We give each algorithm the same small budget and assert the shape: LMC's
completed combined-sequence depth exceeds B-DFS's frontier depth.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.stats.reporting import format_table

BUDGET_SECONDS = 20.0


def two_proposal_space():
    return (
        PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"), (1, 0, "v1"))
        ),
        PaxosAgreement(0),
    )


@pytest.fixture(scope="module")
def runs():
    protocol, invariant = two_proposal_space()
    budget = SearchBudget(max_seconds=BUDGET_SECONDS)
    return {
        "B-DFS": GlobalModelChecker(protocol, invariant, budget=budget).run(),
        "LMC-OPT": LocalModelChecker(
            protocol, invariant, budget=budget, config=LMCConfig.optimized()
        ).run(),
    }


def test_s52_depth_reached_under_equal_budget(runs, report):
    bdfs, lmc = runs["B-DFS"], runs["LMC-OPT"]
    rows = [
        (
            "B-DFS",
            bdfs.series.max_depth(),
            bdfs.stats.global_states,
            bdfs.stats.transitions,
            bdfs.completed,
        ),
        (
            "LMC-OPT",
            lmc.series.max_depth(),
            lmc.stats.node_states,
            lmc.stats.transitions,
            lmc.completed,
        ),
    ]
    report(
        f"§5.2 — two-proposal Paxos, {BUDGET_SECONDS:.0f}s budget each\n"
        + format_table(
            ["algorithm", "depth reached", "states", "transitions", "finished"],
            rows,
        )
        + "\n(paper: B-DFS reaches ~20 of 41; LMC ~39 of 68; neither finishes)"
    )
    # Shape: under the same budget LMC gets much deeper than B-DFS.
    assert lmc.series.max_depth() > bdfs.series.max_depth()
    assert not bdfs.completed, "B-DFS must not finish the contended space"


def test_s52_no_false_positive_under_contention(runs):
    # Two proposals with a correct implementation: agreement must hold on
    # every state either checker proves reachable.
    assert not runs["B-DFS"].found_bug
    assert not runs["LMC-OPT"].found_bug
