"""Tests for the parallel local model checker."""

import os
import signal

import pytest

import repro.core.pool as pool
from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.parallel import (
    ParallelLocalModelChecker,
    _replay_plain,
    shutdown_verification_pool,
    verify_unit,
)
from repro.core.pool import shared_executor, shutdown_worker_pool
from repro.explore.budget import SearchBudget
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator
from repro.replay import validate_bug


class TestPlainReplay:
    def test_empty_unit_valid(self):
        assert _replay_plain({}) == []

    def test_send_then_receive(self):
        sequences = {
            0: ((None, (7,)),),      # local event generating hash 7
            1: (((7), ()),),          # delivery consuming hash 7
        }
        # normalise: steps are (consumed, generated)
        sequences = {0: ((None, (7,)),), 1: ((7, ()),)}
        order = _replay_plain(sequences)
        assert order is not None
        assert order[0] == (0, 0)  # the send must run first

    def test_deadlock_detected(self):
        sequences = {0: ((1, (2,)),), 1: ((2, (1,)),)}
        assert _replay_plain(sequences) is None

    def test_verify_unit_picks_working_combination(self):
        unit = {
            0: [((5, ()),), ((None, (9,)),)],  # first candidate needs hash 5
            1: [((9, ()),)],
        }
        verdict = verify_unit(unit, max_combinations=None)
        assert verdict is not None
        chosen, order = verdict
        assert chosen[0] == 1  # only the generating candidate works
        assert len(order) == 2

    def test_verify_unit_cap(self):
        unit = {0: [((5, ()),)] * 4, 1: [((6, ()),)] * 4}
        assert verify_unit(unit, max_combinations=3) is None


class TestParallelChecker:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_clean_tree_rejects_all(self, workers):
        result = ParallelLocalModelChecker(
            TreeProtocol(), ReceivedImpliesSent(), workers=workers
        ).run()
        assert result.completed
        assert not result.found_bug
        assert result.stats.soundness_calls > 0

    @pytest.mark.parametrize("workers", [0, 2])
    def test_buggy_scenario_confirmed(self, workers):
        protocol = scenario_protocol(buggy=True)
        result = ParallelLocalModelChecker(
            protocol,
            PaxosAgreement(0),
            budget=SearchBudget(max_seconds=10.0),
            config=LMCConfig.optimized(),
            workers=workers,
        ).run(partial_choice_state())
        assert result.found_bug
        replayed = validate_bug(protocol, result.first_bug(), PaxosAgreement(0))
        assert replayed.complete and replayed.violates

    def test_agrees_with_sequential_on_2pc_bug(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        sequential = LocalModelChecker(protocol, CommitValidity()).run()
        parallel = ParallelLocalModelChecker(
            protocol, CommitValidity(), workers=0
        ).run()
        assert sequential.found_bug and parallel.found_bug

    def test_collection_is_deduplicated_and_capped(self):
        protocol = scenario_protocol(buggy=True)
        config = LMCConfig.optimized(max_collected_preliminary=10)
        result = ParallelLocalModelChecker(
            protocol,
            PaxosAgreement(0),
            budget=SearchBudget(max_seconds=5.0),
            config=config,
            workers=0,
        ).run(partial_choice_state())
        assert result.stats.soundness_calls <= 10

    def test_algorithm_label(self):
        checker = ParallelLocalModelChecker(
            TreeProtocol(), ReceivedImpliesSent(), workers=0
        )
        assert checker.algorithm == "LMC-parallel"
        assert checker.run().algorithm == "LMC-parallel"


class _RaisingExecutor:
    """Stand-in for a pool whose teardown itself fails (dying workers)."""

    def __init__(self):
        self.calls = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.calls.append({"wait": wait, "cancel_futures": cancel_futures})
        raise RuntimeError("teardown raced a dying worker")


class _BrokenStubExecutor(_RaisingExecutor):
    """A pool that has already broken (as ProcessPoolExecutor marks itself)."""

    _broken = True


class TestPoolRecovery:
    def teardown_method(self):
        shutdown_worker_pool()

    def test_broken_shutdown_swallows_teardown_errors(self, monkeypatch):
        """The BrokenProcessPool path must never raise out of teardown."""
        shutdown_worker_pool()
        stub = _RaisingExecutor()
        monkeypatch.setattr(pool, "_EXECUTOR", stub)
        monkeypatch.setattr(pool, "_EXECUTOR_WORKERS", 2)
        shutdown_worker_pool(broken=True)
        assert pool._EXECUTOR is None
        assert pool._EXECUTOR_WORKERS == 0
        # and it must not wait on dead workers or keep queued units alive
        assert stub.calls == [{"wait": False, "cancel_futures": True}]

    def test_clean_shutdown_still_waits(self, monkeypatch):
        shutdown_worker_pool()
        stub = _RaisingExecutor()
        monkeypatch.setattr(pool, "_EXECUTOR", stub)
        monkeypatch.setattr(pool, "_EXECUTOR_WORKERS", 2)
        with pytest.raises(RuntimeError):
            shutdown_worker_pool()
        assert stub.calls == [{"wait": True, "cancel_futures": False}]
        monkeypatch.setattr(pool, "_EXECUTOR", None)
        monkeypatch.setattr(pool, "_EXECUTOR_WORKERS", 0)

    def test_deprecated_alias_still_works(self, monkeypatch):
        """`shutdown_verification_pool` forwards to the shared-pool teardown."""
        stub = _RaisingExecutor()
        monkeypatch.setattr(pool, "_EXECUTOR", stub)
        monkeypatch.setattr(pool, "_EXECUTOR_WORKERS", 2)
        shutdown_verification_pool(broken=True)
        assert pool._EXECUTOR is None
        assert stub.calls == [{"wait": False, "cancel_futures": True}]

    def test_worker_count_change_tolerates_broken_pool(self, monkeypatch):
        """Resizing away from an already-broken pool must not wait on it.

        A clean resize waits for in-flight work; a broken pool has none and
        its teardown can raise — the rebuild must take the broken path.
        """
        stub = _BrokenStubExecutor()
        monkeypatch.setattr(pool, "_EXECUTOR", stub)
        monkeypatch.setattr(pool, "_EXECUTOR_WORKERS", 4)
        executor = shared_executor(2)
        try:
            assert executor is not stub
            assert stub.calls == [{"wait": False, "cancel_futures": True}]
            assert executor.submit(os.getpid).result() > 0
        finally:
            shutdown_worker_pool()

    def test_killed_worker_is_retried_to_completion(self):
        """SIGKILL a pool worker; the next run must rebuild and still confirm."""
        shutdown_worker_pool()
        executor = shared_executor(2)
        victim = executor.submit(os.getpid).result()
        os.kill(victim, signal.SIGKILL)
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        result = ParallelLocalModelChecker(
            protocol, CommitValidity(), workers=2
        ).run()
        assert result.found_bug
        replayed = validate_bug(protocol, result.first_bug(), CommitValidity())
        assert replayed.complete and replayed.violates
