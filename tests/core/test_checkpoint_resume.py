"""Checkpoint/resume and incremental depth extension (docs/CHECKPOINTS.md).

The durable-snapshot layer's contract, tested from four angles:

* **Round-trip**: serialize → deserialize → serialize must be
  byte-identical, for mid-run and completed-pass snapshots, with faults
  and symmetry both on and off (the hypothesis property below).
* **Interrupt/resume**: a run stopped at a round boundary — by the
  cooperative SIGTERM flag or by abandoning the process after a cadence
  write, the SIGKILL shape — must resume to counters identical to the
  uninterrupted run (rebuildable caches excepted).
* **Depth extension**: extending a completed depth-``d`` snapshot to
  ``d' > d`` must reproduce the cold depth-``d'`` counters exactly while
  re-offering only the frontier the old bound blocked.
* **Refusal**: fingerprint, budget and format mismatches must raise
  loudly instead of silently exploring a different space.

Equality everywhere excludes phase timers (wall clock) and the cache-hit
counters (``sequence_cache_hits``/``replay_cache_hits``/
``rejected_cache_evictions``): verifier memos are rebuilt cold after a
restore, so hit counts legitimately differ while every soundness verdict
and visit count must not.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointMismatch,
    Checkpointer,
    load_checkpoint,
    save_checkpoint,
    snapshot_pass,
)
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol

#: Excluded from counter equality: wall-clock phase timers, and the
#: cache-hit counters a restored run rebuilds cold.
EXCLUDED_PREFIXES = ("phase_",)
EXCLUDED_KEYS = frozenset(
    {"sequence_cache_hits", "replay_cache_hits", "rejected_cache_evictions"}
)

#: The config axes the codec must cover: GEN vs OPT, crash–restart
#: scheduling on, symmetry reduction on.
CONFIGS = {
    "opt": ("optimized", {}),
    "gen": ("general", {}),
    "opt_faults": ("optimized", {"fault_events_enabled": True}),
    "gen_faults": ("general", {"fault_events_enabled": True}),
    "opt_sym": ("optimized", {"symmetry_reduction": True}),
    "gen_sym": ("general", {"symmetry_reduction": True}),
}


def _checker(variant, depth, checkpointer=None):
    """A fresh checker over the single-proposal Paxos space."""
    factory, overrides = CONFIGS[variant]
    protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
    return LocalModelChecker(
        protocol,
        PaxosAgreement(0),
        SearchBudget(max_depth=depth),
        getattr(LMCConfig, factory)(**overrides),
        checkpointer=checkpointer,
    )


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_PREFIXES) and key not in EXCLUDED_KEYS
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


class CaptureCheckpointer(Checkpointer):
    """Keeps every payload written, so tests can pick a mid-run snapshot."""

    def __init__(self, path, every_rounds=1):
        super().__init__(path, every_rounds)
        self.payloads = []

    def write(self, payload):
        super().write(payload)
        self.payloads.append(payload)


class StopAtCheckpointer(Checkpointer):
    """Deterministic interrupt: behaves exactly like the SIGTERM flag, but
    raised from inside :meth:`due` at one exact round boundary."""

    def __init__(self, path, stop_round):
        super().__init__(path)
        self.stop_round = stop_round

    def due(self, round_number, config):
        if round_number >= self.stop_round:
            self.stop_requested = True
        return super().due(round_number, config)


class TestRoundTrip:
    @settings(max_examples=8, deadline=None)
    @given(
        variant=st.sampled_from(sorted(CONFIGS)),
        pick=st.integers(min_value=0, max_value=30),
    )
    def test_serialize_deserialize_serialize_is_byte_identical(
        self, variant, pick, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("roundtrip")
        cadence = CaptureCheckpointer(str(tmp / "cadence.json"), every_rounds=1)
        _checker(variant, 4, checkpointer=cadence).run()
        assert cadence.payloads, "a run with cadence 1 must write snapshots"
        payload = cadence.payloads[pick % len(cadence.payloads)]

        first = str(tmp / "first.json")
        second = str(tmp / "second.json")
        save_checkpoint(first, payload)
        reloaded = load_checkpoint(first)

        restorer = _checker(variant, 4)
        total_stats, result, run_pass = restorer._restore(reloaded)
        # _run_loop rebinds the run-level context before executing; a
        # re-snapshot must see the same bindings.
        run_pass.prior_stats = total_stats
        run_pass.prior_bugs = result.bugs
        again = snapshot_pass(
            run_pass,
            reason=reloaded["reason"],
            pass_completed=reloaded["pass_completed"],
            pass_reason=reloaded["pass_reason"],
            elapsed=reloaded["elapsed_s"],
        )
        save_checkpoint(second, again)
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()


class TestInterruptResume:
    @pytest.mark.parametrize("variant", sorted(CONFIGS))
    def test_interrupted_run_resumes_to_identical_counters(self, variant, tmp_path):
        depth = 4 if variant.startswith("gen") else 6
        reference = _checker(variant, depth).run()

        path = str(tmp_path / "checkpoint.json")
        interrupted = _checker(
            variant, depth, checkpointer=StopAtCheckpointer(path, stop_round=3)
        ).run()
        assert not interrupted.completed
        assert interrupted.stop_reason == "interrupted (checkpoint written)"
        assert interrupted.stats.transitions < reference.stats.transitions

        resumed = _checker(variant, depth).resume(load_checkpoint(path))
        assert _observable(resumed) == _observable(reference)

    def test_kill_after_cadence_write_resumes_to_identical_counters(self, tmp_path):
        """The SIGKILL shape: the run dies with no handler, leaving only the
        last cadence snapshot; resuming it must reproduce the reference."""
        reference = _checker("opt", 6).run()

        cadence = CaptureCheckpointer(str(tmp_path / "cadence.json"), every_rounds=1)
        _checker("opt", 6, checkpointer=cadence).run()
        mid_run = [p for p in cadence.payloads if not p["pass_completed"]]
        assert len(mid_run) >= 2
        # The checkpoint a kill leaves behind is whichever cadence write
        # happened last before the process died — any of them must do.
        for payload in (mid_run[0], mid_run[len(mid_run) // 2], mid_run[-1]):
            resumed = _checker("opt", 6).resume(payload)
            assert _observable(resumed) == _observable(reference)

    def test_sigterm_mid_run_then_resume(self, tmp_path):
        """The real signal path: SIGTERM lands mid-run, the cooperative
        handler finishes the round, writes the snapshot, and stops."""
        previous = signal.signal(signal.SIGTERM, lambda *_: None)
        timer = threading.Timer(0.05, os.kill, (os.getpid(), signal.SIGTERM))
        path = str(tmp_path / "checkpoint.json")
        try:
            timer.start()
            interrupted = _checker(
                "opt", 10, checkpointer=Checkpointer(path)
            ).run()
        finally:
            timer.cancel()
            signal.signal(signal.SIGTERM, previous)
        # Whether the signal won the race or the run finished first, the
        # snapshot on disk must resume to the uninterrupted counters.
        reference = _checker("opt", 10).run()
        resumed = _checker("opt", 10).resume(load_checkpoint(path))
        assert _observable(resumed) == _observable(reference)
        if not interrupted.completed:
            assert interrupted.stop_reason == "interrupted (checkpoint written)"

    def test_sigkill_subprocess_resume_matches_reference(self, tmp_path):
        """End to end through the CLI: SIGKILL the child once a checkpoint
        exists, ``repro resume`` it, and compare the printed counters.
        (tools/resume_smoke.py runs the bigger GEN version of this in CI.)"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        check = ["check", "paxos", "--algorithm", "lmc-opt", "--max-depth", "8"]
        runs_root = str(tmp_path / "runs")

        def counters(stdout):
            wanted = ("transitions", "system states", "bugs", "completed")
            picked = {}
            for line in stdout.splitlines():
                label, _, value = line.partition(":")
                if label.strip() in wanted:
                    picked[label.strip()] = value.strip()
            return picked

        reference = subprocess.run(
            [sys.executable, "-m", "repro", *check, "--no-registry"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert reference.returncode == 0, reference.stderr

        child = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                *check,
                "--checkpoint-every",
                "1",
                "--registry-root",
                runs_root,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        deadline = time.time() + 120
        run_dir = None
        while time.time() < deadline:
            candidates = (
                sorted(os.listdir(runs_root)) if os.path.isdir(runs_root) else []
            )
            if candidates:
                candidate = os.path.join(runs_root, candidates[-1])
                if os.path.isfile(os.path.join(candidate, "checkpoint.json")):
                    run_dir = candidate
                    break
            if child.poll() is not None:
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.kill()
        child.wait(timeout=60)
        assert run_dir is not None, "child never wrote a checkpoint"

        resumed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "resume",
                os.path.basename(run_dir),
                "--registry-root",
                runs_root,
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert resumed.returncode == 0, resumed.stderr + resumed.stdout
        assert counters(resumed.stdout) == counters(reference.stdout)


class TestDepthExtension:
    @pytest.mark.parametrize("variant", ["opt", "gen", "opt_faults", "opt_sym"])
    def test_extension_reproduces_cold_counters_per_depth(self, variant, tmp_path):
        depths = (3, 4, 5) if variant.startswith("gen") else (4, 6, 8)
        cold = {depth: _checker(variant, depth).run() for depth in depths}

        payload = None
        for index, depth in enumerate(depths):
            path = str(tmp_path / f"d{depth}.json")
            checker = _checker(variant, depth, checkpointer=Checkpointer(path))
            if payload is None:
                extended = checker.run()
            else:
                extended = checker.extend_depth(payload)
            assert _observable(extended) == _observable(cold[depth])
            if index + 1 < len(depths):
                payload = load_checkpoint(path)

    def test_extension_to_unbounded_depth(self, tmp_path):
        reference = _checker("opt", 10).run()
        assert reference.completed
        path = str(tmp_path / "d6.json")
        _checker("opt", 6, checkpointer=Checkpointer(path)).run()
        unbounded = LocalModelChecker(
            PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)),
            PaxosAgreement(0),
            SearchBudget.unbounded(),
            LMCConfig.optimized(),
        ).extend_depth(load_checkpoint(path))
        # d=10 saturates the single-proposal space, so removing the bound
        # reaches the same fixpoint; only the stop reason wording differs.
        assert unbounded.completed
        expected = _observable(reference)
        got = _observable(unbounded)
        expected.pop("stop_reason")
        got.pop("stop_reason")
        assert got == expected


class TestRefusals:
    def _completed_checkpoint(self, tmp_path, variant="opt", depth=4):
        path = str(tmp_path / "done.json")
        _checker(variant, depth, checkpointer=Checkpointer(path)).run()
        return load_checkpoint(path)

    def _interrupted_checkpoint(self, tmp_path, variant="opt", depth=6):
        path = str(tmp_path / "interrupted.json")
        result = _checker(
            variant, depth, checkpointer=StopAtCheckpointer(path, stop_round=2)
        ).run()
        assert not result.completed
        return load_checkpoint(path)

    def test_resume_refuses_budget_mismatch(self, tmp_path):
        payload = self._interrupted_checkpoint(tmp_path, depth=6)
        with pytest.raises(CheckpointMismatch, match="checkpointed budget"):
            _checker("opt", 8).resume(payload)

    def test_resume_refuses_config_mismatch(self, tmp_path):
        payload = self._interrupted_checkpoint(tmp_path, variant="opt", depth=6)
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            _checker("opt_faults", 6).resume(payload)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"drop_faults": True},
            {"drop_faults": True, "max_drops": 2},
            {"duplicate_faults": True, "duplicate_limit": 1},
            {"duplicate_limit": 1},
            {"partition_schedules": ((1, 2, (0,), (1,)),)},
            {"partition_schedules": ((1, None, (0,), (1, 2)),)},
        ],
        ids=[
            "drop-faults",
            "max-drops",
            "duplicate-faults",
            "duplicate-limit",
            "partition-window",
            "partition-permanent",
        ],
    )
    def test_resume_and_extend_refuse_differing_fault_knobs(
        self, overrides, tmp_path
    ):
        """Every omission-fault knob is fingerprinted: a checkpoint written
        under one fault configuration must refuse to resume — or extend —
        under any other, instead of silently exploring a different space."""
        mismatched = LocalModelChecker(
            PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)),
            PaxosAgreement(0),
            SearchBudget(max_depth=6),
            LMCConfig.optimized(**overrides),
        )
        payload = self._interrupted_checkpoint(tmp_path, depth=6)
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            mismatched.resume(payload)

        completed = self._completed_checkpoint(tmp_path, depth=4)
        extender = LocalModelChecker(
            PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)),
            PaxosAgreement(0),
            SearchBudget(max_depth=8),
            LMCConfig.optimized(**overrides),
        )
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            extender.extend_depth(completed)

    def test_resume_refuses_protocol_mismatch(self, tmp_path):
        payload = self._interrupted_checkpoint(tmp_path, depth=6)
        other = LocalModelChecker(
            PaxosProtocol(num_nodes=4, proposals=((0, 0, "v0"),)),
            PaxosAgreement(0),
            SearchBudget(max_depth=6),
            LMCConfig.optimized(),
        )
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            other.resume(payload)

    def test_extend_refuses_mid_pass_snapshot(self, tmp_path):
        payload = self._interrupted_checkpoint(tmp_path, depth=6)
        with pytest.raises(CheckpointMismatch, match="completed pass"):
            _checker("opt", 8).extend_depth(payload)

    def test_extend_refuses_non_increasing_depth(self, tmp_path):
        payload = self._completed_checkpoint(tmp_path, depth=4)
        for depth in (3, 4):
            with pytest.raises(CheckpointMismatch, match="must exceed"):
                _checker("opt", depth).extend_depth(payload)

    def test_load_refuses_foreign_format_and_version(self, tmp_path):
        path = str(tmp_path / "done.json")
        _checker("opt", 4, checkpointer=Checkpointer(path)).run()
        with open(path) as handle:
            envelope = json.load(handle)

        envelope["version"] = 999
        tampered = str(tmp_path / "tampered.json")
        with open(tampered, "w") as handle:
            json.dump(envelope, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(tampered)

        envelope["version"] = 1
        envelope["format"] = "bug-corpus"
        with open(tampered, "w") as handle:
            json.dump(envelope, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(tampered)
