"""Tests for system-state creation: GEN, OPT (pairwise + pruned)."""

from typing import Dict, Optional

from repro.core.records import LocalStateSpace
from repro.core.system_states import (
    combination_to_system_state,
    enumerate_general,
    enumerate_optimized,
)
from repro.invariants.base import DecomposableInvariant
from repro.model.hashing import content_hash
from repro.model.types import NodeId


class ValueAgreement(DecomposableInvariant):
    """Toy agreement: states are (value,) tuples; None value = undecided."""

    name = "value-agreement"

    def check(self, system):
        values = {v for _n, (v,) in system.items() if v is not None}
        return len(values) <= 1

    def local_projection(self, node, state):
        return state[0]


class TripleConflict(ValueAgreement):
    """Same projection, but declared non-pairwise (full-product path)."""

    pairwise = False


class CustomConflict(ValueAgreement):
    """Same conflict expressed through an override (generate-and-filter)."""

    pairwise = False

    def projections_conflict(self, projections):
        return len(set(projections.values())) >= 2


def build_space(per_node: Dict[NodeId, list]) -> LocalStateSpace:
    space = LocalStateSpace(tuple(sorted(per_node)))
    records = {}
    for node, states in per_node.items():
        seed, *rest = states
        records[(node, 0)] = space.seed(node, seed)
        for i, state in enumerate(rest, start=1):
            records[(node, i)] = space.store(node).add(
                state, content_hash((node, state)), i, 0, frozenset()
            )
    return space


def anchor_of(space, node, index=-1):
    return space.store(node).records[index]


class TestGeneral:
    def test_full_product_anchored(self):
        space = build_space({0: [("a",)], 1: [(None,), ("b",)], 2: [(None,)]})
        anchor = anchor_of(space, 0)
        combos = list(enumerate_general(space, 0, anchor))
        assert len(combos) == 2  # node1 has two states, node2 one
        for combo in combos:
            assert combo[0] is anchor

    def test_discarded_records_excluded(self):
        space = build_space({0: [("a",)], 1: [(None,), ("b",)]})
        store = space.store(1)
        store.mark_discarded(store.records[1])
        combos = list(enumerate_general(space, 0, anchor_of(space, 0)))
        assert len(combos) == 1

    def test_combination_to_system_state(self):
        space = build_space({0: [("a",)], 1: [("b",)]})
        combo = next(enumerate_general(space, 0, anchor_of(space, 0)))
        system = combination_to_system_state(combo)
        assert system.get(0) == ("a",)
        assert system.get(1) == ("b",)


class TestPairwiseOpt:
    def test_no_projection_on_anchor_means_nothing(self):
        space = build_space({0: [(None,)], 1: [("a",)], 2: [("b",)]})
        combos = list(
            enumerate_optimized(space, 0, anchor_of(space, 0), ValueAgreement())
        )
        assert combos == []

    def test_no_conflict_means_nothing(self):
        space = build_space({0: [("a",)], 1: [("a",)], 2: [(None,)]})
        combos = list(
            enumerate_optimized(space, 0, anchor_of(space, 0), ValueAgreement())
        )
        assert combos == []

    def test_conflicting_pair_completed_over_third_node(self):
        space = build_space(
            {0: [("a",)], 1: [(None,), ("b",)], 2: [(None,), (None,)]}
        )
        combos = list(
            enumerate_optimized(space, 0, anchor_of(space, 0), ValueAgreement())
        )
        # pair (0:"a", 1:"b") completed over node2's two states
        assert len(combos) == 2
        for combo in combos:
            assert combo[1].state == ("b",)

    def test_completion_cap(self):
        space = build_space({0: [("a",)], 1: [("b",)], 2: [(None,)]})
        space.store(2).add((None, "x2"), content_hash("x2"), 1, 0, frozenset())
        space.store(2).add((None, "y2"), content_hash("y2"), 2, 0, frozenset())
        all_combos = list(
            enumerate_optimized(space, 0, anchor_of(space, 0), ValueAgreement())
        )
        capped = list(
            enumerate_optimized(
                space, 0, anchor_of(space, 0), ValueAgreement(), completion_cap=1
            )
        )
        assert len(all_combos) == 3
        assert len(capped) == 1

    def test_every_pairwise_combo_violates(self):
        space = build_space(
            {0: [("a",)], 1: [(None,), ("b",)], 2: [(None,), ("a",)]}
        )
        invariant = ValueAgreement()
        for combo in enumerate_optimized(space, 0, anchor_of(space, 0), invariant):
            assert not invariant.check(combination_to_system_state(combo))


class TestFullProductOpt:
    def test_pruned_product_matches_filtered_general(self):
        space = build_space(
            {0: [("a",), (None,)], 1: [(None,), ("b,")], 2: [(None,), ("c",)]}
        )
        invariant = TripleConflict()
        anchor = anchor_of(space, 0, index=0)
        optimized = {
            tuple(sorted((n, r.index) for n, r in combo.items()))
            for combo in enumerate_optimized(space, 0, anchor, invariant)
        }
        filtered = set()
        for combo in enumerate_general(space, 0, anchor):
            projections = {
                n: invariant.local_projection(n, r.state)
                for n, r in combo.items()
                if invariant.local_projection(n, r.state) is not None
            }
            if invariant.projections_conflict(projections):
                filtered.add(
                    tuple(sorted((n, r.index) for n, r in combo.items()))
                )
        assert optimized == filtered

    def test_custom_conflict_generate_and_filter(self):
        space = build_space({0: [("a",)], 1: [(None,), ("b",)]})
        combos = list(
            enumerate_optimized(space, 0, anchor_of(space, 0), CustomConflict())
        )
        assert len(combos) == 1
        assert combos[0][1].state == ("b",)

    def test_zero_cost_when_nothing_projects(self):
        space = build_space(
            {0: [(None,)] * 1, 1: [(None,), (None,)], 2: [(None,)]}
        )
        combos = list(
            enumerate_optimized(
                space, 0, anchor_of(space, 0), TripleConflict()
            )
        )
        assert combos == []
