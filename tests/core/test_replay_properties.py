"""Property tests for the soundness replay's greedy-confluence claim.

§4.1 asserts that during ``isSequenceValid`` "it actually does not matter
which enabled event is selected": if *any* interleaving of the per-node
sequences respects message causality, the greedy scheduler finds one.  We
check that claim against a brute-force scheduler over hypothesis-generated
sequence sets: greedy succeeds exactly when some interleaving exists.
"""

from itertools import permutations
from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.soundness import SequenceStep, replay_sequences
from repro.model.events import InternalEvent
from repro.model.types import Action

#: A generated plain step: (consumed hash or None, generated hashes).
Plain = Tuple[Optional[int], Tuple[int, ...]]


def make_step(node: int, index: int, plain: Plain) -> SequenceStep:
    consumed, generated = plain
    return SequenceStep(
        InternalEvent(Action(node=node, name=f"e{node}-{index}")),
        consumed,
        generated,
    )


def brute_force_valid(sequences: Dict[int, Tuple[Plain, ...]]) -> bool:
    """Is there ANY causally valid interleaving?  Exhaustive search."""
    items: List[Tuple[int, int]] = [
        (node, i)
        for node, seq in sequences.items()
        for i in range(len(seq))
    ]
    if len(items) > 7:
        raise AssertionError("keep generated cases tiny")

    def ok(order: Tuple[Tuple[int, int], ...]) -> bool:
        # per-node positions must appear in order
        positions: Dict[int, int] = {node: 0 for node in sequences}
        net: Dict[int, int] = {}
        for node, index in order:
            if positions[node] != index:
                return False
            consumed, generated = sequences[node][index]
            if consumed is not None:
                if net.get(consumed, 0) == 0:
                    return False
                net[consumed] -= 1
            for item in generated:
                net[item] = net.get(item, 0) + 1
            positions[node] += 1
        return True

    return any(ok(order) for order in permutations(items))


hash_values = st.integers(min_value=1, max_value=4)
plain_steps = st.tuples(
    st.one_of(st.none(), hash_values),
    st.lists(hash_values, max_size=2).map(tuple),
)
sequence_sets = st.dictionaries(
    st.integers(min_value=0, max_value=2),
    st.lists(plain_steps, max_size=3).map(tuple),
    min_size=1,
    max_size=3,
).filter(lambda d: sum(len(s) for s in d.values()) <= 6)


@settings(max_examples=300, deadline=None)
@given(sequence_sets)
def test_greedy_matches_brute_force(plain_sequences):
    rich = {
        node: tuple(
            make_step(node, i, plain) for i, plain in enumerate(sequence)
        )
        for node, sequence in plain_sequences.items()
    }
    greedy = replay_sequences(rich)
    expected = brute_force_valid(plain_sequences)
    assert (greedy is not None) == expected


@settings(max_examples=200, deadline=None)
@given(sequence_sets)
def test_greedy_order_is_itself_valid(plain_sequences):
    rich = {
        node: tuple(
            make_step(node, i, plain) for i, plain in enumerate(sequence)
        )
        for node, sequence in plain_sequences.items()
    }
    order = replay_sequences(rich)
    if order is None:
        return
    # The returned total order must contain every event exactly once and be
    # causally executable when re-simulated step by step.
    assert len(order) == sum(len(seq) for seq in rich.values())
    positions = {node: 0 for node in rich}
    net = {}
    for event in order:
        node = event.node
        step = rich[node][positions[node]]
        assert step.event is event
        if step.consumed_hash is not None:
            assert net.get(step.consumed_hash, 0) > 0
            net[step.consumed_hash] -= 1
        for item in step.generated_hashes:
            net[item] = net.get(item, 0) + 1
        positions[node] += 1
    assert all(
        positions[node] == len(rich[node]) for node in rich
    )


# A pinned counterexample to the naive greedy sweep (hypothesis-found): node 2
# greedily consumes the hash-1 message it just generated, starving node 1 —
# yet the order (2.0, 1.0, 2.1) is valid.  Greedy can only err like this when
# two steps compete to consume the same hash; replay must then fall back to
# the complete backtracking search.
COMPETING_CONSUMERS = {
    0: (),
    1: ((1, (1,)),),
    2: ((None, (1,)), (1, ())),
}


def test_competing_consumers_fall_back_to_backtracking():
    rich = {
        node: tuple(
            make_step(node, i, plain) for i, plain in enumerate(sequence)
        )
        for node, sequence in COMPETING_CONSUMERS.items()
    }
    order = replay_sequences(rich)
    assert order is not None
    assert brute_force_valid(COMPETING_CONSUMERS)


def test_plain_replay_falls_back_too():
    from repro.core.parallel import _replay_plain

    order = _replay_plain(COMPETING_CONSUMERS)
    assert order is not None
    assert len(order) == 3
