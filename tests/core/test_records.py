"""Tests for the per-node state stores and predecessor records."""

import pytest

from repro.core.records import (
    LocalStateSpace,
    NodeStateStore,
    PredecessorLink,
)
from repro.model.events import InternalEvent, event_hash
from repro.model.hashing import content_hash
from repro.model.types import Action


def make_link(prev_hash=None, name="e", generated=()):
    event = InternalEvent(Action(node=0, name=name))
    return PredecessorLink(
        prev_hash=prev_hash,
        event=event,
        event_hash=event_hash(event),
        consumed_hash=None,
        generated_hashes=tuple(generated),
    )


class TestNodeStateStore:
    def test_add_and_lookup(self):
        store = NodeStateStore(0)
        h = content_hash("s0")
        record = store.add("s0", h, depth=0, local_depth=0, history=frozenset())
        assert store.lookup(h) is record
        assert store.lookup(12345) is None
        assert len(store) == 1
        assert record.index == 0

    def test_duplicate_add_rejected(self):
        store = NodeStateStore(0)
        h = content_hash("s0")
        store.add("s0", h, depth=0, local_depth=0, history=frozenset())
        with pytest.raises(ValueError):
            store.add("s0", h, depth=1, local_depth=0, history=frozenset())

    def test_indices_follow_insertion(self):
        store = NodeStateStore(0)
        for i, state in enumerate(["a", "b", "c"]):
            record = store.add(
                state, content_hash(state), depth=i, local_depth=0, history=frozenset()
            )
            assert record.index == i

    def test_retained_bytes_grows_with_records(self):
        store = NodeStateStore(0)
        store.add("a", content_hash("a"), 0, 0, frozenset())
        before = store.retained_bytes()
        store.add("b", content_hash("b"), 1, 0, frozenset())
        assert store.retained_bytes() > before


class TestPredecessorLinks:
    def test_dedup_by_prev_and_event(self):
        store = NodeStateStore(0)
        record = store.add("a", content_hash("a"), 0, 0, frozenset())
        link = make_link(prev_hash=1)
        assert record.add_predecessor(link)
        assert not record.add_predecessor(make_link(prev_hash=1))
        assert record.add_predecessor(make_link(prev_hash=2))
        assert len(record.predecessors) == 2

    def test_links_with_different_events_kept(self):
        store = NodeStateStore(0)
        record = store.add("a", content_hash("a"), 0, 0, frozenset())
        assert record.add_predecessor(make_link(prev_hash=1, name="x"))
        assert record.add_predecessor(make_link(prev_hash=1, name="y"))
        assert len(record.predecessors) == 2

    def test_retained_bytes_counts_links_and_history(self):
        store = NodeStateStore(0)
        bare = store.add("a", content_hash("a"), 0, 0, frozenset())
        loaded = store.add(
            "b", content_hash("b"), 0, 0, history=frozenset({1, 2, 3})
        )
        loaded.add_predecessor(make_link(prev_hash=1))
        assert loaded.retained_bytes() > bare.retained_bytes()


class TestLocalStateSpace:
    def test_seed_marks_records(self):
        space = LocalStateSpace((0, 1))
        record = space.seed(0, "live0")
        assert record.seed
        assert record.is_initial
        assert record.depth == 0
        assert space.total_states() == 1

    def test_max_depth_tracks_all_nodes(self):
        space = LocalStateSpace((0, 1))
        space.seed(0, "a")
        space.seed(1, "b")
        space.store(1).add("b2", content_hash("b2"), depth=5, local_depth=1, history=frozenset())
        assert space.max_depth() == 5

    def test_stores_are_per_node(self):
        space = LocalStateSpace((0, 1))
        space.seed(0, "same")
        space.seed(1, "same")
        assert space.total_states() == 2
        assert len(space.store(0)) == 1
