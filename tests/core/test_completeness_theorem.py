"""The paper's completeness claim, tested directly.

§1: "our approach is complete in the sense that any violation of a system
state invariant that could be detected by the global approach could be
detected by our local approach", backed by §4's transition correspondence
(for each ``(Lp, Ip) ⇝ (Lq, Iq)`` in ``H_M`` there is a corresponding
transition in ``H'_M``).

Concretely: every system state the global checker reaches must be a
combination of LMC-visited node states — for every reachable ``L`` and
every node ``n``, ``L(n) ∈ LS_n``.  These tests enumerate the *entire*
reachable global space of each workload and check the inclusion state by
state, on fixed configurations and hypothesis-generated topologies.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker, _ExplorationPass
from repro.core.config import LMCConfig
from repro.explore.budget import BudgetClock, SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.invariants.base import PredicateInvariant
from repro.model.hashing import content_hash
from repro.protocols.chain import ChainProtocol
from repro.protocols.echo import EchoProtocol
from repro.protocols.ring import GreedyRingElection, RingElection
from repro.protocols.stream import StreamProtocol
from repro.protocols.tree import TreeProtocol
from repro.protocols.twophase import EagerCommitCoordinator, TwoPhaseCommit

TRUE = PredicateInvariant("true", lambda s: True)


def global_system_states(protocol):
    """Every distinct system state in the reachable global space."""
    collected = {}

    def collector(system):
        collected[hash(system)] = system
        return True

    result = GlobalModelChecker(
        protocol,
        PredicateInvariant("collector", collector),
        stop_on_first_bug=False,
    ).run()
    assert result.completed
    return list(collected.values())


def lmc_node_state_hashes(protocol):
    """Per-node hash sets of all LMC-visited node states."""
    checker = LocalModelChecker(protocol, TRUE, config=LMCConfig())
    pass_run = _ExplorationPass(
        checker,
        protocol.initial_system_state(),
        BudgetClock(SearchBudget.unbounded()),
        None,
    )
    outcome = pass_run.execute()
    assert outcome.completed
    return {
        node: set(store._by_hash)
        for node, store in pass_run.space.stores.items()
    }


def assert_lmc_covers_global(protocol):
    visited = lmc_node_state_hashes(protocol)
    for system in global_system_states(protocol):
        for node, state in system.items():
            assert content_hash(state) in visited[node], (
                f"node {node} state missing from LS_n: {state!r}"
            )


class TestFixedWorkloads:
    def test_tree(self):
        assert_lmc_covers_global(TreeProtocol())

    def test_tree_stateless(self):
        assert_lmc_covers_global(TreeProtocol(track_forwarding=False))

    def test_chain(self):
        assert_lmc_covers_global(ChainProtocol(5))

    def test_echo(self):
        assert_lmc_covers_global(EchoProtocol(3))

    def test_stream(self):
        assert_lmc_covers_global(StreamProtocol(3))

    def test_twophase(self):
        assert_lmc_covers_global(TwoPhaseCommit(3, no_voters=(2,)))

    def test_twophase_buggy(self):
        assert_lmc_covers_global(EagerCommitCoordinator(3, no_voters=(1,)))

    def test_ring(self):
        assert_lmc_covers_global(RingElection(3, initiators=(0, 1)))

    def test_ring_buggy(self):
        assert_lmc_covers_global(GreedyRingElection(3))


@st.composite
def tree_topologies(draw):
    num_nodes = draw(st.integers(min_value=3, max_value=5))
    children = {}
    for node in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        children.setdefault(parent, []).append(node)
    target = draw(st.integers(min_value=1, max_value=num_nodes - 1))
    return (
        {parent: tuple(kids) for parent, kids in children.items()},
        target,
    )


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(tree_topologies())
def test_generated_topologies(topology):
    children, target = topology
    assert_lmc_covers_global(
        TreeProtocol(children=children, origin=0, target=target)
    )
