"""Reduction must be invisible when off and verdict-preserving when on.

PR 7's symmetry reduction and commutativity pruning (docs/REDUCTION.md) are
gated behind ``LMCConfig.symmetry_reduction`` and ``LMCConfig.por_pruning``;
with both knobs off — or on but with nothing to reduce — every counter,
verdict and witness trace must be byte-identical to an unreduced run, the
same discipline ``test_cache_equivalence`` and ``test_fault_equivalence``
apply to the PR 3 caches and the PR 4 fault scheduler.  With a knob on, the
checker may visit fewer system states but must report the same bugs, and
every reported bug must still replay end to end.

The algebra the soundness argument leans on is pinned directly: the
composed renaming group is closed under composition, orbit keys are
invariant across an orbit (canonicalisation is idempotent), and seeding
from an asymmetric live snapshot collapses the group to its stabilizer.
"""

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.symmetry import SymmetryReducer, build_group
from repro.explore.budget import SearchBudget
from repro.model.hashing import content_hash, substitute_node_ids
from repro.model.types import NodeId
from repro.protocols.common import renamed_state
from repro.protocols.echo import EchoNodeState, EchoProtocol, PongsImplyPing
from repro.protocols.onepaxos import OnePaxosAgreement
from repro.protocols.onepaxos import scenarios as onepaxos_scenarios
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator
from repro.replay import validate_bug

#: Phase timers are wall-clock; everything else must match exactly.
EXCLUDED_KEYS = ("phase_",)


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_KEYS)
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


def _verdict(result):
    """The reduction-invariant projection: verdicts, not visit counts."""
    return {
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": sorted(bug.description for bug in result.bugs),
    }


#: Small exhaustible workloads covering clean and buggy verdict shapes; the
#: tree and echo protocols declare symmetry (echo) or nothing (the Fig. 2
#: tree has no interchangeable leaves), 2PC declares participant classes.
SCENARIOS = {
    "tree": lambda: (TreeProtocol(), ReceivedImpliesSent()),
    "echo": lambda: (EchoProtocol(num_nodes=3), PongsImplyPing()),
    "2pc-clean": lambda: (EagerCommitCoordinator(3), CommitValidity()),
    "2pc-buggy": lambda: (EagerCommitCoordinator(3, no_voters=(2,)), CommitValidity()),
}


def test_reduction_is_off_by_default():
    for config in (LMCConfig(), LMCConfig.optimized(), LMCConfig.general()):
        assert config.symmetry_reduction is False
        assert config.por_pruning is False


@given(
    scenario=st.sampled_from(sorted(SCENARIOS)),
    max_transitions=st.one_of(st.none(), st.integers(min_value=20, max_value=200)),
)
@settings(max_examples=15, deadline=None)
def test_knobs_off_is_byte_identical(scenario, max_transitions):
    """Explicitly-off knobs == the defaults, bit for bit."""
    budget = (
        SearchBudget.unbounded()
        if max_transitions is None
        else SearchBudget(max_transitions=max_transitions)
    )
    protocol, invariant = SCENARIOS[scenario]()
    baseline = LocalModelChecker(
        protocol, invariant, budget=budget, config=LMCConfig.optimized()
    ).run()
    protocol, invariant = SCENARIOS[scenario]()
    gated = LocalModelChecker(
        protocol,
        invariant,
        budget=budget,
        config=LMCConfig.optimized(symmetry_reduction=False, por_pruning=False),
    ).run()
    observed = _observable(gated)
    assert observed == _observable(baseline)
    assert observed["counts"]["symmetry_skips"] == 0
    assert observed["counts"]["por_links_suppressed"] == 0


def test_no_declared_symmetry_is_byte_identical():
    """A protocol that declares nothing pays nothing with the knob on.

    The Fig. 2 tree has no interchangeable leaves (leaf 1's sibling is
    interior, leaf 3's sibling is the target), so ``symmetry_classes``
    returns no class and ``SymmetryReducer.for_pass`` hands back ``None`` —
    the run must be byte-identical to the baseline.
    """
    baseline = LocalModelChecker(
        TreeProtocol(), ReceivedImpliesSent(), config=LMCConfig.optimized()
    ).run()
    reduced = LocalModelChecker(
        TreeProtocol(),
        ReceivedImpliesSent(),
        config=LMCConfig.optimized(symmetry_reduction=True),
    ).run()
    assert _observable(reduced) == _observable(baseline)


@given(
    scenario=st.sampled_from(sorted(SCENARIOS)),
    symmetry=st.booleans(),
    por=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_reduction_on_preserves_verdicts(scenario, symmetry, por):
    """Any knob combination reports the same bugs as the unreduced run."""
    protocol, invariant = SCENARIOS[scenario]()
    baseline = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized(stop_on_first_bug=False)
    ).run()
    protocol, invariant = SCENARIOS[scenario]()
    reduced = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(
            stop_on_first_bug=False,
            symmetry_reduction=symmetry,
            por_pruning=por,
        ),
    ).run()
    assert _verdict(reduced) == _verdict(baseline)
    assert (
        reduced.stats.system_states_created
        <= baseline.stats.system_states_created
    )


def test_symmetry_reduces_general_enumeration_and_keeps_the_verdict():
    """On LMC-GEN the full product shrinks by at least the 2x the issue asks.

    Four nodes, one scripted proposer: the three passive acceptors form one
    class (group size 6), so orbit filtering must at least halve
    ``system_states_created`` while the verdict stays clean.
    """
    results = {}
    for symmetry in (False, True):
        protocol = PaxosProtocol(num_nodes=4, proposals=((0, 0, "v0"),))
        results[symmetry] = LocalModelChecker(
            protocol,
            PaxosAgreement(0),
            config=LMCConfig.general(symmetry_reduction=symmetry),
            budget=SearchBudget(max_depth=4),
        ).run()
    assert _verdict(results[True]) == _verdict(results[False])
    unreduced = results[False].stats.system_states_created
    reduced = results[True].stats.system_states_created
    assert reduced * 2 <= unreduced
    assert results[True].stats.symmetry_skips > 0


def _s55():
    protocol = scenario_protocol(buggy=True)
    return protocol, PaxosAgreement(0), partial_choice_state()


def _s56():
    protocol = onepaxos_scenarios.scenario_protocol(buggy=True)
    initial = onepaxos_scenarios.post_leaderchange_state(protocol)
    return protocol, OnePaxosAgreement(0), initial


def test_snapshot_bugs_survive_reduction_with_replayable_witness():
    """The §5.5 and §5.6 bugs are found with both knobs on, and replay."""
    for make in (_s55, _s56):
        protocol, invariant, initial = make()
        baseline = LocalModelChecker(
            protocol, invariant, config=LMCConfig.optimized()
        ).run(initial)
        protocol, invariant, initial = make()
        reduced = LocalModelChecker(
            protocol,
            invariant,
            config=LMCConfig.optimized(symmetry_reduction=True, por_pruning=True),
        ).run(initial)
        assert _verdict(reduced) == _verdict(baseline)
        assert reduced.found_bug
        outcome = validate_bug(protocol, reduced.first_bug(), invariant)
        assert outcome.complete and outcome.violates


def test_por_suppresses_links_without_losing_the_s55_bug():
    """Commutativity pruning actually fires on §5.5 and keeps the witness."""
    protocol, invariant, initial = _s55()
    result = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized(por_pruning=True)
    ).run(initial)
    assert result.found_bug
    assert result.stats.por_links_suppressed > 0
    outcome = validate_bug(protocol, result.first_bug(), invariant)
    assert outcome.complete and outcome.violates


# -- the group algebra the soundness argument relies on -------------------------


def _apply(mapping: Dict[NodeId, NodeId], node: NodeId) -> NodeId:
    return mapping.get(node, node)


def test_group_is_closed_under_composition():
    """π∘σ of any two group elements is again a group element."""
    protocol = PaxosProtocol(num_nodes=5, proposals=((0, 0, "v0"),))
    group = build_group(protocol.symmetry_classes())
    nodes = protocol.node_ids()
    elements = {
        frozenset((node, _apply(mapping, node)) for node in nodes)
        for mapping in group
    }
    assert len(elements) == len(group)
    for outer in group:
        for inner in group:
            composed = frozenset(
                (node, _apply(outer, _apply(inner, node))) for node in nodes
            )
            assert composed in elements


@dataclass(frozen=True)
class _FakeRecord:
    """The record shape ``SymmetryReducer`` consumes: state plus identity."""

    node: NodeId
    index: int
    state: Any
    hash: int


def _record(node: NodeId, state: Any, index: int = 0) -> _FakeRecord:
    return _FakeRecord(node=node, index=index, state=state, hash=content_hash(state))


def _echo_state(node: NodeId, pinged: bool, ponged: bool, pongs: Tuple[int, ...]):
    return EchoNodeState(
        node=node, pinged=pinged, ponged=ponged, pongs_seen=frozenset(pongs)
    )


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_orbit_key_is_invariant_across_the_orbit(data):
    """Renaming a combination by any group element keeps its orbit key.

    This is canonicalisation idempotence: the orbit key of every member of
    an orbit is the key of the orbit's representative, so first-occurrence
    filtering admits exactly one member per orbit.
    """
    protocol = EchoProtocol(num_nodes=4)
    reducer = SymmetryReducer(protocol, protocol.symmetry_classes())
    nodes = protocol.node_ids()
    combo = {}
    for node in nodes:
        state = _echo_state(
            node,
            pinged=data.draw(st.booleans()),
            ponged=data.draw(st.booleans()),
            pongs=tuple(
                data.draw(
                    st.sets(st.sampled_from(nodes), max_size=len(nodes))
                )
            ),
        )
        combo[node] = _record(node, state, index=data.draw(st.integers(0, 3)))
    mapping = data.draw(st.sampled_from(reducer.group))
    # The renamed-hash cache keys on (node, record index): in a real store
    # that pair names one record, so the sibling records here must carry
    # fresh indexes rather than reuse the originals' under a new state.
    renamed = {
        _apply(mapping, node): _record(
            _apply(mapping, node),
            renamed_state(protocol, record.state, mapping),
            index=record.index + 100,
        )
        for node, record in combo.items()
    }
    assert reducer.orbit_key(renamed) == reducer.orbit_key(combo)
    # And first-occurrence filtering treats the sibling as already seen.
    assert reducer.first_occurrence(combo)
    assert not reducer.first_occurrence(renamed)
    assert reducer.orbit_hits == 1


def test_stabilizer_collapses_on_asymmetric_snapshot():
    """Seeding from the §5.5 snapshot must disable the all-nodes group.

    ``scenario_protocol`` scripts no proposals, so every node is passive and
    the hook declares all three interchangeable — true of the uniform boot
    state, false of the crafted partial-choice snapshot.  The stabilizer
    filter must cut the group to the identity (and ``for_pass`` then
    disables the reducer entirely).
    """
    protocol = scenario_protocol(buggy=True)
    reducer = SymmetryReducer(protocol, protocol.symmetry_classes())
    assert len(reducer.group) == 6
    reducer.restrict_to_stabilizer(partial_choice_state())
    assert len(reducer.group) == 1
    assert reducer.group[0] == {}


def test_stabilizer_keeps_the_full_group_on_uniform_boot():
    protocol = PaxosProtocol(num_nodes=4, proposals=((0, 0, "v0"),))
    reducer = SymmetryReducer(protocol, protocol.symmetry_classes())
    assert len(reducer.group) == 6
    reducer.restrict_to_stabilizer(protocol.initial_system_state())
    assert len(reducer.group) == 6


def test_generic_substitution_walker_renames_structured_values():
    """The default ``rename_state`` path rewrites ids inside containers."""
    state = _echo_state(2, pinged=False, ponged=True, pongs=(1, 3))
    renamed = substitute_node_ids(state, {2: 3, 3: 2})
    assert renamed == _echo_state(3, pinged=False, ponged=True, pongs=(1, 2))
    # Identity on values holding no mapped ids — same object, not a copy.
    untouched = _echo_state(0, pinged=True, ponged=False, pongs=())
    assert substitute_node_ids(untouched, {2: 3, 3: 2}) is untouched


def test_paxos_rename_state_relabels_ballots_but_not_rounds():
    """Paxos' explicit ``rename_state`` is sharper than the generic walker.

    A ballot's ``proposer`` is a node id but its ``round`` is not; decree
    indexes are not node ids either.  The explicit hook relabels only the
    id-typed fields — the reason Paxos cannot use ``substitute_node_ids``.
    """
    protocol = PaxosProtocol(num_nodes=4, proposals=((0, 0, "v0"),))
    state = protocol.initial_state(1)
    renamed = renamed_state(protocol, state, {1: 2, 2: 1})
    assert renamed.node == 2
    assert renamed_state(protocol, state, {}) == state
