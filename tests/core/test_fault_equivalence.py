"""Fault scheduling must be invisible when off and sound when on.

PR 4's crash–restart exploration (docs/FAULTS.md) is gated behind
``LMCConfig.fault_events_enabled``; with the gate closed — or open but with
``max_total_crashes=0`` — every counter, verdict and witness trace must be
byte-identical to a run without the fault scheduler, the same discipline
``test_cache_equivalence`` applies to the PR 3 caches.  With the gate open,
crashes must never manufacture violations the protocol cannot exhibit
(acceptor durability makes Paxos crash-safe), and when a genuine
crash-dependent bug exists the witness must carry the fault schedule and
replay end to end.
"""

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.invariants.base import DecomposableInvariant
from repro.model.events import CrashEvent, RestartEvent
from repro.model.protocol import Protocol
from repro.model.system_state import SystemState
from repro.model.types import Action, HandlerResult, Message, NodeId
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator
from repro.replay import validate_bug

#: Phase timers are wall-clock; everything else must match exactly.
EXCLUDED_KEYS = ("phase_",)


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_KEYS)
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


#: Small exhaustible workloads: a clean protocol, a clean consensus run and a
#: genuinely buggy one, so the equivalence holds across verdict shapes.
SCENARIOS = {
    "tree": lambda: (TreeProtocol(), ReceivedImpliesSent()),
    "2pc-clean": lambda: (EagerCommitCoordinator(3), CommitValidity()),
    "2pc-buggy": lambda: (EagerCommitCoordinator(3, no_voters=(2,)), CommitValidity()),
}


@given(
    scenario=st.sampled_from(sorted(SCENARIOS)),
    max_crashes_per_node=st.integers(min_value=0, max_value=2),
    max_transitions=st.one_of(st.none(), st.integers(min_value=20, max_value=200)),
)
@settings(max_examples=15, deadline=None)
def test_zero_crash_budget_is_byte_identical(
    scenario, max_crashes_per_node, max_transitions
):
    """``fault_events_enabled=True, max_total_crashes=0`` == no scheduler."""
    budget = (
        SearchBudget.unbounded()
        if max_transitions is None
        else SearchBudget(max_transitions=max_transitions)
    )
    protocol, invariant = SCENARIOS[scenario]()
    baseline = LocalModelChecker(
        protocol, invariant, budget=budget, config=LMCConfig.optimized()
    ).run()
    protocol, invariant = SCENARIOS[scenario]()
    gated = LocalModelChecker(
        protocol,
        invariant,
        budget=budget,
        config=LMCConfig.optimized(
            fault_events_enabled=True,
            max_total_crashes=0,
            max_crashes_per_node=max_crashes_per_node,
        ),
    ).run()
    assert _observable(gated) == _observable(baseline)


def test_fault_exploration_is_off_by_default():
    for config in (LMCConfig(), LMCConfig.optimized(), LMCConfig.general()):
        assert config.fault_events_enabled is False


def test_paxos_survives_acceptor_crash_restart():
    """One crash–restart per node must not fabricate an agreement violation.

    Acceptor promises and accepted ballots are declared durable by
    ``PaxosProtocol.durable_state``, so a rebooted acceptor cannot forget a
    promise and re-promise to an older ballot — the classic unsound-crash
    false positive.  The single-proposal space must stay exhaustible and
    bug-free with the fault scheduler on.
    """
    protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
    result = LocalModelChecker(
        protocol,
        PaxosAgreement(0),
        config=LMCConfig.optimized(fault_events_enabled=True),
    ).run()
    assert result.completed
    assert not result.found_bug
    snapshot = result.stats.snapshot()
    assert snapshot["fault_crashes"] > 0
    assert snapshot["fault_restarts"] > 0


# -- a protocol whose only bug needs a crash ------------------------------------


@dataclass(frozen=True)
class BootState:
    """Node state with a durable boot counter and a volatile decision."""

    node: NodeId
    boots: int = 0
    value: Optional[str] = None


class VolatileDecisionProtocol(Protocol):
    """Each node decides once; the decision depends on the boot generation.

    The boot counter is durable, the decision is volatile — so the only way
    two nodes can disagree is for one of them to crash after the run starts
    and decide again on generation 1.  Any witness of the violation must
    therefore contain the crash and the restart.
    """

    name = "volatile-decision"

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0, 1)

    def initial_state(self, node: NodeId) -> BootState:
        return BootState(node=node)

    def handle_message(self, state: BootState, message: Message) -> HandlerResult:
        return HandlerResult(state)

    def enabled_actions(self, state: BootState) -> Tuple[Action, ...]:
        if state.value is None:
            return (Action(node=state.node, name="decide"),)
        return ()

    def handle_action(self, state: BootState, action: Action) -> HandlerResult:
        if action.name != "decide" or state.value is not None:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, value="a" if state.boots == 0 else "b")
        )

    def durable_state(self, node: NodeId, state: BootState) -> int:
        return state.boots

    def restart_state(self, node: NodeId, durable: int) -> BootState:
        return BootState(node=node, boots=durable + 1)


class DecisionAgreement(DecomposableInvariant):
    """No two nodes may hold different decisions."""

    name = "decision-agreement"

    def check(self, system: SystemState) -> bool:
        values = {
            getattr(state, "value", None) for _node, state in system.items()
        } - {None}
        return len(values) <= 1

    def local_projection(self, node: NodeId, state: Any) -> Optional[str]:
        return getattr(state, "value", None)


def test_crash_dependent_bug_found_with_fault_witness():
    """A violation that *needs* a crash yields a replayable fault witness."""
    protocol = VolatileDecisionProtocol()
    invariant = DecisionAgreement()

    clean = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
    assert clean.completed and not clean.found_bug

    result = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(fault_events_enabled=True),
    ).run()
    assert result.found_bug
    bug = result.first_bug()
    kinds = {type(event) for event in bug.trace}
    assert CrashEvent in kinds
    assert RestartEvent in kinds

    outcome = validate_bug(protocol, bug, invariant)
    assert outcome.complete and outcome.violates


def test_crash_budget_knobs_bound_the_fault_space():
    """Per-node and global caps actually limit executed faults."""
    protocol = VolatileDecisionProtocol()
    invariant = DecisionAgreement()
    result = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(
            fault_events_enabled=True,
            max_total_crashes=1,
            stop_on_first_bug=False,
        ),
    ).run()
    snapshot = result.stats.snapshot()
    assert snapshot["fault_crashes"] == 1
    assert snapshot["fault_restarts"] >= 1
