"""Observability on vs off must be observationally identical.

The run registry, heartbeats, and coverage accounting (docs/OBSERVABILITY.md
"Live operations") are instrumentation only: every counter, verdict, and
witness trace must be byte-identical with them enabled — the same gate the
PR 3 cache work and the PR 4 fault scheduler hold themselves to.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.obs.coverage import CoverageTracker
from repro.obs.registry import RunRegistry
from repro.protocols.onepaxos import OnePaxosAgreement
from repro.protocols.onepaxos import scenarios as onepaxos_scenarios
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol

#: Phase timers are wall-clock and excluded, as in the cache-equivalence gate.
EXCLUDED_KEYS = ("phase_",)


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_KEYS)
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


def _paxos_s55():
    protocol = scenario_protocol(buggy=True)
    return protocol, PaxosAgreement(0), partial_choice_state()


def _onepaxos_s56():
    protocol = onepaxos_scenarios.scenario_protocol(buggy=True)
    return (
        protocol,
        OnePaxosAgreement(0),
        onepaxos_scenarios.post_leaderchange_state(protocol),
    )


def _instrumented_kwargs(tmp_path, interval):
    handle = RunRegistry(str(tmp_path)).register(
        "test", workload="scenario", algorithm="lmc-opt"
    )
    # Zero min_interval so every sample really writes a heartbeat — the
    # harshest instrumentation the registry can apply.
    handle.min_interval = 0.0
    return {
        "run_handle": handle,
        "coverage": CoverageTracker(),
        "metrics_interval": interval,
    }


@pytest.mark.parametrize("scenario", [_paxos_s55, _onepaxos_s56], ids=["s55", "s56"])
def test_local_checker_identical_with_observability_on(scenario, tmp_path):
    protocol, invariant, initial = scenario()

    def run(**kwargs):
        return LocalModelChecker(
            protocol, invariant, config=LMCConfig.optimized(), **kwargs
        ).run(initial)

    plain = run()
    instrumented = run(**_instrumented_kwargs(tmp_path, interval=0.001))
    assert plain.found_bug and instrumented.found_bug
    assert _observable(plain) == _observable(instrumented)


def test_parallel_checker_identical_with_observability_on(tmp_path):
    protocol, invariant, initial = _paxos_s55()
    budget = SearchBudget(max_transitions=400)
    config = LMCConfig.optimized(max_collected_preliminary=64)

    def run(**kwargs):
        return ParallelLocalModelChecker(
            protocol, invariant, budget=budget, config=config, workers=0, **kwargs
        ).run(initial)

    plain = run()
    instrumented = run(**_instrumented_kwargs(tmp_path, interval=0.001))
    assert _observable(plain) == _observable(instrumented)


def test_depth_series_identical_with_observability_on(tmp_path):
    """The Fig. 10-13 series must not shift under heartbeat sampling."""
    protocol, invariant, initial = _paxos_s55()

    def run(**kwargs):
        return LocalModelChecker(
            protocol, invariant, config=LMCConfig.optimized(), **kwargs
        ).run(initial)

    plain = run()
    instrumented = run(**_instrumented_kwargs(tmp_path, interval=0.001))
    assert plain.series.depths() == instrumented.series.depths()
    assert [s.metrics.get("transitions") for s in plain.series.samples] == [
        s.metrics.get("transitions") for s in instrumented.series.samples
    ]


def test_instrumented_run_leaves_durable_record(tmp_path):
    protocol, invariant, initial = _paxos_s55()
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("test", workload="s55", algorithm="lmc-opt")
    coverage = CoverageTracker()
    checker = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(),
        run_handle=handle,
        coverage=coverage,
        metrics_interval=0.001,
    )
    result = checker.run(initial)
    assert result.found_bug
    record = registry.load(handle.run_id)
    assert record.heartbeat is not None
    assert record.heartbeat["depth"] >= 0
    assert "transitions" in record.heartbeat
    assert record.heartbeat["round"] >= 1
    assert "frontier" in record.heartbeat
