"""Determinism: identical inputs must produce identical explorations.

Content hashing is process-stable (BLAKE2b over canonical encodings, not
Python's salted ``hash``), handlers are pure, and the checkers consult the
wall clock only for budgets — so every counter of two identical runs must
coincide exactly.  This is what makes counterexamples reproducible and the
benches meaningful.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol

COUNTERS = (
    "transitions",
    "noop_executions",
    "global_states",
    "node_states",
    "system_states_created",
    "invariant_checks",
    "preliminary_violations",
    "soundness_calls",
    "soundness_sequences",
    "confirmed_bugs",
    "history_skips",
    "suppressed_duplicates",
)


def counters_of(result):
    return {name: getattr(result.stats, name) for name in COUNTERS}


def test_lmc_runs_identically_twice():
    def run():
        return LocalModelChecker(
            PaxosProtocol(), PaxosAgreement(0), config=LMCConfig.optimized()
        ).run()

    assert counters_of(run()) == counters_of(run())


def test_global_runs_identically_twice():
    def run():
        return GlobalModelChecker(PaxosProtocol(), PaxosAgreement(0)).run()

    assert counters_of(run()) == counters_of(run())


def test_bug_witness_identical_across_runs():
    def run():
        return LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            config=LMCConfig.optimized(),
        ).run(partial_choice_state())

    first, second = run(), run()
    assert first.first_bug().trace == second.first_bug().trace
    assert first.first_bug().violating_state == second.first_bug().violating_state


def test_determinism_across_processes():
    """Content hashing must not depend on PYTHONHASHSEED."""
    script = (
        "from repro.core.checker import LocalModelChecker\n"
        "from repro.core.config import LMCConfig\n"
        "from repro.protocols.paxos import PaxosAgreement, PaxosProtocol\n"
        "r = LocalModelChecker(PaxosProtocol(), PaxosAgreement(0),"
        " config=LMCConfig.optimized()).run()\n"
        "print(r.stats.transitions, r.stats.node_states,"
        " r.stats.history_skips)\n"
    )

    # A scrubbed environment (fresh hash seed, nothing else) — except that
    # the child must still find the package when the suite runs from a
    # plain checkout via PYTHONPATH=src, so the checkout's src dir (and any
    # caller-provided PYTHONPATH) is forwarded.
    src_dir = Path(__file__).resolve().parents[2] / "src"
    pythonpath = os.pathsep.join(
        [str(src_dir)]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    )

    def run(seed: str) -> str:
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": seed,
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": pythonpath,
            },
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    assert run("1") == run("424242")
