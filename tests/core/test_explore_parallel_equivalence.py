"""Parallel frontier exploration must be invisible in every result.

The PR's speculative round executor (docs/PERFORMANCE.md "Parallel frontier
exploration") precomputes handler results on pool workers and merges them by
replaying the exact serial sweep, so with ``explore_workers > 0`` every
counter, verdict, witness trace and stop reason must equal the serial run —
the same equivalence discipline ``test_cache_equivalence`` and
``test_fault_equivalence`` apply to the PR 3 caches and the PR 4 fault
scheduler.  The tests force tiny thresholds/shards so even small state
spaces exercise dispatch, sync-miss recovery and the merge path, and a
SIGKILL test checks the broken-pool retry leaves verdicts intact.
"""

import os
import signal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.pool import shared_executor, shutdown_worker_pool
from repro.explore.budget import SearchBudget
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator
from repro.replay import validate_bug

#: Phase timers are wall-clock; the explore_* counters exist only so the
#: parallel run can prove it actually went parallel.  Everything else must
#: match the serial run exactly.
EXCLUDED_KEYS = ("phase_", "explore_")

#: Aggressive knobs: parallelize every round, shard to single items, so tiny
#: test spaces still cross the dispatch/merge machinery many times.
PARALLEL = dict(explore_workers=2, explore_round_threshold=1, explore_shard_min=1)


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_KEYS)
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


def _run(protocol, invariant, budget=None, initial=None, **config_kw):
    checker = LocalModelChecker(
        protocol,
        invariant,
        budget=budget or SearchBudget.unbounded(),
        config=LMCConfig.optimized(**config_kw),
    )
    return checker.run(initial)


class TestEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(no_voter=st.sampled_from([None, 0, 1, 2]))
    def test_2pc_matches_serial(self, no_voter):
        voters = (no_voter,) if no_voter is not None else ()
        serial = _run(EagerCommitCoordinator(3, no_voters=voters), CommitValidity())
        parallel = _run(
            EagerCommitCoordinator(3, no_voters=voters), CommitValidity(), **PARALLEL
        )
        assert _observable(serial) == _observable(parallel)
        assert parallel.stats.explore_rounds_parallel > 0

    @settings(max_examples=4, deadline=None)
    @given(depth=st.integers(min_value=3, max_value=6))
    def test_depth_bounded_paxos_matches_serial(self, depth):
        protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
        budget = SearchBudget(max_depth=depth)
        serial = _run(protocol, PaxosAgreement(0), budget=budget)
        parallel = _run(protocol, PaxosAgreement(0), budget=budget, **PARALLEL)
        assert _observable(serial) == _observable(parallel)
        assert parallel.stats.explore_rounds_parallel > 0

    @settings(max_examples=3, deadline=None)
    @given(max_crashes=st.integers(min_value=0, max_value=2))
    def test_faulty_paxos_matches_serial(self, max_crashes):
        protocol = PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),))
        budget = SearchBudget(max_depth=5)
        faults = dict(fault_events_enabled=True, max_total_crashes=max_crashes)
        serial = _run(protocol, PaxosAgreement(0), budget=budget, **faults)
        parallel = _run(
            protocol, PaxosAgreement(0), budget=budget, **faults, **PARALLEL
        )
        assert _observable(serial) == _observable(parallel)
        assert parallel.stats.explore_rounds_parallel > 0

    def test_buggy_scenario_bug_and_witness_match(self):
        serial = _run(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            initial=partial_choice_state(),
        )
        parallel = _run(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            initial=partial_choice_state(),
            **PARALLEL,
        )
        assert serial.found_bug and parallel.found_bug
        assert _observable(serial) == _observable(parallel)
        replayed = validate_bug(
            scenario_protocol(buggy=True), parallel.first_bug(), PaxosAgreement(0)
        )
        assert replayed.complete and replayed.violates

    def test_round_threshold_keeps_small_runs_serial(self):
        result = _run(
            EagerCommitCoordinator(3),
            CommitValidity(),
            explore_workers=2,
            explore_round_threshold=10_000,
        )
        assert result.completed
        assert result.stats.explore_rounds_parallel == 0
        assert result.stats.explore_shards == 0


class TestPoolFailure:
    def teardown_method(self):
        shutdown_worker_pool()

    def test_killed_worker_mid_setup_still_matches_serial(self):
        """SIGKILL a pool worker; dispatch must recover (or fall back) with
        byte-identical results either way."""
        shutdown_worker_pool()
        executor = shared_executor(2)
        victim = executor.submit(os.getpid).result()
        os.kill(victim, signal.SIGKILL)
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        serial = _run(EagerCommitCoordinator(3, no_voters=(2,)), CommitValidity())
        parallel = _run(protocol, CommitValidity(), **PARALLEL)
        assert _observable(serial) == _observable(parallel)
        assert parallel.found_bug
        replayed = validate_bug(protocol, parallel.first_bug(), CommitValidity())
        assert replayed.complete and replayed.violates
