"""Tests for soundness verification: sequence enumeration and greedy replay."""

from repro.core.records import LocalStateSpace, PredecessorLink
from repro.core.soundness import SequenceStep, SoundnessVerifier, replay_sequences
from repro.model.events import DeliveryEvent, InternalEvent, event_hash
from repro.model.hashing import content_hash
from repro.model.types import Action, Message
from repro.stats.counters import ExplorationStats


def internal(node, name):
    return InternalEvent(Action(node=node, name=name))


def delivery(dest, src, payload):
    return DeliveryEvent(Message(dest=dest, src=src, payload=payload))


def step(event, consumed=None, generated=()):
    return SequenceStep(event, consumed, tuple(generated))


class TestReplay:
    def test_empty_sequences_are_valid(self):
        assert replay_sequences({0: (), 1: ()}) == ()

    def test_local_events_always_enabled(self):
        order = replay_sequences({0: (step(internal(0, "a")),)})
        assert order is not None
        assert len(order) == 1

    def test_delivery_needs_generated_message(self):
        msg_hash = 111
        send = step(internal(0, "send"), generated=(msg_hash,))
        recv = step(delivery(1, 0, "m"), consumed=msg_hash)
        # send generates, recv consumes: valid in this order only.
        assert replay_sequences({0: (send,), 1: (recv,)}) is not None
        assert replay_sequences({0: (), 1: (recv,)}) is None

    def test_consumption_respects_multiplicity(self):
        msg_hash = 7
        send_once = step(internal(0, "send"), generated=(msg_hash,))
        recv = step(delivery(1, 0, "m"), consumed=msg_hash)
        recv_again = step(delivery(1, 0, "m"), consumed=msg_hash)
        # One generated copy cannot satisfy two consumptions.
        assert (
            replay_sequences({0: (send_once,), 1: (recv, recv_again)}) is None
        )
        send_twice = step(internal(0, "send"), generated=(msg_hash, msg_hash))
        assert (
            replay_sequences({0: (send_twice,), 1: (recv, recv_again)})
            is not None
        )

    def test_cross_dependencies_resolved_greedily(self):
        # 0 sends m1; 1 consumes m1 and sends m2; 0 consumes m2.
        m1, m2 = 1, 2
        seq0 = (
            step(internal(0, "send"), generated=(m1,)),
            step(delivery(0, 1, "m2"), consumed=m2),
        )
        seq1 = (step(delivery(1, 0, "m1"), consumed=m1, generated=(m2,)),)
        order = replay_sequences({0: seq0, 1: seq1})
        assert order is not None
        assert len(order) == 3

    def test_circular_wait_is_invalid(self):
        # Each node's first event needs the other's message: deadlock.
        m1, m2 = 1, 2
        seq0 = (step(delivery(0, 1, "x"), consumed=m2, generated=(m1,)),)
        seq1 = (step(delivery(1, 0, "y"), consumed=m1, generated=(m2,)),)
        assert replay_sequences({0: seq0, 1: seq1}) is None

    def test_order_interleaves_nodes(self):
        m1 = 5
        seq0 = (step(internal(0, "a")), step(delivery(0, 1, "m"), consumed=m1))
        seq1 = (step(internal(1, "b"), generated=(m1,)),)
        order = replay_sequences({0: seq0, 1: seq1})
        assert order is not None
        nodes = [event.node for event in order]
        assert set(nodes) == {0, 1}


class TestSequenceEnumeration:
    def _space_with_chain(self):
        """Node 0: seed -> s1 -> s2, with an extra alternative path to s2."""
        space = LocalStateSpace((0,))
        seed = space.seed(0, "seed")
        store = space.store(0)
        s1 = store.add("s1", content_hash("s1"), 1, 0, frozenset())
        ev1 = internal(0, "e1")
        s1.add_predecessor(
            PredecessorLink(seed.hash, ev1, event_hash(ev1), None, ())
        )
        s2 = store.add("s2", content_hash("s2"), 2, 0, frozenset())
        ev2 = internal(0, "e2")
        s2.add_predecessor(
            PredecessorLink(s1.hash, ev2, event_hash(ev2), None, ())
        )
        ev3 = internal(0, "e3")
        s2.add_predecessor(
            PredecessorLink(seed.hash, ev3, event_hash(ev3), None, ())
        )
        return space, seed, s1, s2

    def test_all_simple_paths_enumerated(self):
        space, _seed, _s1, s2 = self._space_with_chain()
        verifier = SoundnessVerifier(space, ExplorationStats())
        sequences = verifier._enumerate_sequences(s2)
        lengths = sorted(len(seq) for seq in sequences)
        assert lengths == [1, 2]  # seed->s2 direct, and seed->s1->s2

    def test_seed_state_has_one_empty_sequence(self):
        space, seed, _s1, _s2 = self._space_with_chain()
        verifier = SoundnessVerifier(space, ExplorationStats())
        assert verifier._enumerate_sequences(seed) == [()]

    def test_self_reference_links_ignored(self):
        space = LocalStateSpace((0,))
        seed = space.seed(0, "seed")
        store = space.store(0)
        s1 = store.add("s1", content_hash("s1"), 1, 0, frozenset())
        ev = internal(0, "e")
        s1.add_predecessor(PredecessorLink(seed.hash, ev, event_hash(ev), None, ()))
        loop = internal(0, "loop")
        s1.add_predecessor(
            PredecessorLink(s1.hash, loop, event_hash(loop), None, ())
        )
        verifier = SoundnessVerifier(space, ExplorationStats())
        sequences = verifier._enumerate_sequences(s1)
        assert len(sequences) == 1

    def test_sequence_cap_respected(self):
        space, _seed, _s1, s2 = self._space_with_chain()
        verifier = SoundnessVerifier(
            space, ExplorationStats(), max_sequences_per_node=1
        )
        sequences = verifier._enumerate_sequences(s2)
        assert len(sequences) == 1

    def test_is_state_sound_counts_calls(self):
        space, _seed, _s1, s2 = self._space_with_chain()
        stats = ExplorationStats()
        verifier = SoundnessVerifier(space, stats)
        witness = verifier.is_state_sound({0: s2})
        assert witness is not None
        assert stats.soundness_calls == 1
        assert stats.soundness_sequences >= 1

    def test_combination_cap_gives_up(self):
        space, _seed, _s1, s2 = self._space_with_chain()
        stats = ExplorationStats()
        verifier = SoundnessVerifier(space, stats, max_combinations=0)
        assert verifier.is_state_sound({0: s2}) is None
