"""Cross-validation: LMC must agree with the sound-and-complete baseline.

For every workload small enough to exhaust, the global checker's verdict is
ground truth: it visits exactly the reachable states.  These tests sweep
protocol configurations — including hypothesis-generated topologies — and
assert both checkers agree on bug/no-bug, which exercises completeness
(no false negatives) and soundness (no false positives) of LMC end to end.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.chain import ChainOrder, ChainProtocol
from repro.protocols.echo import EchoProtocol, PongsImplyPing
from repro.protocols.randtree import (
    ChildrenSiblingsDisjoint,
    RandTreeProtocol,
    SiblingMixupRandTree,
)
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import (
    Atomicity,
    CommitValidity,
    EagerCommitCoordinator,
    TwoPhaseCommit,
)


def verdicts_agree(protocol, invariant, config=LMCConfig()):
    global_result = GlobalModelChecker(protocol, invariant).run()
    local_result = LocalModelChecker(protocol, invariant, config=config).run()
    # A run either exhausts the space or stopped on its first bug.
    assert global_result.completed or global_result.found_bug
    assert local_result.completed or local_result.found_bug
    assert global_result.found_bug == local_result.found_bug, (
        f"global={global_result.found_bug} local={local_result.found_bug} "
        f"on {protocol.name}"
    )
    return global_result, local_result


class TestFixedWorkloads:
    @pytest.mark.parametrize("length", [2, 3, 4, 5])
    def test_chain_lengths(self, length):
        verdicts_agree(ChainProtocol(length), ChainOrder())

    @pytest.mark.parametrize("nodes", [2, 3])
    def test_echo_sizes(self, nodes):
        verdicts_agree(EchoProtocol(nodes), PongsImplyPing())

    @pytest.mark.parametrize("no_voters", [(), (1,), (2,), (1, 2)])
    def test_2pc_correct_all_vote_scripts(self, no_voters):
        verdicts_agree(TwoPhaseCommit(3, no_voters=no_voters), CommitValidity())
        verdicts_agree(TwoPhaseCommit(3, no_voters=no_voters), Atomicity())

    @pytest.mark.parametrize("no_voters", [(1,), (2,), (1, 2)])
    def test_2pc_eager_bug_agreed(self, no_voters):
        global_result, local_result = verdicts_agree(
            EagerCommitCoordinator(3, no_voters=no_voters), CommitValidity()
        )
        assert global_result.found_bug

    def test_2pc_eager_all_yes_is_actually_fine(self):
        # Without a no-voter, committing on the first yes is premature but
        # never wrong: every participant votes yes.
        global_result, _local = verdicts_agree(
            EagerCommitCoordinator(3, no_voters=()), CommitValidity()
        )
        assert not global_result.found_bug

    @pytest.mark.parametrize("nodes", [2, 3, 4])
    def test_randtree_correct(self, nodes):
        verdicts_agree(RandTreeProtocol(nodes), ChildrenSiblingsDisjoint())

    @pytest.mark.parametrize("nodes", [2, 3, 4])
    def test_randtree_buggy(self, nodes):
        global_result, _local = verdicts_agree(
            SiblingMixupRandTree(nodes), ChildrenSiblingsDisjoint()
        )
        assert global_result.found_bug

    @pytest.mark.parametrize("initiators", [(0,), (1,), (0, 2)])
    def test_ring_correct(self, initiators):
        from repro.protocols.ring import AtMostOneLeader, RingElection

        verdicts_agree(RingElection(3, initiators=initiators), AtMostOneLeader())

    def test_ring_buggy(self):
        from repro.protocols.ring import AtMostOneLeader, GreedyRingElection

        global_result, _local = verdicts_agree(
            GreedyRingElection(3), AtMostOneLeader()
        )
        assert global_result.found_bug

    @pytest.mark.parametrize("length", [2, 3])
    def test_stream_in_order_violated_by_both(self, length):
        from repro.protocols.stream import InOrderDelivery, StreamProtocol

        global_result, _local = verdicts_agree(
            StreamProtocol(length + 1), InOrderDelivery()
        )
        assert global_result.found_bug

    def test_fifo_wrapped_stream_clean_for_both(self):
        from repro.invariants.base import PredicateInvariant
        from repro.protocols.fifo_wrapper import (
            FifoStampedProtocol,
            unwrap_system_state,
        )
        from repro.protocols.stream import InOrderDelivery, StreamProtocol

        wrapped_inv = PredicateInvariant(
            "in-order+unwrap",
            lambda s: InOrderDelivery().check(unwrap_system_state(s)),
        )
        # reassemble mode is sound under both semantics
        verdicts_agree(
            FifoStampedProtocol(StreamProtocol(3), mode="reassemble"),
            wrapped_inv,
        )


# hypothesis strategy: random small forest topologies rooted at 0
@st.composite
def tree_topologies(draw):
    num_nodes = draw(st.integers(min_value=3, max_value=6))
    children = {}
    # every node except 0 gets a parent among lower-numbered nodes, which
    # guarantees an acyclic topology reaching from the root
    for node in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        children.setdefault(parent, []).append(node)
    target = draw(st.integers(min_value=1, max_value=num_nodes - 1))
    return (
        {parent: tuple(kids) for parent, kids in children.items()},
        target,
    )


class TestGeneratedTopologies:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tree_topologies())
    def test_tree_forwarding_agreement(self, topology):
        children, target = topology
        protocol = TreeProtocol(children=children, origin=0, target=target)
        invariant = ReceivedImpliesSent(origin=0, target=target)
        verdicts_agree(protocol, invariant)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tree_topologies())
    def test_tree_forwarding_agreement_stateless(self, topology):
        children, target = topology
        protocol = TreeProtocol(
            children=children, origin=0, target=target, track_forwarding=False
        )
        invariant = ReceivedImpliesSent(origin=0, target=target)
        verdicts_agree(protocol, invariant)
