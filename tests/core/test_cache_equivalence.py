"""Caches on vs caches off must be observationally identical.

PR 3's hot-path optimizations (interned hashing, memoized soundness replay,
incremental enumeration) are performance work only: every counter the §5
benches print, every verdict, and every witness trace must be byte-identical
with the caches disabled.  ``tools/bench.py`` checks this across processes;
these tests check it in-process on the two snapshot experiments (§5.5 Paxos
and §5.6 1Paxos), for both the sequential and the parallel front-end.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.model import hashing
from repro.protocols.onepaxos import OnePaxosAgreement
from repro.protocols.onepaxos import scenarios as onepaxos_scenarios
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator

#: Snapshot keys excluded from comparison: phase timers are wall-clock, and
#: the cache-hit counters are definitionally zero in the uncached run.
EXCLUDED_KEYS = ("phase_",)
CACHE_ONLY_KEYS = frozenset(
    {"sequence_cache_hits", "replay_cache_hits", "rejected_cache_evictions"}
)


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_KEYS) and key not in CACHE_ONLY_KEYS
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


def _run(make_checker, initial, cached, **extra):
    overrides = dict(extra)
    if not cached:
        overrides.update(
            {"memoize_soundness": False, "incremental_enumeration": False}
        )
    if not cached:
        hashing.configure_interning(False)
        hashing.configure_encoding_caches(False)
    try:
        return make_checker(LMCConfig.optimized(**overrides)).run(initial)
    finally:
        hashing.configure_encoding_caches(True)
        hashing.configure_interning(True)


def _paxos_s55():
    protocol = scenario_protocol(buggy=True)
    invariant = PaxosAgreement(0)
    return protocol, invariant, partial_choice_state()


def _onepaxos_s56():
    protocol = onepaxos_scenarios.scenario_protocol(buggy=True)
    invariant = OnePaxosAgreement(0)
    return protocol, invariant, onepaxos_scenarios.post_leaderchange_state(protocol)


@pytest.mark.parametrize("scenario", [_paxos_s55, _onepaxos_s56], ids=["s55", "s56"])
def test_local_checker_equivalent_with_and_without_caches(scenario):
    protocol, invariant, initial = scenario()

    def make(config):
        return LocalModelChecker(protocol, invariant, config=config)

    cached = _run(make, initial, cached=True)
    uncached = _run(make, initial, cached=False)
    assert cached.found_bug and uncached.found_bug
    assert _observable(cached) == _observable(uncached)


#: The parallel front-end defers soundness verification, so it cannot stop
#: on the first bug and would otherwise exhaust the snapshot spaces; a
#: deterministic transition budget (the parallel ablation bench's pattern)
#: plus a preliminary-collection cap keep the work list identical across
#: modes and the test fast.
PARALLEL_BUDGET = SearchBudget(max_transitions=400)
PARALLEL_OVERRIDES = {"max_collected_preliminary": 64}


@pytest.mark.parametrize("scenario", [_paxos_s55, _onepaxos_s56], ids=["s55", "s56"])
def test_parallel_checker_equivalent_with_and_without_caches(scenario):
    protocol, invariant, initial = scenario()

    def make(config):
        return ParallelLocalModelChecker(
            protocol, invariant, budget=PARALLEL_BUDGET, config=config, workers=0
        )

    cached = _run(make, initial, cached=True, **PARALLEL_OVERRIDES)
    uncached = _run(make, initial, cached=False, **PARALLEL_OVERRIDES)
    assert _observable(cached) == _observable(uncached)


def test_parallel_confirms_bug_identically_with_and_without_caches():
    """On a space small enough to exhaust, the confirmed bug is identical."""
    protocol = EagerCommitCoordinator(3, no_voters=(2,))

    def make(config):
        return ParallelLocalModelChecker(
            protocol, CommitValidity(), config=config, workers=0
        )

    cached = _run(make, None, cached=True)
    uncached = _run(make, None, cached=False)
    assert cached.found_bug and uncached.found_bug
    assert _observable(cached) == _observable(uncached)
