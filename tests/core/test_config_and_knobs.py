"""Tests for the §4.2 pragmatic knobs of the local checker."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.invariants.base import LocalInvariant, PredicateInvariant
from repro.model.protocol import Protocol
from repro.model.types import Action, HandlerResult, Message, local_assert
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol

TRUE_INV = PredicateInvariant("true", lambda s: True)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        LMCConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duplicate_limit": -1},
            {"local_event_bound": -2},
            {"widen_increment": -1},
            {"assertion_policy": "explode"},
            {"max_sequences_per_node": 0},
            {"max_combinations_per_check": -5},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LMCConfig(**kwargs)

    def test_factory_methods(self):
        assert not LMCConfig.general().invariant_specific_creation
        assert LMCConfig.optimized().invariant_specific_creation


class TestPhaseToggles:
    """The Fig. 13 configurations: LMC-explore and LMC-system-state."""

    def test_explore_only_creates_no_system_states(self):
        result = LocalModelChecker(
            TreeProtocol(),
            ReceivedImpliesSent(),
            config=LMCConfig(create_system_states=False),
        ).run()
        assert result.completed
        assert result.stats.system_states_created == 0
        assert result.stats.preliminary_violations == 0

    def test_soundness_disabled_counts_but_never_confirms(self):
        result = LocalModelChecker(
            TreeProtocol(),
            ReceivedImpliesSent(),
            config=LMCConfig(verify_soundness=False),
        ).run()
        assert result.completed
        assert result.stats.preliminary_violations > 0
        assert result.stats.soundness_calls == 0
        assert not result.found_bug

    def test_phase_timers_populated(self):
        result = LocalModelChecker(TreeProtocol(), ReceivedImpliesSent()).run()
        phases = result.stats.phase_seconds
        assert "explore" in phases
        assert "system_states" in phases
        assert "soundness" in phases


class TestDuplicateLimit:
    def test_zero_limit_suppresses_duplicates(self):
        result = LocalModelChecker(
            PaxosProtocol(), PaxosAgreement(0), config=LMCConfig(duplicate_limit=0)
        ).run()
        assert result.stats.suppressed_duplicates > 0

    def test_duplicates_add_work_but_no_states(self):
        """The §4.2 rationale for limit 0: duplicate copies are pure waste."""
        zero = LocalModelChecker(
            PaxosProtocol(), PaxosAgreement(0), config=LMCConfig(duplicate_limit=0)
        ).run()
        two = LocalModelChecker(
            PaxosProtocol(), PaxosAgreement(0), config=LMCConfig(duplicate_limit=2)
        ).run()
        assert two.stats.node_states == zero.stats.node_states
        assert two.stats.transitions > zero.stats.transitions


class _AssertingProtocol(Protocol):
    """Two nodes; node 1's handler asserts the message is not 'poison'."""

    name = "asserting"

    def node_ids(self):
        return (0, 1)

    def initial_state(self, node):
        return (node, "init")

    def enabled_actions(self, state):
        if state == (0, "init"):
            return (Action(node=0, name="go"),)
        return ()

    def handle_action(self, state, action):
        if action.name == "go" and state == (0, "init"):
            return HandlerResult(
                (0, "done"),
                (
                    Message(dest=1, src=0, payload="ok"),
                    Message(dest=1, src=0, payload="poison"),
                ),
            )
        return HandlerResult(state)

    def handle_message(self, state, message):
        if state[0] != 1:
            return HandlerResult(state)
        local_assert(message.payload != "poison", "unexpected message", node=1)
        if state == (1, "init"):
            return HandlerResult((1, "got-" + message.payload))
        return HandlerResult(state)


class TestAssertionPolicies:
    def test_discard_policy_drops_states(self):
        result = LocalModelChecker(
            _AssertingProtocol(),
            TRUE_INV,
            config=LMCConfig(assertion_policy="discard"),
        ).run()
        assert result.completed
        assert result.stats.states_discarded_by_assert > 0

    def test_ignore_policy_keeps_states(self):
        result = LocalModelChecker(
            _AssertingProtocol(),
            TRUE_INV,
            config=LMCConfig(assertion_policy="ignore"),
        ).run()
        assert result.completed
        assert result.stats.states_discarded_by_assert == 0

    def test_seed_states_never_discarded(self):
        class SeedPoison(LocalInvariant):
            name = "never"

            def check_local(self, node, state):
                return True

        result = LocalModelChecker(
            _AssertingProtocol(),
            SeedPoison(),
            config=LMCConfig(assertion_policy="discard"),
        ).run()
        # the seed of node 1 receives poison (conservative delivery) but
        # must survive: discarding the live state would be absurd.
        assert result.completed


class TestLocalEventBoundWidening:
    def test_bound_zero_blocks_everything(self):
        result = LocalModelChecker(
            PaxosProtocol(),
            TRUE_INV,
            config=LMCConfig(local_event_bound=0, widen_increment=0),
        ).run()
        # no local events at all: only the three seeds exist
        assert result.completed
        assert result.stats.node_states == 3

    def test_widening_restarts_until_saturation(self):
        bounded = LocalModelChecker(
            PaxosProtocol(),
            PaxosAgreement(0),
            config=LMCConfig(local_event_bound=1, widen_increment=1),
        ).run()
        unbounded = LocalModelChecker(
            PaxosProtocol(), PaxosAgreement(0), config=LMCConfig()
        ).run()
        assert bounded.completed
        # Widening must eventually reach everything the unbounded run sees
        # (the last pass explores with a sufficient bound).  Total node
        # states across passes are at least the unbounded count.
        assert bounded.stats.node_states >= unbounded.stats.node_states

    def test_no_widening_leaves_bound_in_place(self):
        result = LocalModelChecker(
            PaxosProtocol(),
            TRUE_INV,
            config=LMCConfig(local_event_bound=1, widen_increment=0),
        ).run()
        assert result.completed


class TestReverifyExtension:
    def test_reverify_flag_smoke(self):
        # The extension must at minimum not break a normal run.
        result = LocalModelChecker(
            TreeProtocol(),
            ReceivedImpliesSent(),
            config=LMCConfig(reverify_rejected=True),
        ).run()
        assert result.completed
        assert not result.found_bug
