"""Remaining budget and stop-criterion edge cases."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import BudgetClock, SearchBudget
from repro.invariants.base import PredicateInvariant
from repro.protocols.echo import EchoProtocol
from repro.protocols.tree import TreeProtocol

TRUE = PredicateInvariant("true", lambda s: True)


class TestSearchBudgetFactories:
    def test_unbounded(self):
        budget = SearchBudget.unbounded()
        assert budget.max_depth is None
        assert budget.max_seconds is None

    def test_depth_factory(self):
        assert SearchBudget.depth(5).max_depth == 5

    def test_seconds_factory(self):
        budget = SearchBudget.seconds(2.5, max_depth=7)
        assert budget.max_seconds == 2.5
        assert budget.max_depth == 7


class TestBudgetClockEdges:
    def test_unbounded_never_stops(self):
        clock = BudgetClock(SearchBudget.unbounded())
        assert clock.stop_reason(10**9, 10**9) is None
        assert clock.depth_allowed(10**9)

    def test_transition_bound_reported(self):
        clock = BudgetClock(SearchBudget(max_transitions=10))
        assert clock.stop_reason(9, 0) is None
        assert clock.stop_reason(10, 0) == "transition budget exhausted"

    def test_state_bound_reported(self):
        clock = BudgetClock(SearchBudget(max_states=3))
        assert clock.stop_reason(0, 2) is None
        assert clock.stop_reason(0, 3) == "state budget exhausted"

    def test_elapsed_monotone(self):
        clock = BudgetClock(SearchBudget.unbounded())
        first = clock.elapsed()
        second = clock.elapsed()
        assert second >= first >= 0


class TestLmcDepthBound:
    def test_depth_zero_keeps_only_seeds(self):
        result = LocalModelChecker(
            TreeProtocol(), TRUE, budget=SearchBudget(max_depth=0)
        ).run()
        assert result.completed
        assert result.stats.node_states == 5  # seeds only

    def test_depth_bound_is_per_node_sequence(self):
        shallow = LocalModelChecker(
            EchoProtocol(3), TRUE, budget=SearchBudget(max_depth=1)
        ).run()
        deep = LocalModelChecker(EchoProtocol(3), TRUE).run()
        assert shallow.completed
        assert shallow.stats.node_states < deep.stats.node_states

    def test_increasing_depth_monotone_states(self):
        counts = []
        for depth in (0, 1, 2, 3):
            result = LocalModelChecker(
                EchoProtocol(3), TRUE, budget=SearchBudget(max_depth=depth)
            ).run()
            counts.append(result.stats.node_states)
        assert counts == sorted(counts)


class TestStopOnFirstBugFalse:
    def test_collects_multiple_witnesses(self):
        from repro.protocols.paxos import PaxosAgreement
        from repro.protocols.paxos.scenarios import (
            partial_choice_state,
            scenario_protocol,
        )

        result = LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            budget=SearchBudget(max_seconds=5.0),
            config=LMCConfig.optimized(stop_on_first_bug=False),
        ).run(partial_choice_state())
        assert len(result.bugs) > 1
        descriptions = {bug.description for bug in result.bugs}
        assert descriptions  # each is a concrete violating combination
