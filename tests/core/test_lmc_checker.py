"""Tests for the local model checker on the library's protocols."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker, apply_event
from repro.invariants.base import PredicateInvariant
from repro.model.multiset import FrozenMultiset
from repro.model.system_state import GlobalState
from repro.protocols.chain import ChainOrder, ChainProtocol
from repro.protocols.echo import EchoProtocol, PongsImplyPing
from repro.protocols.paxos import (
    BuggyPaxosProtocol,
    PaxosAgreement,
    PaxosProtocol,
)
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.randtree import (
    ChildrenSiblingsDisjoint,
    RandTreeProtocol,
    SiblingMixupRandTree,
)
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import (
    CommitValidity,
    EagerCommitCoordinator,
    TwoPhaseCommit,
)

TRUE_INV = PredicateInvariant("true", lambda s: True)


class TestCompleteness:
    """LMC must confirm every bug the sound global checker confirms."""

    def test_tree_no_false_positive(self):
        result = LocalModelChecker(TreeProtocol(), ReceivedImpliesSent()).run()
        assert result.completed
        assert not result.found_bug
        # The invalid Cartesian combination (received-without-sent) must have
        # been created, flagged, and rejected by soundness verification.
        assert result.stats.preliminary_violations > 0
        assert result.stats.soundness_calls == result.stats.preliminary_violations

    def test_chain_no_false_positive(self):
        result = LocalModelChecker(ChainProtocol(4), ChainOrder()).run()
        assert result.completed and not result.found_bug
        assert result.stats.preliminary_violations > 0

    def test_echo_no_false_positive(self):
        result = LocalModelChecker(EchoProtocol(3), PongsImplyPing()).run()
        assert result.completed and not result.found_bug

    def test_2pc_finds_eager_commit_bug(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        result = LocalModelChecker(protocol, CommitValidity()).run()
        assert result.found_bug
        assert result.first_bug().trace

    def test_2pc_correct_is_clean(self):
        result = LocalModelChecker(
            TwoPhaseCommit(3, no_voters=(2,)), CommitValidity()
        ).run()
        assert result.completed and not result.found_bug

    def test_randtree_local_invariant_bug_found(self):
        result = LocalModelChecker(
            SiblingMixupRandTree(4), ChildrenSiblingsDisjoint()
        ).run()
        assert result.found_bug

    def test_randtree_correct_is_clean(self):
        result = LocalModelChecker(
            RandTreeProtocol(3), ChildrenSiblingsDisjoint()
        ).run()
        assert result.completed and not result.found_bug


class TestWitnessTraces:
    """Confirmed LMC bugs carry a replayable valid total order."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: (
                EagerCommitCoordinator(3, no_voters=(2,)),
                CommitValidity(),
                None,
            ),
            lambda: (
                scenario_protocol(buggy=True),
                PaxosAgreement(0),
                partial_choice_state(),
            ),
        ],
    )
    def test_trace_replays_on_consuming_semantics(self, factory):
        protocol, invariant, initial = factory()
        result = LocalModelChecker(protocol, invariant).run(initial)
        bug = result.first_bug()
        state = GlobalState(bug.initial_state, FrozenMultiset())
        for event in bug.trace:
            state = apply_event(protocol, state, event)
            assert state is not None, "witness event not executable"
        # The replayed run must actually violate the invariant, and the
        # nodes LMC combined must be at exactly the states it reported.
        assert not invariant.check(state.system)


class TestGenVsOpt:
    def test_opt_creates_zero_system_states_on_correct_paxos(self, paxos_opt_full):
        result = paxos_opt_full
        assert result.completed
        assert result.stats.system_states_created == 0
        assert result.algorithm == "LMC-OPT"

    def test_gen_creates_many_system_states_on_correct_paxos(self, paxos_gen_full):
        result = paxos_gen_full
        assert result.completed
        assert result.stats.system_states_created > 1000
        assert result.stats.preliminary_violations == 0
        assert result.algorithm == "LMC-GEN"

    def test_gen_and_opt_agree_on_buggy_scenario(self):
        live = partial_choice_state()
        protocol = scenario_protocol(buggy=True)
        for config in (LMCConfig.general(), LMCConfig.optimized()):
            result = LocalModelChecker(
                protocol, PaxosAgreement(0), config=config
            ).run(live)
            assert result.found_bug, config

    def test_gen_and_opt_agree_on_correct_scenario(self):
        live = partial_choice_state()
        protocol = scenario_protocol(buggy=False)
        for config in (LMCConfig.general(), LMCConfig.optimized()):
            result = LocalModelChecker(
                protocol, PaxosAgreement(0), config=config
            ).run(live)
            assert result.completed and not result.found_bug, config

    def test_opt_explores_same_node_states_as_gen(
        self, paxos_gen_full, paxos_opt_full
    ):
        assert paxos_gen_full.stats.node_states == paxos_opt_full.stats.node_states
        assert paxos_gen_full.stats.transitions == paxos_opt_full.stats.transitions


class TestPaperScenario55:
    """The §5.5 injected-bug experiment from the crafted live state."""

    def test_bug_found_and_story_matches(self):
        result = LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            config=LMCConfig.optimized(),
        ).run(partial_choice_state())
        bug = result.first_bug()
        assert "v0" in bug.description and "v1" in bug.description
        described = " ".join(bug.trace_lines())
        # The witness must contain the contender's proposition and the
        # decisive empty PrepareResponse from the fresh acceptor.
        assert "propose@1" in described
        assert "PrepareResponse" in described

    def test_live_state_is_reachable_by_real_run(self):
        """The crafted snapshot must be producible by consuming semantics."""
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False
        )
        target = partial_choice_state()
        # Search the global state space for a state whose nodes 0-2 local
        # states match the snapshot exactly (message losses = messages left
        # in flight, which the global state may still carry).
        checker = GlobalModelChecker(
            protocol,
            PredicateInvariant(
                "not-target", lambda s: not _matches_snapshot(s, target)
            ),
            stop_on_first_bug=True,
        )
        result = checker.run()
        assert result.found_bug, "snapshot unreachable by any real run"

    def test_soundness_rejections_happen(self):
        result = LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            config=LMCConfig.optimized(),
        ).run(partial_choice_state())
        # Invalid Cartesian combinations must be filtered: more preliminary
        # violations than confirmed bugs.
        assert result.stats.preliminary_violations > result.stats.confirmed_bugs


def _matches_snapshot(system, target) -> bool:
    reduced = {node: _strip_pending(state) for node, state in system.items()}
    wanted = {node: _strip_pending(state) for node, state in target.items()}
    return reduced == wanted


def _strip_pending(state):
    from dataclasses import replace

    return replace(state, pending=())


class TestStopCriteria:
    def test_transition_budget(self):
        result = LocalModelChecker(
            PaxosProtocol(), TRUE_INV, budget=SearchBudget(max_transitions=50)
        ).run()
        assert not result.completed
        assert "transition budget" in result.stop_reason

    def test_state_budget(self):
        result = LocalModelChecker(
            PaxosProtocol(), TRUE_INV, budget=SearchBudget(max_states=10)
        ).run()
        assert not result.completed
        assert "state budget" in result.stop_reason

    def test_depth_bound_completes_with_reason(self):
        result = LocalModelChecker(
            PaxosProtocol(), TRUE_INV, budget=SearchBudget(max_depth=2)
        ).run()
        assert result.completed
        assert result.stop_reason == "depth bound reached"

    def test_zero_time_budget(self):
        result = LocalModelChecker(
            PaxosProtocol(), TRUE_INV, budget=SearchBudget(max_seconds=0.0)
        ).run()
        assert not result.completed


class TestSeriesAndStats:
    def test_depth_series_monotone(self, paxos_gen_full):
        depths = paxos_gen_full.series.depths()
        assert list(depths) == sorted(depths)
        assert paxos_gen_full.series.max_depth() >= 15  # combined length

    def test_memory_metric_grows(self, paxos_gen_full):
        memory = paxos_gen_full.series.column("memory_bytes")
        assert memory[0] < memory[-1]

    def test_transition_count_far_below_global(
        self, paxos_bdfs_full, paxos_opt_full
    ):
        # §5.1: B-DFS executes two orders of magnitude more transitions.
        assert (
            paxos_bdfs_full.stats.transitions
            > 50 * paxos_opt_full.stats.transitions
        )

    def test_live_state_violation_reported_immediately(self):
        # A snapshot that already violates is a sound bug with empty trace.
        protocol = TreeProtocol()
        violating = protocol.initial_system_state().replace(
            4, protocol.initial_state(4).__class__(node=4, received=True)
        )
        result = LocalModelChecker(protocol, ReceivedImpliesSent()).run(violating)
        assert result.found_bug
        assert result.first_bug().trace == ()
