"""Drop/duplication/partition faults: invisible when off, sound when on.

The omission-fault dimensions (docs/FAULTS.md) follow the same discipline
PR 4 set for crash–restart scheduling and ``test_fault_equivalence``
enforces: with ``drop_faults``/``duplicate_faults``/``partition_schedules``
at their defaults — or switched on but budgeted to zero effect — every
counter, verdict and witness trace must be byte-identical to a run without
the fault sweeps, across GEN/OPT, symmetry reduction and
checkpoint-resume.  With the gates open, a drop or partition schedule must
reach violations the loss-free space cannot exhibit, and the witness must
carry the fault events, replay end to end, and round-trip through the bug
corpus.
"""

from dataclasses import dataclass, replace
from typing import Any, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import LocalModelChecker
from repro.core.checkpoint import (
    Checkpointer,
    load_checkpoint,
    save_checkpoint,
    snapshot_pass,
)
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.invariants.base import LocalInvariant
from repro.model.events import DropEvent, DuplicateEvent
from repro.model.protocol import Protocol
from repro.model.types import Action, HandlerResult, Message, NodeId
from repro.persistence import bug_from_dict, bug_to_dict, registry_for_protocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import (
    Atomicity,
    CommitValidity,
    EagerCommitCoordinator,
    TimeoutTwoPhaseCommit,
)
from repro.replay import validate_bug

#: Phase timers are wall-clock; everything else must match exactly.
EXCLUDED_KEYS = ("phase_",)


def _observable(result):
    counts = {
        key: value
        for key, value in result.stats.snapshot().items()
        if not key.startswith(EXCLUDED_KEYS)
    }
    return {
        "counts": counts,
        "completed": result.completed,
        "stop_reason": result.stop_reason,
        "bugs": [bug.description for bug in result.bugs],
        "traces": [bug.trace_lines() for bug in result.bugs],
    }


#: Small exhaustible workloads spanning verdict shapes.  ``2pc-timeout``
#: is the only one that declares a ``handle_drop`` hook.
SCENARIOS = {
    "tree": lambda: (TreeProtocol(), ReceivedImpliesSent()),
    "2pc-buggy": lambda: (
        EagerCommitCoordinator(3, no_voters=(2,)),
        CommitValidity(),
    ),
    "2pc-timeout": lambda: (TimeoutTwoPhaseCommit(3), Atomicity()),
}

#: Fault knobs switched on but budgeted (or scoped) to zero effect:
#: ``max_drops=0`` starves the drop sweep, a partition window whose start
#: round is never reached masks nothing, and an open ``drop_faults`` gate
#: is inert on protocols without a ``handle_drop`` hook.  Each must be
#: byte-identical to the no-fault baseline.
INERT_OVERRIDES = {
    "drops_zero_budget": {"drop_faults": True, "max_drops": 0},
    "partition_never_starts": {
        "partition_schedules": ((10**6, None, (0,), (1,)),)
    },
    "drops_hookless_only": {"drop_faults": True},
}

MODES = {"opt": "optimized", "gen": "general"}


@given(
    scenario=st.sampled_from(sorted(SCENARIOS)),
    inert=st.sampled_from(sorted(INERT_OVERRIDES)),
    mode=st.sampled_from(sorted(MODES)),
    symmetry=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_inert_fault_knobs_are_byte_identical(scenario, inert, mode, symmetry):
    if inert == "drops_hookless_only" and scenario == "2pc-timeout":
        # The open gate is only inert without a handle_drop hook.
        return
    # GEN enumerates full combinations — keep its space depth-bounded the
    # way test_checkpoint_resume does; identity must hold under any budget.
    budget = SearchBudget(max_depth=4 if mode == "gen" else 8)
    factory = getattr(LMCConfig, MODES[mode])
    common = {"symmetry_reduction": symmetry}
    protocol, invariant = SCENARIOS[scenario]()
    baseline = LocalModelChecker(
        protocol, invariant, budget=budget, config=factory(**common)
    ).run()
    protocol, invariant = SCENARIOS[scenario]()
    gated = LocalModelChecker(
        protocol,
        invariant,
        budget=budget,
        config=factory(**common, **INERT_OVERRIDES[inert]),
    ).run()
    assert _observable(gated) == _observable(baseline)


def test_new_fault_knobs_are_off_by_default():
    for config in (LMCConfig(), LMCConfig.optimized(), LMCConfig.general()):
        assert config.drop_faults is False
        assert config.max_drops is None
        assert config.duplicate_faults is False
        assert config.partition_schedules == ()


class _StopAtCheckpointer(Checkpointer):
    """Deterministic interrupt at one exact round boundary."""

    def __init__(self, path, stop_round):
        super().__init__(path)
        self.stop_round = stop_round

    def due(self, round_number, config):
        if round_number >= self.stop_round:
            self.stop_requested = True
        return super().due(round_number, config)


def test_inert_knobs_survive_checkpoint_resume_byte_identically(tmp_path):
    """Interrupt/resume with inert fault knobs == the no-fault reference."""
    protocol, invariant = SCENARIOS["2pc-timeout"]()
    reference = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()

    config = LMCConfig.optimized(drop_faults=True, max_drops=0)
    path = str(tmp_path / "checkpoint.json")
    protocol, invariant = SCENARIOS["2pc-timeout"]()
    interrupted = LocalModelChecker(
        protocol,
        invariant,
        config=config,
        checkpointer=_StopAtCheckpointer(path, stop_round=2),
    ).run()
    assert not interrupted.completed

    protocol, invariant = SCENARIOS["2pc-timeout"]()
    resumed = LocalModelChecker(protocol, invariant, config=config).resume(
        load_checkpoint(path)
    )
    assert _observable(resumed) == _observable(reference)


# -- drop-dependent bug: loss is required to break atomicity ---------------------


def test_drop_dependent_bug_found_with_drop_witness():
    """2PC presumed-abort atomicity breaks only under a drop schedule."""
    protocol = TimeoutTwoPhaseCommit(3)
    invariant = Atomicity()

    clean = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
    assert clean.completed and not clean.found_bug

    result = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(drop_faults=True),
    ).run()
    assert result.found_bug
    assert result.stats.snapshot()["fault_drops"] > 0
    bug = result.first_bug()
    assert any(isinstance(event, DropEvent) for event in bug.trace)

    outcome = validate_bug(protocol, bug, invariant)
    assert outcome.complete and outcome.violates

    # The witness must also survive the bug corpus round trip.
    registry = registry_for_protocol(protocol)
    revived = bug_from_dict(bug_to_dict(bug), registry)
    assert revived.trace == bug.trace
    assert revived.violating_state == bug.violating_state
    outcome = validate_bug(protocol, revived, invariant)
    assert outcome.complete and outcome.violates


def test_max_drops_budget_bounds_the_fault_space():
    protocol = TimeoutTwoPhaseCommit(3)
    result = LocalModelChecker(
        protocol,
        Atomicity(),
        config=LMCConfig.optimized(
            drop_faults=True, max_drops=1, stop_on_first_bug=False
        ),
    ).run()
    assert result.completed
    assert result.stats.snapshot()["fault_drops"] == 1


# -- duplication: a non-idempotent handler must be caught ------------------------


@dataclass(frozen=True)
class PingPayload:
    """The single message of the at-most-once fixture."""


@dataclass(frozen=True)
class CountState:
    """Node state counting every ping execution (deliberately stateful)."""

    node: NodeId
    pinged: bool = False
    count: int = 0


class NonIdempotentCounter(Protocol):
    """Node 0 pings node 1 once; node 1 counts *every* executed delivery.

    The handler is deliberately not idempotent, so at-least-once delivery
    (``duplicate_faults`` with ``duplicate_limit >= 2``) is the only way
    the count can exceed one.
    """

    name = "non-idempotent-counter"

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0, 1)

    def initial_state(self, node: NodeId) -> CountState:
        return CountState(node=node)

    def enabled_actions(self, state: CountState) -> Tuple[Action, ...]:
        if state.node == 0 and not state.pinged:
            return (Action(node=state.node, name="ping"),)
        return ()

    def handle_action(self, state: CountState, action: Action) -> HandlerResult:
        if action.name != "ping" or state.pinged:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, pinged=True),
            (Message(dest=1, src=0, payload=PingPayload()),),
        )

    def handle_message(self, state: CountState, message: Message) -> HandlerResult:
        if isinstance(message.payload, PingPayload):
            return HandlerResult(replace(state, count=state.count + 1))
        return HandlerResult(state)


class AtMostOnce(LocalInvariant):
    """No node may execute the ping more than once (a per-node predicate)."""

    name = "at-most-once"

    def check_local(self, node: NodeId, state: Any) -> bool:
        return getattr(state, "count", 0) <= 1


def test_duplicate_dependent_bug_found_with_redelivery_witness():
    protocol = NonIdempotentCounter()
    invariant = AtMostOnce()

    clean = LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
    assert clean.completed and not clean.found_bug

    result = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(duplicate_faults=True, duplicate_limit=2),
    ).run()
    assert result.found_bug
    assert result.stats.snapshot()["fault_duplicates"] > 0
    bug = result.first_bug()
    assert any(isinstance(event, DuplicateEvent) for event in bug.trace)

    outcome = validate_bug(protocol, bug, invariant)
    assert outcome.complete and outcome.violates

    registry = registry_for_protocol(protocol)
    revived = bug_from_dict(bug_to_dict(bug), registry)
    assert revived.trace == bug.trace
    outcome = validate_bug(protocol, revived, invariant)
    assert outcome.complete and outcome.violates


# -- partitions: reachability masks over the delivery sweep ----------------------


def test_permanent_partition_suppresses_the_bug_and_terminates():
    """Forever-unreachable pairs shrink the space and still reach fixpoint."""
    result = LocalModelChecker(
        TimeoutTwoPhaseCommit(3),
        Atomicity(),
        config=LMCConfig.optimized(
            drop_faults=True,
            partition_schedules=((1, None, (0,), (1, 2)),),
        ),
    ).run()
    assert result.completed
    assert not result.found_bug
    assert result.stats.snapshot()["partition_blocks"] > 0


def test_permanent_partition_suppresses_eager_commit_bug():
    """Blocking the vote request hides the no-voter from the coordinator."""
    baseline = LocalModelChecker(
        EagerCommitCoordinator(3, no_voters=(2,)), CommitValidity(),
        config=LMCConfig.optimized(),
    ).run()
    assert baseline.found_bug

    result = LocalModelChecker(
        EagerCommitCoordinator(3, no_voters=(2,)),
        CommitValidity(),
        config=LMCConfig.optimized(
            partition_schedules=((1, None, (0,), (2,)),),
        ),
    ).run()
    assert result.completed
    assert not result.found_bug
    assert result.stats.snapshot()["partition_blocks"] > 0


def test_healing_partition_window_recovers_the_bug():
    """A finite window delays the decision loss but cannot prevent it."""
    result = LocalModelChecker(
        TimeoutTwoPhaseCommit(3),
        Atomicity(),
        config=LMCConfig.optimized(
            drop_faults=True,
            partition_schedules=((1, 2, (0,), (1,)),),
        ),
    ).run()
    assert result.found_bug
    assert result.stats.snapshot()["partition_blocks"] > 0


# -- checkpoint round trip of the new fault state --------------------------------


class _CaptureCheckpointer(Checkpointer):
    """Keeps every payload written, so tests can pick a mid-run snapshot."""

    def __init__(self, path, every_rounds=1):
        super().__init__(path, every_rounds)
        self.payloads = []

    def write(self, payload):
        super().write(payload)
        self.payloads.append(payload)


@pytest.mark.parametrize(
    "overrides",
    [
        {"drop_faults": True},
        {"drop_faults": True, "max_drops": 1},
        {"duplicate_faults": True, "duplicate_limit": 2},
        {"drop_faults": True, "partition_schedules": ((1, 2, (0,), (1,)),)},
    ],
    ids=["drops", "drops-capped", "duplicates", "drops-partition"],
)
def test_fault_state_checkpoint_roundtrip_is_byte_identical(
    overrides, tmp_path
):
    """serialize → restore → serialize over the new fault fields."""
    config = LMCConfig.optimized(stop_on_first_bug=False, **overrides)
    cadence = _CaptureCheckpointer(str(tmp_path / "cadence.json"))
    LocalModelChecker(
        TimeoutTwoPhaseCommit(3),
        Atomicity(),
        SearchBudget(max_depth=8),
        config,
        checkpointer=cadence,
    ).run()
    assert cadence.payloads

    for pick, payload in enumerate(cadence.payloads):
        first = str(tmp_path / f"first{pick}.json")
        second = str(tmp_path / f"second{pick}.json")
        save_checkpoint(first, payload)
        reloaded = load_checkpoint(first)

        restorer = LocalModelChecker(
            TimeoutTwoPhaseCommit(3),
            Atomicity(),
            SearchBudget(max_depth=8),
            config,
        )
        total_stats, result, run_pass = restorer._restore(reloaded)
        run_pass.prior_stats = total_stats
        run_pass.prior_bugs = result.bugs
        again = snapshot_pass(
            run_pass,
            reason=reloaded["reason"],
            pass_completed=reloaded["pass_completed"],
            pass_reason=reloaded["pass_reason"],
            elapsed=reloaded["elapsed_s"],
        )
        save_checkpoint(second, again)
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()
