"""Trace readers must survive the one truncated line a killed run leaves."""

import json

import pytest

from repro.obs.report import TraceSummary, load_trace


def _write_trace(path, records, tail=""):
    with open(path, "w", encoding="utf-8") as out:
        for record in records:
            out.write(json.dumps(record) + "\n")
        out.write(tail)


_RECORDS = [
    {"kind": "event", "name": "run_start", "fields": {"max_depth": 9}},
    {
        "kind": "metric",
        "fields": {"depth": 2, "elapsed_s": 1.0, "transitions": 10},
    },
    {
        "kind": "metric",
        "fields": {"depth": 4, "elapsed_s": 2.0, "transitions": 40},
    },
]


def test_truncated_final_line_is_tolerated(tmp_path):
    path = str(tmp_path / "t.jsonl")
    # A SIGKILL mid-write leaves a partial JSON object on the last line.
    _write_trace(path, _RECORDS, tail='{"kind": "metric", "fields": {"dep')
    records = load_trace(path)
    assert len(records) == len(_RECORDS)
    assert records[-1]["fields"]["depth"] == 4


def test_truncated_tail_rejected_when_tolerance_off(tmp_path):
    path = str(tmp_path / "t.jsonl")
    _write_trace(path, _RECORDS, tail='{"cut')
    with pytest.raises(ValueError, match="malformed trace record"):
        load_trace(path, tolerate_truncated_tail=False)


def test_mid_file_corruption_still_fails_loudly(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with open(path, "w", encoding="utf-8") as out:
        out.write('{"kind": "event", "name": "run_start"}\n')
        out.write("{corrupt line}\n")
        out.write('{"kind": "metric", "fields": {}}\n')
    with pytest.raises(ValueError, match=r"t\.jsonl:2"):
        load_trace(path)


def test_trailing_blank_lines_do_not_mask_truncation(tmp_path):
    path = str(tmp_path / "t.jsonl")
    _write_trace(path, _RECORDS, tail='{"cut\n\n\n')
    records = load_trace(path)
    assert len(records) == len(_RECORDS)


def test_intact_trace_unchanged_by_tolerance(tmp_path):
    path = str(tmp_path / "t.jsonl")
    _write_trace(path, _RECORDS)
    assert load_trace(path) == load_trace(path, tolerate_truncated_tail=False)


def test_summary_reports_progress_from_truncated_trace(tmp_path):
    """A killed run's trace still yields the growth model and a forecast."""
    path = str(tmp_path / "t.jsonl")
    _write_trace(path, _RECORDS, tail='{"kind": "metric", "fie')
    summary = TraceSummary.from_file(path)
    estimate = summary.progress_profile()
    assert estimate is not None
    assert estimate.depth == 4
    assert estimate.max_depth == 9
    assert estimate.growth_factor is not None and estimate.growth_factor > 1.0
    assert estimate.eta_s is not None
    rendered = summary.render()
    assert "Progress & growth model" in rendered
    assert "est. remaining" in rendered


def test_finished_trace_renders_no_forecast(tmp_path):
    path = str(tmp_path / "t.jsonl")
    done = _RECORDS + [
        {"kind": "event", "name": "run_end", "fields": {"completed": True}}
    ]
    _write_trace(path, done)
    rendered = TraceSummary.from_file(path).render()
    assert "Progress & growth model" in rendered
    assert "est. remaining" not in rendered
