"""Run registry: durable records, heartbeats, and status judgement."""

import json
import os
import subprocess
import sys
import time

from repro.fsio import atomic_write_json, atomic_write_text, read_json
from repro.obs.registry import (
    HEARTBEAT_FILE,
    RunRecord,
    RunRegistry,
    pid_alive,
)


# -- fsio (the shared atomic-write helper) -------------------------------------


def test_atomic_write_text_replaces_whole_file(tmp_path):
    path = str(tmp_path / "f.txt")
    atomic_write_text(path, "first")
    atomic_write_text(path, "second")
    with open(path) as handle:
        assert handle.read() == "second"
    # No temp droppings left behind.
    assert os.listdir(tmp_path) == ["f.txt"]


def test_atomic_write_json_roundtrip(tmp_path):
    path = str(tmp_path / "f.json")
    atomic_write_json(path, {"b": 2, "a": [1, None]})
    assert read_json(path) == {"a": [1, None], "b": 2}


def test_read_json_missing_or_malformed_is_none(tmp_path):
    assert read_json(str(tmp_path / "absent.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("{truncated")
    assert read_json(str(bad)) is None


# -- registration and heartbeats ----------------------------------------------


def test_register_writes_meta_and_unique_ids(tmp_path):
    registry = RunRegistry(str(tmp_path))
    first = registry.register("check", workload="paxos", algorithm="lmc-opt")
    second = registry.register("check", workload="paxos", algorithm="lmc-opt")
    assert first.run_id != second.run_id
    record = registry.load(first.run_id)
    assert record is not None
    assert record.meta["workload"] == "paxos"
    assert record.meta["pid"] == os.getpid()
    assert registry.run_ids() == sorted([first.run_id, second.run_id])


def test_heartbeat_rate_limits_and_force_bypasses(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    assert handle.heartbeat({"depth": 1}) is True
    # Immediately after, an unforced beat is suppressed...
    assert handle.heartbeat({"depth": 2}) is False
    # ...but force (seed / end-of-run) always lands.
    assert handle.heartbeat({"depth": 3}, force=True) is True
    record = registry.load(handle.run_id)
    assert record.heartbeat["depth"] == 3
    assert record.heartbeat["pid"] == os.getpid()


def test_finish_writes_result_and_wins_status(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    handle.heartbeat({"depth": 5}, force=True)
    handle.finish(status="finished", bugs=0, stop_reason="state space exhausted")
    record = registry.load(handle.run_id)
    assert record.status() == "finished"
    assert record.result["stop_reason"] == "state space exhausted"
    handle.finish(status="failed", error="boom")
    assert registry.load(handle.run_id).status() == "failed"


def test_latest_returns_most_recent(tmp_path):
    registry = RunRegistry(str(tmp_path))
    registry.register("check", run_id="20240101T000000-1")
    registry.register("check", run_id="20240101T000001-1")
    assert registry.latest().run_id == "20240101T000001-1"
    assert RunRegistry(str(tmp_path / "empty")).latest() is None


def test_coverage_roundtrip(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    handle.write_coverage({"message_types": {"Ping": 3}})
    assert registry.load(handle.run_id).coverage() == {
        "message_types": {"Ping": 3}
    }
    other = registry.register("check")
    assert registry.load(other.run_id).coverage() is None


# -- status judgement ----------------------------------------------------------


def _write_heartbeat(directory, **fields):
    atomic_write_json(os.path.join(directory, HEARTBEAT_FILE), fields)


def test_status_registered_without_heartbeat(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    assert registry.load(handle.run_id).status() == "registered"


def test_status_running_with_fresh_heartbeat(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    _write_heartbeat(handle.directory, pid=os.getpid(), wall_ts=time.time())
    assert registry.load(handle.run_id).status() == "running"


def test_status_stale_when_live_pid_stops_beating(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    # Our own pid is alive, but the heartbeat is a minute old.
    _write_heartbeat(handle.directory, pid=os.getpid(), wall_ts=time.time() - 60)
    assert registry.load(handle.run_id).status() == "stale"


def test_stale_threshold_scales_with_advertised_cadence(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    # 60s old, but the run advertises a 30s cadence: two missed beats is
    # within the 4x allowance, so it is still running.
    _write_heartbeat(
        handle.directory,
        pid=os.getpid(),
        wall_ts=time.time() - 60,
        heartbeat_interval_s=30.0,
    )
    assert registry.load(handle.run_id).status() == "running"


def test_status_killed_when_pid_is_gone(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    # A real process that has already exited and been reaped.
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    _write_heartbeat(handle.directory, pid=child.pid, wall_ts=time.time())
    assert not pid_alive(child.pid)
    assert registry.load(handle.run_id).status() == "killed"


def test_heartbeat_age_and_as_dict(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check", workload="echo")
    _write_heartbeat(handle.directory, pid=os.getpid(), wall_ts=time.time() - 3)
    record = registry.load(handle.run_id)
    age = record.heartbeat_age_s()
    assert 2.5 <= age <= 10.0
    payload = record.as_dict()
    assert payload["run_id"] == handle.run_id
    assert payload["meta"]["workload"] == "echo"
    json.dumps(payload)  # serializable as-is


def test_reader_tolerates_partial_directories(tmp_path):
    registry = RunRegistry(str(tmp_path))
    # A directory without meta.json is not a run.
    os.makedirs(tmp_path / "not-a-run")
    assert registry.run_ids() == []
    assert registry.load("not-a-run") is None
    # A malformed heartbeat degrades to None, not an exception.
    handle = registry.register("check")
    with open(os.path.join(handle.directory, HEARTBEAT_FILE), "w") as out:
        out.write("{cut off")
    record = registry.load(handle.run_id)
    assert record.heartbeat is None
    assert record.status() == "registered"


def test_pid_alive_basics():
    assert pid_alive(os.getpid())
    assert not pid_alive(0)
    assert not pid_alive(-5)


def test_record_status_prefers_result_over_dead_pid(tmp_path):
    # A finished run whose process has exited must read finished, not killed.
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check")
    _write_heartbeat(handle.directory, pid=2_000_000_000, wall_ts=time.time())
    handle.finish(status="finished")
    assert registry.load(handle.run_id).status() == "finished"


def test_run_record_default_construction():
    record = RunRecord(run_id="x", directory="/nonexistent/x")
    assert record.status() == "registered"
    assert record.heartbeat_age_s() is None
    assert record.coverage() is None
