"""Progress/ETA estimation: the growth-factor fit and its fallbacks."""

import math

from repro.obs.progress import (
    ProgressEstimate,
    estimate_progress,
    fit_growth_factor,
    format_eta,
)


def _geometric_samples(base=2.0, depths=6, per_depth_s=1.0):
    """Work that doubles per depth at a constant wall rate."""
    samples = []
    for depth in range(1, depths + 1):
        work = base**depth
        samples.append((depth, per_depth_s * depth, work))
    return samples


def test_fit_recovers_exact_geometric_factor():
    factor = fit_growth_factor(_geometric_samples(base=2.0))
    assert factor is not None
    assert math.isclose(factor, 2.0, rel_tol=1e-9)


def test_fit_needs_two_distinct_depths():
    assert fit_growth_factor([]) is None
    assert fit_growth_factor([(3, 1.0, 100.0)]) is None
    # Same depth twice is still one point.
    assert fit_growth_factor([(3, 1.0, 100.0), (3, 2.0, 200.0)]) is None


def test_fit_ignores_zero_work_samples():
    samples = [(0, 0.0, 0.0), (1, 1.0, 2.0), (2, 2.0, 4.0)]
    factor = fit_growth_factor(samples)
    assert math.isclose(factor, 2.0, rel_tol=1e-9)


def test_estimate_extrapolates_geometric_remaining():
    samples = _geometric_samples(base=2.0, depths=6)
    estimate = estimate_progress(samples, max_depth=8)
    assert isinstance(estimate, ProgressEstimate)
    assert estimate.depth == 6
    # Remaining = W * (2^2 - 1) = 3 * 64.
    assert math.isclose(estimate.work_remaining, 3 * 64.0, rel_tol=1e-6)
    assert 0.0 < estimate.fraction_done < 1.0
    assert estimate.eta_s is not None and estimate.eta_s > 0
    # Sanity: work_done/(done+remaining) matches the reported fraction.
    assert math.isclose(
        estimate.fraction_done,
        estimate.work_done / (estimate.work_done + estimate.work_remaining),
    )


def test_estimate_linear_fallback_when_flat():
    # Constant cumulative work => factor 1.0 => linear model.
    samples = [(1, 1.0, 100.0), (2, 2.0, 100.0), (3, 3.0, 100.0)]
    estimate = estimate_progress(samples, max_depth=6)
    assert math.isclose(estimate.growth_factor, 1.0, rel_tol=1e-9)
    # Linear: (100/3) per depth * 3 depths left.
    assert math.isclose(estimate.work_remaining, 100.0, rel_tol=1e-9)


def test_estimate_without_depth_bound_has_no_eta():
    estimate = estimate_progress(_geometric_samples(), max_depth=None)
    assert estimate.max_depth is None
    assert estimate.work_remaining is None
    assert estimate.fraction_done is None
    assert estimate.eta_s is None
    assert estimate.growth_factor is not None


def test_estimate_at_or_past_bound_is_done():
    samples = _geometric_samples(base=2.0, depths=6)
    estimate = estimate_progress(samples, max_depth=6)
    assert estimate.work_remaining == 0.0
    assert estimate.fraction_done == 1.0
    assert estimate.eta_s == 0.0


def test_estimate_empty_series_is_none():
    assert estimate_progress([], max_depth=10) is None


def test_estimate_single_sample_at_depth_zero():
    # No depth progress yet and no fit: remaining is unknowable.
    estimate = estimate_progress([(0, 0.5, 10.0)], max_depth=10)
    assert estimate.work_remaining is None
    assert estimate.eta_s is None


def test_as_dict_is_json_ready():
    estimate = estimate_progress(_geometric_samples(), max_depth=8)
    payload = estimate.as_dict()
    assert payload["depth"] == 6
    assert payload["max_depth"] == 8
    assert set(payload) == {
        "depth",
        "max_depth",
        "work_done",
        "rate_per_s",
        "growth_factor",
        "work_remaining",
        "fraction_done",
        "eta_s",
    }


def test_format_eta():
    assert format_eta(None) == "-"
    assert format_eta(-3.0) == "0.0s"
    assert format_eta(12.34) == "12.3s"
    assert format_eta(302) == "5m02s"
    assert format_eta(3900) == "1h05m"
