"""Tests for the trace emitters: JSONL round-trip, nesting, null overhead."""

import json
import time

import pytest

from repro.obs.emitter import (
    NULL_EMITTER,
    CallbackEmitter,
    JsonlEmitter,
    MemoryEmitter,
    NullEmitter,
    TraceEmitter,
)
from repro.obs.report import load_trace


class TestMemoryEmitter:
    def test_trace_starts_with_header_event(self):
        emitter = MemoryEmitter()
        assert emitter.records[0]["kind"] == "event"
        assert emitter.records[0]["name"] == "trace_start"
        assert emitter.records[0]["fields"]["schema"] == 1

    def test_span_record_shape(self):
        emitter = MemoryEmitter()
        with emitter.span("work", node=2) as span:
            span.add(result="ok")
        record = emitter.records[-1]
        assert record["kind"] == "span"
        assert record["name"] == "work"
        assert record["fields"] == {"node": 2, "result": "ok"}
        assert record["dur_s"] >= 0
        assert record["parent"] is None
        assert isinstance(record["id"], int)

    def test_span_nesting_links_parent(self):
        emitter = MemoryEmitter()
        with emitter.span("outer") as outer:
            with emitter.span("inner"):
                pass
        inner_rec = next(r for r in emitter.records if r.get("name") == "inner")
        outer_rec = next(r for r in emitter.records if r.get("name") == "outer")
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None
        assert outer.span_id == outer_rec["id"]

    def test_sibling_spans_share_parent(self):
        emitter = MemoryEmitter()
        with emitter.span("outer"):
            with emitter.span("a"):
                pass
            with emitter.span("b"):
                pass
        a = next(r for r in emitter.records if r.get("name") == "a")
        b = next(r for r in emitter.records if r.get("name") == "b")
        assert a["parent"] == b["parent"] is not None
        assert a["id"] != b["id"]

    def test_span_ts_is_start_time(self):
        emitter = MemoryEmitter()
        with emitter.span("outer"):
            with emitter.span("inner"):
                pass
        inner_rec = next(r for r in emitter.records if r.get("name") == "inner")
        outer_rec = next(r for r in emitter.records if r.get("name") == "outer")
        # Outer starts before inner even though its record is written later.
        assert outer_rec["ts"] <= inner_rec["ts"]

    def test_emit_span_carries_foreign_pid_and_nests(self):
        emitter = MemoryEmitter()
        with emitter.span("dispatch"):
            emitter.emit_span("worker_verify", 0.5, {"unit": 3}, pid=12345)
        worker = next(
            r for r in emitter.records if r.get("name") == "worker_verify"
        )
        dispatch = next(r for r in emitter.records if r.get("name") == "dispatch")
        assert worker["pid"] == 12345
        assert worker["dur_s"] == 0.5
        assert worker["fields"] == {"unit": 3}
        assert worker["parent"] == dispatch["id"]

    def test_exception_still_emits_span(self):
        emitter = MemoryEmitter()
        with pytest.raises(RuntimeError):
            with emitter.span("doomed"):
                raise RuntimeError("boom")
        assert any(r.get("name") == "doomed" for r in emitter.records)

    def test_metric_and_event_records(self):
        emitter = MemoryEmitter()
        emitter.event("bug", description="x")
        emitter.metric(transitions=7, depth=2)
        kinds = [r["kind"] for r in emitter.records]
        assert kinds.count("event") == 2  # trace_start + bug
        assert kinds.count("metric") == 1
        assert emitter.records[-1]["fields"] == {"transitions": 7, "depth": 2}

    def test_close_drops_later_records(self):
        emitter = MemoryEmitter()
        emitter.close()
        emitter.event("late")
        assert all(r.get("name") != "late" for r in emitter.records)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlEmitter(str(path)) as emitter:
            with emitter.span("round", number=1) as span:
                span.add(executions=9)
            emitter.metric(transitions=4)
            emitter.event("run_end", bugs=0)
        records = load_trace(str(path))
        names = [r.get("name") for r in records]
        assert "trace_start" in names and "round" in names and "run_end" in names
        round_rec = next(r for r in records if r.get("name") == "round")
        assert round_rec["fields"] == {"number": 1, "executions": 9}
        metric = next(r for r in records if r["kind"] == "metric")
        assert metric["fields"] == {"transitions": 4}

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlEmitter(str(path)) as emitter:
            emitter.event("a")
            emitter.event("b")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # trace_start + a + b
        for line in lines:
            json.loads(line)

    def test_malformed_line_raises_with_location(self, tmp_path):
        # A malformed *final* line is treated as a killed run's truncated
        # tail by default, so corruption must be mid-file to fail loudly.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path))
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path), tolerate_truncated_tail=False)

    def test_accepts_open_file_object(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            emitter = JsonlEmitter(handle)
            emitter.event("x")
            emitter.close()
            assert not handle.closed  # caller-owned handles stay open
        assert len(load_trace(str(path))) == 2


class TestCallbackEmitter:
    def test_callback_receives_each_record(self):
        seen = []
        emitter = CallbackEmitter(seen.append)
        with emitter.span("s"):
            pass
        assert [r["kind"] for r in seen] == ["event", "span"]


class TestNullEmitter:
    def test_is_disabled_and_silent(self):
        assert NULL_EMITTER.enabled is False
        NULL_EMITTER.event("x", a=1)
        NULL_EMITTER.metric(b=2)
        NULL_EMITTER.emit_span("w", 0.1)
        with NULL_EMITTER.span("s") as span:
            span.add(c=3)

    def test_span_returns_shared_singleton(self):
        # No per-call allocation: the whole point of the zero-overhead claim.
        assert NullEmitter().span("a") is NullEmitter().span("b")

    def test_null_span_overhead_is_negligible(self):
        emitter = NullEmitter()
        started = time.perf_counter()
        for _ in range(100_000):
            with emitter.span("hot"):
                pass
        elapsed = time.perf_counter() - started
        # ~100 ns per disabled instrumentation point; 100k of them must be
        # far under a second even on slow CI (generous 2 s bound).
        assert elapsed < 2.0

    def test_real_emitter_base_requires_sink(self):
        class Bare(TraceEmitter):
            pass

        with pytest.raises(NotImplementedError):
            Bare()
