"""The read-only HTTP status endpoint over the run registry."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.registry import RunRegistry
from repro.obs.statusd import make_server, run_summary


@pytest.fixture()
def served_registry(tmp_path):
    registry = RunRegistry(str(tmp_path))
    server = make_server(registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield registry, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


def test_list_endpoint_empty_and_populated(served_registry):
    registry, base = served_registry
    status, payload = _get(f"{base}/runs")
    assert status == 200 and payload == []
    handle = registry.register("check", workload="echo", algorithm="lmc-opt")
    handle.heartbeat({"depth": 3, "transitions": 42}, force=True)
    status, payload = _get(f"{base}/")
    assert status == 200
    assert len(payload) == 1
    assert payload[0]["run_id"] == handle.run_id
    assert payload[0]["workload"] == "echo"
    assert payload[0]["depth"] == 3
    assert payload[0]["transitions"] == 42


def test_detail_and_coverage_endpoints(served_registry):
    registry, base = served_registry
    handle = registry.register("check", workload="echo")
    handle.write_coverage({"message_types": {"Ping": 1}})
    status, payload = _get(f"{base}/runs/{handle.run_id}")
    assert status == 200
    assert payload["run_id"] == handle.run_id
    assert payload["meta"]["workload"] == "echo"
    status, payload = _get(f"{base}/runs/{handle.run_id}/coverage")
    assert status == 200
    assert payload["message_types"] == {"Ping": 1}


def test_unknown_paths_and_runs_are_404(served_registry):
    registry, base = served_registry
    for path in ("/runs/nope", "/bogus", "/runs/nope/coverage"):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}{path}")
        assert excinfo.value.code == 404
    handle = registry.register("check")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{base}/runs/{handle.run_id}/coverage")
    assert excinfo.value.code == 404


def test_run_summary_shape(tmp_path):
    registry = RunRegistry(str(tmp_path))
    handle = registry.register("check", workload="echo", algorithm="lmc-opt")
    handle.heartbeat(
        {"depth": 2, "round": 5, "transitions": 7, "progress": {"eta_s": 1.0}},
        force=True,
    )
    summary = run_summary(registry.load(handle.run_id))
    assert summary["status"] == "running"
    assert summary["round"] == 5
    assert summary["progress"] == {"eta_s": 1.0}
