"""Coverage accounting: trackers, the declared universe, and the report."""

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.obs.coverage import (
    NULL_COVERAGE,
    CoverageTracker,
    NullCoverage,
    render_coverage,
    unexercised,
)
from repro.protocols.common import declared_action_names, declared_message_types
from repro.protocols.echo import EchoProtocol, PongsImplyPing


class DeadHandlerEcho(EchoProtocol):
    """Echo, but declaring a message type and an action nothing ever fires.

    The fixture for the ``repro coverage`` acceptance criterion: a run over
    this protocol must flag ``NeverSent``/``never_fired`` as unexercised.
    """

    def coverage_message_types(self):
        return ("Ping", "Pong", "NeverSent")

    def coverage_action_names(self):
        return ("ping", "never_fired")


# -- tracker unit behaviour ----------------------------------------------------


def test_tracker_counts_every_dimension():
    tracker = CoverageTracker()
    tracker.note_delivery("Ping")
    tracker.note_delivery("Ping")
    tracker.note_action("ping")
    tracker.note_invariant("Inv", violated=False)
    tracker.note_invariant("Inv", violated=True)
    tracker.note_fault("crash", 2)
    report = tracker.as_dict()
    assert report["message_types"] == {"Ping": 2}
    assert report["actions"] == {"ping": 1}
    assert report["invariant_checks"] == {"Inv": 2}
    assert report["invariant_violations"] == {"Inv": 1}
    assert report["faults"] == {"crash:2": 1}
    assert report["universe"] == {"message_types": None, "actions": None}


def test_null_coverage_is_inert_and_disabled():
    assert NULL_COVERAGE.enabled is False
    assert isinstance(NULL_COVERAGE, NullCoverage)
    NULL_COVERAGE.note_delivery("Ping")
    NULL_COVERAGE.note_action("ping")
    NULL_COVERAGE.note_invariant("Inv", violated=True)
    NULL_COVERAGE.note_fault("crash", 0)
    report = NULL_COVERAGE.as_dict()
    assert report["message_types"] == {}
    assert report["actions"] == {}
    assert report["faults"] == {}


def test_declared_universe_dispatch():
    plain = EchoProtocol(2)
    assert declared_message_types(plain) is None
    assert declared_action_names(plain) is None
    declaring = DeadHandlerEcho(2)
    assert declared_message_types(declaring) == ("Ping", "Pong", "NeverSent")
    assert declared_action_names(declaring) == ("ping", "never_fired")


def test_unexercised_against_declared_universe():
    tracker = CoverageTracker()
    tracker.note_delivery("Ping")
    report = tracker.as_dict(
        declared_messages=("Ping", "NeverSent"),
        declared_actions=("ping",),
    )
    missing = unexercised(report)
    assert missing["message_types"] == ["NeverSent"]
    assert missing["actions"] == ["ping"]


def test_unexercised_empty_without_universe():
    tracker = CoverageTracker()
    tracker.note_delivery("Ping")
    missing = unexercised(tracker.as_dict())
    assert missing == {"message_types": [], "actions": []}


# -- end-to-end through the checker -------------------------------------------


def _run_covered(protocol):
    coverage = CoverageTracker()
    checker = LocalModelChecker(
        protocol,
        PongsImplyPing(),
        config=LMCConfig.optimized(),
        coverage=coverage,
    )
    result = checker.run()
    return result, checker.coverage_report()


def test_checker_records_exercised_handlers():
    result, report = _run_covered(EchoProtocol(2))
    assert result.completed
    # Every echo handler actually runs in the full space.
    assert report["message_types"]["Ping"] > 0
    assert report["message_types"]["Pong"] > 0
    assert report["actions"]["ping"] > 0
    assert report["invariant_checks"]["PongsImplyPing"] > 0
    # No declaration => no universe, nothing flagged.
    assert report["universe"] == {"message_types": None, "actions": None}
    assert unexercised(report) == {"message_types": [], "actions": []}


def test_checker_flags_deliberately_unreachable_handlers():
    result, report = _run_covered(DeadHandlerEcho(2))
    assert result.completed
    missing = unexercised(report)
    assert missing["message_types"] == ["NeverSent"]
    assert missing["actions"] == ["never_fired"]
    text = render_coverage(report)
    assert "UNEXERCISED transitions: 2" in text
    assert "NeverSent" in text and "never_fired" in text


def test_coverage_counts_are_deterministic():
    _result, first = _run_covered(EchoProtocol(2))
    _result, second = _run_covered(EchoProtocol(2))
    assert first == second


def test_render_coverage_all_exercised_and_empty():
    tracker = CoverageTracker()
    tracker.note_delivery("Ping")
    text = render_coverage(tracker.as_dict(declared_messages=("Ping",)))
    assert "All declared handlers exercised." in text
    assert render_coverage(CoverageTracker().as_dict()) == (
        "(no coverage data recorded)"
    )


def test_fault_coverage_through_checker():
    coverage = CoverageTracker()
    checker = LocalModelChecker(
        EchoProtocol(2),
        PongsImplyPing(),
        config=LMCConfig.optimized(
            fault_events_enabled=True, max_crashes_per_node=1
        ),
        coverage=coverage,
    )
    checker.run()
    report = checker.coverage_report()
    assert any(key.startswith("crash:") for key in report["faults"])
    assert any(key.startswith("restart:") for key in report["faults"])
