"""Profiling hooks: phase_timer accumulation and the Fig. 13 arithmetic."""

import io
import json

import pytest

from repro.obs.emitter import JsonlEmitter
from repro.obs.profiling import PHASE_ORDER, overhead_breakdown, phase_timer
from repro.stats.counters import ExplorationStats


def test_phase_timer_accumulates_into_stats():
    stats = ExplorationStats()
    with phase_timer(stats, "explore"):
        pass
    with phase_timer(stats, "explore"):
        pass
    assert stats.phase_seconds["explore"] >= 0.0
    assert set(stats.phase_seconds) == {"explore"}


def test_phase_timer_charges_time_on_exception():
    stats = ExplorationStats()
    with pytest.raises(RuntimeError):
        with phase_timer(stats, "soundness"):
            raise RuntimeError("stop mid-phase")
    assert "soundness" in stats.phase_seconds
    assert stats.phase_seconds["soundness"] >= 0.0


def test_phase_timer_emits_span_when_named():
    stats = ExplorationStats()
    sink = io.StringIO()
    emitter = JsonlEmitter(sink)
    with phase_timer(stats, "explore", emitter=emitter, span_name="region", n=3):
        pass
    records = [json.loads(line) for line in sink.getvalue().splitlines()]
    spans = [r for r in records if r.get("kind") == "span"]
    assert len(spans) == 1
    assert spans[0]["name"] == "region"
    assert spans[0]["fields"]["phase"] == "explore"
    assert spans[0]["fields"]["n"] == 3


def test_phase_timer_without_span_name_emits_nothing():
    stats = ExplorationStats()
    sink = io.StringIO()
    emitter = JsonlEmitter(sink)
    baseline = sink.getvalue()  # emitter writes a trace_start header
    with phase_timer(stats, "explore", emitter=emitter):
        pass
    assert sink.getvalue() == baseline


def test_overhead_breakdown_orders_and_normalizes():
    rows = overhead_breakdown(
        {"soundness": 1.0, "explore": 2.0, "system_states": 1.0, "zextra": 4.0}
    )
    names = [name for name, _s, _f in rows]
    assert names == list(PHASE_ORDER) + ["zextra"]
    assert sum(fraction for _n, _s, fraction in rows) == pytest.approx(1.0)
    by_name = {name: fraction for name, _s, fraction in rows}
    assert by_name["explore"] == pytest.approx(0.25)
    assert by_name["zextra"] == pytest.approx(0.5)


def test_overhead_breakdown_clamps_negative_residue():
    rows = overhead_breakdown({"explore": 3.0, "system_states": -0.5})
    by_name = {name: (seconds, fraction) for name, seconds, fraction in rows}
    assert by_name["system_states"] == (0.0, 0.0)
    assert by_name["explore"][1] == pytest.approx(1.0)


def test_overhead_breakdown_zero_total():
    rows = overhead_breakdown({"explore": 0.0})
    assert rows == [("explore", 0.0, 0.0)]
    assert overhead_breakdown({}) == []
