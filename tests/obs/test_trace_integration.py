"""Integration: traces from real checker runs agree with ExplorationStats."""

import pytest

from repro.cli import main
from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.obs.emitter import MemoryEmitter
from repro.obs.report import TraceSummary
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator


def spans(emitter, name):
    return [r for r in emitter.records if r.get("name") == name]


class TestSequentialTrace:
    def test_paxos_trace_counters_agree_with_stats(self):
        """A 3-node Paxos run: exploration, materialisation, and soundness
        spans must reconcile with the run's final ExplorationStats."""
        emitter = MemoryEmitter()
        result = LocalModelChecker(
            scenario_protocol(buggy=True),
            PaxosAgreement(0),
            budget=SearchBudget(max_seconds=30.0),
            config=LMCConfig.optimized(),
            emitter=emitter,
        ).run(partial_choice_state())
        stats = result.stats

        assert result.found_bug
        assert spans(emitter, "pass") and spans(emitter, "round")
        assert len(spans(emitter, "soundness")) == stats.soundness_calls
        assert (
            sum(s["fields"]["sequences"] for s in spans(emitter, "soundness"))
            == stats.soundness_sequences
        )
        materialised = spans(emitter, "materialise")
        assert materialised
        assert (
            sum(s["fields"]["system_states"] for s in materialised)
            == stats.system_states_created
        )
        assert (
            sum(s["fields"]["violations"] for s in materialised)
            == stats.preliminary_violations
        )
        assert (
            sum(s["fields"]["transitions"] for s in spans(emitter, "round"))
            == stats.transitions
        )
        assert len(spans(emitter, "bug")) == stats.confirmed_bugs

    def test_final_metric_sample_matches_stats(self):
        emitter = MemoryEmitter()
        result = LocalModelChecker(
            TreeProtocol(), ReceivedImpliesSent(), emitter=emitter
        ).run()
        metrics = [r for r in emitter.records if r["kind"] == "metric"]
        assert metrics
        final = metrics[-1]["fields"]
        assert final["transitions"] == result.stats.transitions
        assert final["node_states"] == result.stats.node_states
        assert final["soundness_calls"] == result.stats.soundness_calls

    def test_tracing_does_not_change_results(self):
        plain = LocalModelChecker(TreeProtocol(), ReceivedImpliesSent()).run()
        traced = LocalModelChecker(
            TreeProtocol(), ReceivedImpliesSent(), emitter=MemoryEmitter()
        ).run()
        assert traced.stats.snapshot() == pytest.approx(
            plain.stats.snapshot(), rel=None, abs=5.0
        )  # counters identical; only phase_*_s wall times may drift
        for key, value in plain.stats.snapshot().items():
            if not key.startswith("phase_"):
                assert traced.stats.snapshot()[key] == value


class TestParallelTrace:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_worker_spans_agree_with_merged_stats(self, workers):
        emitter = MemoryEmitter()
        result = ParallelLocalModelChecker(
            EagerCommitCoordinator(3, no_voters=(2,)),
            CommitValidity(),
            workers=workers,
            emitter=emitter,
        ).run()
        stats = result.stats

        assert result.found_bug
        worker_spans = spans(emitter, "worker_verify")
        assert len(worker_spans) == stats.soundness_calls > 0
        # The satellite bugfix: worker combination counts are merged, not
        # silently dropped.
        assert (
            sum(s["fields"]["combinations"] for s in worker_spans)
            == stats.soundness_sequences
            > 0
        )
        assert len(spans(emitter, "dispatch")) == 1
        # The Fig. 13 decomposition exists in parallel mode too.
        assert "soundness" in stats.phase_seconds
        assert "explore" in stats.phase_seconds

    def test_pool_worker_pids_forwarded(self):
        import os

        emitter = MemoryEmitter()
        ParallelLocalModelChecker(
            EagerCommitCoordinator(3, no_voters=(2,)),
            CommitValidity(),
            workers=2,
            emitter=emitter,
        ).run()
        pids = {s["pid"] for s in spans(emitter, "worker_verify")}
        assert pids and os.getpid() not in pids


class TestCliTracing:
    def test_check_trace_out_then_report(self, tmp_path, capsys):
        path = tmp_path / "tree.jsonl"
        assert main(["check", "tree", "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace written : {path}" in out
        assert path.exists()

        assert main(["trace-report", str(path)]) == 0
        report = capsys.readouterr().out
        assert "Overhead breakdown (Fig. 13)" in report
        assert "Soundness verification profile" in report
        assert "Final counters" in report

    def test_trace_subcommand_defaults_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "tree"]) == 0
        assert (tmp_path / "tree.trace.jsonl").exists()

    def test_parallel_cli_trace_has_worker_spans(self, tmp_path, capsys):
        path = tmp_path / "par.jsonl"
        assert (
            main(
                [
                    "check",
                    "2pc",
                    "--buggy",
                    "--algorithm",
                    "lmc-parallel",
                    "--trace-out",
                    str(path),
                ]
            )
            == 1
        )
        summary = TraceSummary.from_file(str(path))
        assert summary.spans("worker_verify")
        assert summary.soundness_profile()["calls"] > 0
        assert set(summary.phase_seconds()) >= {"explore", "soundness"}

    def test_scenario_accepts_trace_flags(self, tmp_path, capsys):
        path = tmp_path / "s55.jsonl"
        assert main(["scenario", "s55", "--trace-out", str(path)]) == 1
        summary = TraceSummary.from_file(str(path))
        assert summary.spans("soundness")
        assert summary.events("bug")

    def test_trace_report_missing_file_errors(self, capsys):
        assert main(["trace-report", "/nonexistent/file.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_metrics_interval_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["check", "tree", "--metrics-interval", "0.5"]
        )
        assert args.metrics_interval == 0.5
