"""Tests for RunMetrics sampling, profiling helpers, and trace reports."""

import pytest

from repro.obs.emitter import MemoryEmitter
from repro.obs.metrics import RunMetrics, rss_bytes
from repro.obs.profiling import overhead_breakdown, phase_timer
from repro.obs.report import TraceSummary
from repro.stats.counters import ExplorationStats
from repro.stats.reporting import format_phase_breakdown
from repro.stats.series import DepthSeries


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def elapsed(self):
        return self.now


class TestRunMetrics:
    def _metrics(self, emitter=None, interval=None, extra=None):
        series = DepthSeries("X")
        stats = ExplorationStats()
        clock = FakeClock()
        registry = RunMetrics(
            series,
            stats,
            clock.elapsed,
            emitter=emitter if emitter is not None else MemoryEmitter(),
            interval=interval,
            extra=extra,
        )
        return registry, series, stats, clock

    def test_samples_when_depth_grows(self):
        registry, series, stats, _clock = self._metrics()
        stats.transitions = 3
        assert registry.sample(0) is True
        stats.transitions = 9
        assert registry.sample(2) is True
        assert series.depths() == (0, 2)
        assert series.at_depth(2).get("transitions") == 9

    def test_skips_flat_depth_without_force(self):
        registry, series, _stats, _clock = self._metrics()
        registry.sample(1)
        assert registry.sample(1) is False
        assert series.depths() == (1,)

    def test_force_updates_final_row(self):
        registry, series, stats, clock = self._metrics()
        registry.sample(3)
        stats.transitions = 42
        clock.now = 9.0
        registry.sample(3, force=True)
        assert series.depths() == (3,)
        assert series.final().elapsed_s == 9.0
        assert series.final().get("transitions") == 42

    def test_interval_cadence_emits_trace_metrics_only(self):
        emitter = MemoryEmitter()
        registry, series, _stats, clock = self._metrics(
            emitter=emitter, interval=1.0
        )
        registry.sample(1)  # depth growth: series + trace
        clock.now = 0.5
        assert registry.sample(1) is False  # cadence not due yet
        clock.now = 1.5
        assert registry.sample(1) is True  # cadence due: trace only
        metrics = [r for r in emitter.records if r["kind"] == "metric"]
        assert len(metrics) == 2
        assert series.depths() == (1,)  # the series stays depth-keyed

    def test_metric_record_carries_gauges_and_rss(self):
        emitter = MemoryEmitter()
        registry, _series, _stats, _clock = self._metrics(
            emitter=emitter, extra=lambda: {"node_states": 11}
        )
        registry.sample(0)
        fields = [r for r in emitter.records if r["kind"] == "metric"][0]["fields"]
        assert fields["node_states"] == 11
        assert fields["depth"] == 0
        if rss_bytes() is not None:
            assert fields["rss_bytes"] > 0

    def test_rss_bytes_reports_plausible_size(self):
        rss = rss_bytes()
        if rss is None:
            pytest.skip("no resource module on this platform")
        assert rss > 1024 * 1024  # a Python process is at least a MiB


class TestPhaseTimer:
    def test_accumulates_into_stats(self):
        stats = ExplorationStats()
        with phase_timer(stats, "soundness"):
            pass
        with phase_timer(stats, "soundness"):
            pass
        assert stats.phase_seconds["soundness"] >= 0
        assert len(stats.phase_seconds) == 1

    def test_charges_time_on_exception(self):
        stats = ExplorationStats()
        with pytest.raises(RuntimeError):
            with phase_timer(stats, "explore"):
                raise RuntimeError
        assert "explore" in stats.phase_seconds

    def test_emits_span_when_named(self):
        stats = ExplorationStats()
        emitter = MemoryEmitter()
        with phase_timer(stats, "soundness", emitter, span_name="verify", n=3):
            pass
        span = next(r for r in emitter.records if r.get("name") == "verify")
        assert span["fields"] == {"phase": "soundness", "n": 3}


class TestOverheadBreakdown:
    def test_canonical_order_and_shares(self):
        rows = overhead_breakdown(
            {"soundness": 1.0, "explore": 2.0, "system_states": 1.0}
        )
        assert [name for name, _s, _f in rows] == [
            "explore",
            "system_states",
            "soundness",
        ]
        assert rows[0][2] == pytest.approx(0.5)
        assert sum(share for _n, _s, share in rows) == pytest.approx(1.0)

    def test_extra_buckets_and_negative_clamp(self):
        rows = overhead_breakdown({"zeta": 1.0, "explore": -0.5})
        assert rows[0] == ("explore", 0.0, 0.0)
        assert rows[1][0] == "zeta"

    def test_empty_and_zero(self):
        assert overhead_breakdown({}) == []
        assert overhead_breakdown({"explore": 0.0})[0][2] == 0.0

    def test_format_phase_breakdown_renders_table(self):
        text = format_phase_breakdown({"explore": 3.0, "soundness": 1.0})
        assert "explore" in text and "75.0%" in text
        assert format_phase_breakdown({}) == ""


def _trace_records():
    """A hand-built trace covering every record kind the report reads."""
    return [
        {"ts": 0.0, "pid": 1, "kind": "event", "name": "trace_start", "fields": {}},
        {
            "ts": 0.1,
            "pid": 1,
            "kind": "span",
            "name": "soundness",
            "id": 1,
            "parent": None,
            "dur_s": 0.045,
            "fields": {"sequences": 500, "sound": False},
        },
        {
            "ts": 0.2,
            "pid": 7,
            "kind": "span",
            "name": "worker_verify",
            "id": 2,
            "parent": None,
            "dur_s": 0.015,
            "fields": {"combinations": 100, "sound": True},
        },
        {
            "ts": 0.3,
            "pid": 1,
            "kind": "metric",
            "fields": {
                "transitions": 1186,
                "phase_explore_s": 0.6,
                "phase_soundness_s": 0.3,
                "phase_system_states_s": 0.1,
            },
        },
    ]


class TestTraceSummary:
    def test_phase_seconds_from_final_metric(self):
        summary = TraceSummary(_trace_records())
        assert summary.phase_seconds() == {
            "explore": 0.6,
            "soundness": 0.3,
            "system_states": 0.1,
        }

    def test_soundness_profile_merges_worker_spans(self):
        profile = TraceSummary(_trace_records()).soundness_profile()
        assert profile["calls"] == 2
        assert profile["sequences"] == 600
        assert profile["total_s"] == pytest.approx(0.06)
        assert profile["avg_ms"] == pytest.approx(30.0)

    def test_worker_profile_groups_by_pid(self):
        workers = TraceSummary(_trace_records()).worker_profile()
        assert workers == [{"pid": 7, "units": 1, "total_s": 0.015}]

    def test_render_contains_all_sections(self):
        text = TraceSummary(_trace_records()).render()
        assert "Overhead breakdown (Fig. 13)" in text
        assert "Soundness verification profile" in text
        assert "Workers" in text
        assert "Final counters" in text
        assert "1,186" in text

    def test_render_empty_trace(self):
        assert "empty trace" in TraceSummary([]).render()
