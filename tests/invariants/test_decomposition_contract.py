"""The LMC-OPT decomposition contract, checked against reachable states.

``DecomposableInvariant`` documents the contract OPT's skipping relies on:
*if a system state violates ``check``, its node states' projections must
satisfy ``projections_conflict``* (pairwise, for ``pairwise`` invariants).
These tests enumerate reachable system states of buggy builds (which do
produce violations) and verify the contract on every single one — the
evidence that LMC-OPT cannot skip a real bug for our shipped invariants.
"""

from itertools import combinations
from typing import List

from repro.explore.global_checker import (
    GlobalModelChecker,
)
from repro.invariants.base import DecomposableInvariant, PredicateInvariant
from repro.model.system_state import SystemState
from repro.protocols.onepaxos import OnePaxosAgreement, OnePaxosAgreementAll
from repro.protocols.onepaxos.scenarios import (
    post_leaderchange_state,
    scenario_protocol as onepaxos_scenario,
)
from repro.protocols.paxos import PaxosAgreement, PaxosAgreementAll
from repro.protocols.paxos.scenarios import (
    partial_choice_state,
    scenario_protocol as paxos_scenario,
)
from repro.protocols.ring import AtMostOneLeader, GreedyRingElection
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator


def reachable_systems(protocol, initial=None, limit=20000) -> List[SystemState]:
    """All distinct system states reachable from ``initial`` (exhaustive)."""
    collected: List[SystemState] = []
    seen = set()

    def collector(system: SystemState) -> bool:
        key = hash(system)
        if key not in seen:
            seen.add(key)
            collected.append(system)
        assert len(collected) <= limit, "state space larger than expected"
        return True  # never report

    checker = GlobalModelChecker(
        protocol,
        PredicateInvariant("collector", collector),
        stop_on_first_bug=False,
    )
    result = checker.run(initial)
    assert result.completed
    return collected


def assert_contract(invariant: DecomposableInvariant, systems) -> int:
    """Check the contract on every system state; return violation count."""
    violations = 0
    for system in systems:
        if invariant.check(system):
            continue
        violations += 1
        projections = {
            node: invariant.local_projection(node, state)
            for node, state in system.items()
        }
        projections = {
            node: value for node, value in projections.items() if value is not None
        }
        assert invariant.projections_conflict(projections), (
            f"violating state without projection conflict: {system!r}"
        )
        if invariant.pairwise:
            assert any(
                invariant.projections_conflict({a: projections[a], b: projections[b]})
                for a, b in combinations(sorted(projections), 2)
            ), f"violation not pairwise-witnessed: {system!r}"
    return violations


def test_paxos_agreement_contract():
    protocol = paxos_scenario(buggy=True)
    systems = reachable_systems(protocol, partial_choice_state())
    found = assert_contract(PaxosAgreement(0), systems)
    assert found > 0, "the buggy space must contain real violations"


def test_paxos_agreement_all_contract():
    protocol = paxos_scenario(buggy=True)
    systems = reachable_systems(protocol, partial_choice_state())
    found = assert_contract(PaxosAgreementAll(), systems)
    assert found > 0


def test_onepaxos_agreement_contract():
    protocol = onepaxos_scenario(buggy=True)
    systems = reachable_systems(protocol, post_leaderchange_state(protocol))
    assert assert_contract(OnePaxosAgreement(0), systems) > 0
    assert assert_contract(OnePaxosAgreementAll(), systems) > 0


def test_2pc_commit_validity_contract():
    protocol = EagerCommitCoordinator(3, no_voters=(2,))
    systems = reachable_systems(protocol)
    assert assert_contract(CommitValidity(), systems) > 0


def test_ring_leader_contract():
    protocol = GreedyRingElection(3, initiators=(0,))
    systems = reachable_systems(protocol)
    assert assert_contract(AtMostOneLeader(), systems) > 0
