"""Tests for the invariant framework."""

import pytest

from repro.invariants.base import (
    AllOf,
    DecomposableInvariant,
    Invariant,
    LocalInvariant,
    PredicateInvariant,
)
from repro.model.system_state import SystemState


class AlwaysTrue(Invariant):
    name = "always-true"

    def check(self, system):
        return True


class EvenSum(DecomposableInvariant):
    """Toy decomposable invariant: states project to themselves."""

    name = "even-sum"

    def check(self, system):
        values = {v for _n, v in system.items() if v is not None}
        return len(values) <= 1

    def local_projection(self, node, state):
        return state


class PositiveLocal(LocalInvariant):
    name = "positive"

    def check_local(self, node, state):
        return state > 0


def test_predicate_invariant_wraps_function():
    inv = PredicateInvariant("nonempty", lambda s: len(s) > 0)
    assert inv.check(SystemState({0: "a"}))
    assert inv.name == "nonempty"


def test_local_invariant_system_check_is_conjunction():
    inv = PositiveLocal()
    assert inv.check(SystemState({0: 1, 1: 2}))
    assert not inv.check(SystemState({0: 1, 1: -1}))


def test_local_invariant_violation_description_names_nodes():
    inv = PositiveLocal()
    text = inv.describe_violation(SystemState({0: 1, 1: -1, 2: -5}))
    assert "1" in text and "2" in text


def test_decomposable_default_conflict_is_two_distinct():
    inv = EvenSum()
    assert not inv.projections_conflict({0: "a"})
    assert not inv.projections_conflict({0: "a", 1: "a"})
    assert inv.projections_conflict({0: "a", 1: "b"})


def test_decomposable_is_pairwise_by_default():
    assert EvenSum().pairwise


def test_all_of_requires_members():
    with pytest.raises(ValueError):
        AllOf([])


def test_all_of_conjunction_and_description():
    inv = AllOf([AlwaysTrue(), PositiveLocal()])
    good = SystemState({0: 1})
    bad = SystemState({0: -1})
    assert inv.check(good)
    assert not inv.check(bad)
    assert "positive" in inv.describe_violation(bad)
    assert "holds" in inv.describe_violation(good)


def test_default_describe_violation_mentions_name():
    class Broken(Invariant):
        name = "my-inv"

        def check(self, system):
            return False

    assert "my-inv" in Broken().describe_violation(SystemState({0: 1}))
