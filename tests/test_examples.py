"""Smoke tests: the shipped examples must run and tell their stories."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, *args: str, timeout: float = 300.0):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_tells_the_primer_story():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "global model checking" in proc.stdout
    assert "preliminary violations : 1" in proc.stdout
    assert "bugs                   : 0" in proc.stdout


def test_paxos_bug_hunt_finds_and_clears():
    proc = run_example("paxos_bug_hunt.py")
    assert proc.returncode == 0, proc.stderr
    assert "BUG (invariant)" in proc.stdout
    assert "no violation" in proc.stdout
    assert "witness trace" in proc.stdout


def test_onepaxos_bug_hunt_walks_the_stack():
    proc = run_example("onepaxos_bug_hunt.py")
    assert proc.returncode == 0, proc.stderr
    assert "leader=2" in proc.stdout          # the live utility round
    assert "BUG (invariant)" in proc.stdout   # the buggy build
    assert "clean" in proc.stdout             # the correct build


def test_fifo_stream_demonstrates_collapse():
    proc = run_example("fifo_stream.py")
    assert proc.returncode == 0, proc.stderr
    assert "violated: True" in proc.stdout
    assert "violated: False" in proc.stdout
