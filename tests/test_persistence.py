"""Tests for the bug-corpus serialization."""

import json

import pytest

import repro.protocols.paxos.messages as paxos_messages
import repro.protocols.paxos.state as paxos_state
from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.model.events import CrashEvent, DeliveryEvent, InternalEvent, RestartEvent
from repro.model.system_state import SystemState
from repro.model.types import Action, Message
from repro.persistence import (
    ClassRegistry,
    UnknownClassTag,
    bug_from_dict,
    bug_to_dict,
    decode_value,
    encode_value,
    load_bugs,
    save_bugs,
)
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.replay import validate_bug


def paxos_registry():
    return ClassRegistry.from_modules(paxos_messages, paxos_state)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            "text",
            3.5,
            (1, "a", (2, 3)),
            frozenset({1, 2, 3}),
        ],
    )
    def test_round_trip_primitives(self, value):
        registry = ClassRegistry()
        assert decode_value(encode_value(value), registry) == value

    def test_round_trip_dataclasses(self):
        registry = paxos_registry()
        ballot = paxos_messages.Ballot(3, 1)
        payload = paxos_messages.PrepareResponse(
            index=0, ballot=ballot, accepted_ballot=ballot, accepted_value="v"
        )
        assert decode_value(encode_value(payload), registry) == payload

    def test_nested_state_round_trip(self):
        registry = paxos_registry()
        protocol = scenario_protocol(buggy=True)
        state = partial_choice_state().get(0)
        assert decode_value(encode_value(state), registry) == state

    def test_unknown_tag_rejected(self):
        empty = ClassRegistry()
        ballot = paxos_messages.Ballot(1, 0)
        with pytest.raises(UnknownClassTag):
            decode_value(encode_value(ballot), empty)

    def test_mutable_values_rejected(self):
        with pytest.raises(TypeError):
            encode_value([1, 2, 3])

    def test_encoding_is_json_safe(self):
        value = (paxos_messages.Ballot(1, 0), frozenset({("a", 1)}))
        json.dumps(encode_value(value))


class TestBugRoundTrip:
    def _confirmed_bug(self):
        protocol = scenario_protocol(buggy=True)
        result = LocalModelChecker(
            protocol, PaxosAgreement(0), config=LMCConfig.optimized()
        ).run(partial_choice_state())
        return protocol, result.first_bug()

    def test_bug_dict_round_trip(self):
        protocol, bug = self._confirmed_bug()
        registry = paxos_registry()
        restored = bug_from_dict(bug_to_dict(bug), registry)
        assert restored.description == bug.description
        assert restored.trace == bug.trace
        assert restored.violating_state == bug.violating_state
        assert restored.initial_state == bug.initial_state

    def test_restored_bug_still_replays(self, tmp_path):
        protocol, bug = self._confirmed_bug()
        path = tmp_path / "corpus.json"
        save_bugs(str(path), [bug])
        (restored,) = load_bugs(str(path), paxos_registry())
        outcome = validate_bug(protocol, restored, PaxosAgreement(0))
        assert outcome.complete and outcome.violates

    def test_corpus_version_enforced(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "bugs": []}')
        with pytest.raises(ValueError):
            load_bugs(str(path), paxos_registry())

    def test_event_kinds_round_trip(self):
        registry = paxos_registry()
        from repro.persistence import decode_event, encode_event

        deliver = DeliveryEvent(
            Message(dest=1, src=0, payload=paxos_messages.Prepare(0, paxos_messages.Ballot(1, 0)))
        )
        action = InternalEvent(Action(node=2, name="propose", payload=(0, "v")))
        assert decode_event(encode_event(deliver), registry) == deliver
        assert decode_event(encode_event(action), registry) == action

    def test_fault_events_round_trip(self):
        registry = ClassRegistry()
        from repro.persistence import decode_event, encode_event

        crash = CrashEvent(1)
        restart = RestartEvent(1)
        assert decode_event(encode_event(crash), registry) == crash
        assert decode_event(encode_event(restart), registry) == restart
        json.dumps([encode_event(crash), encode_event(restart)])


class TestAtomicSave:
    def _corpus(self):
        protocol = scenario_protocol(buggy=True)
        result = LocalModelChecker(
            protocol, PaxosAgreement(0), config=LMCConfig.optimized()
        ).run(partial_choice_state())
        return [result.first_bug()]

    def test_failed_dump_preserves_existing_corpus(self, tmp_path, monkeypatch):
        """A crash mid-dump must leave the previous corpus fully readable."""
        bugs = self._corpus()
        path = tmp_path / "corpus.json"
        save_bugs(str(path), bugs)
        before = path.read_text()

        def boom(*args, **kwargs):
            raise RuntimeError("disk full mid-dump")

        # save_bugs now dumps through the shared repro.fsio atomic-write
        # helper, so the failure is injected there.
        monkeypatch.setattr("repro.fsio.json.dumps", boom)
        with pytest.raises(RuntimeError):
            save_bugs(str(path), bugs)
        monkeypatch.undo()

        assert path.read_text() == before
        (restored,) = load_bugs(str(path), paxos_registry())
        assert restored.description == bugs[0].description
        # the failed attempt's temp file must not linger
        assert sorted(entry.name for entry in tmp_path.iterdir()) == ["corpus.json"]

    def test_save_replaces_rather_than_truncates(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_bugs(str(path), self._corpus())
        save_bugs(str(path), [])
        assert load_bugs(str(path), paxos_registry()) == []
        assert sorted(entry.name for entry in tmp_path.iterdir()) == ["corpus.json"]


class TestRegistry:
    def test_from_modules_collects_dataclasses(self):
        registry = paxos_registry()
        assert registry.resolve("Ballot") is paxos_messages.Ballot
        assert registry.resolve("PaxosNodeState") is paxos_state.PaxosNodeState

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            ClassRegistry([int])
