"""Additional driver and scheduling edge-case tests."""

import random

from repro.model.types import Action
from repro.online.driver import Rule, RuleDriver, onepaxos_online_driver
from repro.online.simulator import LiveRun
from repro.protocols.onepaxos import OnePaxosProtocol
from repro.protocols.paxos import PaxosProtocol
from repro.online.driver import paxos_online_driver


class TestRuleEdges:
    def test_fixed_delay(self):
        rule = Rule(min_delay=3.0, max_delay=3.0)
        assert rule.sample_delay(random.Random(0)) == 3.0

    def test_probability_one_is_plain_uniform(self):
        rule = Rule(min_delay=1.0, max_delay=2.0, probability=1.0, period=100.0)
        for _ in range(20):
            delay = rule.sample_delay(random.Random(0))
            assert delay <= 2.0  # no geometric tail added

    def test_driver_covers_retry_actions(self):
        driver = onepaxos_online_driver()
        rng = random.Random(0)
        for name in ("retry1", "util-retry", "propose", "suspect", "init"):
            assert driver.schedule(Action(node=0, name=name), 0.0, rng) is not None

    def test_paxos_driver_covers_retry(self):
        driver = paxos_online_driver()
        rng = random.Random(0)
        assert driver.schedule(Action(node=0, name="retry"), 0.0, rng) is not None


class TestLiveRunScheduling:
    def test_suppressed_actions_never_fire(self):
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False
        )
        driver = RuleDriver({}, default=None)  # suppress everything
        live = LiveRun(protocol, driver, seed=0)
        live.run_for(100.0)
        assert live.events_executed == 0

    def test_retransmission_keeps_firing_until_chosen(self):
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False,
            retransmit=True,
        )
        live = LiveRun(
            protocol, paxos_online_driver(max_sleep=1.0), seed=3,
            drop_probability=0.6,
        )
        live.run_for(600.0)
        snapshot = live.snapshot()
        # despite 60% drop, retransmission drives the proposal home
        chosen = [
            state.chosen_value(0)
            for _node, state in snapshot.items()
            if state.chosen_value(0) is not None
        ]
        assert chosen and set(chosen) == {"v0"}

    def test_onepaxos_live_leaderchange_with_retransmit(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, proposals=((2, 0, "v2"),), fault_suspects=(2,),
            require_init=False, retransmit=True,
        )
        from repro.online.driver import onepaxos_online_driver

        live = LiveRun(
            protocol, onepaxos_online_driver(suspect_probability=1.0),
            seed=5, drop_probability=0.2,
        )
        live.run_for(600.0)
        snapshot = live.snapshot()
        leaders = {state.believed_leader() for _n, state in snapshot.items()}
        assert 2 in leaders  # the suspect eventually led somewhere
