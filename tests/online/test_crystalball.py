"""Tests for the online checking loop and test drivers."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.model.system_state import SystemState
from repro.online.crystalball import OnlineModelChecker
from repro.online.driver import ImmediateDriver, paxos_online_driver
from repro.online.injector import FreshIndexInjector, PaxosTestDriver, scan_indexes
from repro.online.simulator import LiveRun
from repro.protocols.paxos import (
    BuggyPaxosProtocol,
    PaxosAgreementAll,
    PaxosProtocol,
)
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol


def lmc_factory(protocol, invariant, seconds=2.0, drive=None):
    def factory(snapshot):
        if drive is not None:
            snapshot = drive(snapshot)
        return LocalModelChecker(
            protocol,
            invariant,
            budget=SearchBudget(max_seconds=seconds),
            config=LMCConfig.optimized(),
        ).run(snapshot)

    return factory


class TestOnlineLoop:
    def test_clean_system_reports_nothing(self):
        protocol = TreeProtocol()
        live = LiveRun(protocol, ImmediateDriver(), seed=0)
        online = OnlineModelChecker(
            live, lmc_factory(protocol, ReceivedImpliesSent()), check_interval=5.0
        )
        outcome = online.run(max_sim_seconds=20.0)
        assert not outcome.found_bug
        assert outcome.restarts == 4
        assert len(outcome.history) == 4
        assert all(not record.found_bug for record in outcome.history)

    def test_max_restarts_bounds_loop(self):
        protocol = TreeProtocol()
        live = LiveRun(protocol, ImmediateDriver(), seed=0)
        online = OnlineModelChecker(
            live, lmc_factory(protocol, ReceivedImpliesSent()), check_interval=1.0
        )
        outcome = online.run(max_sim_seconds=1000.0, max_restarts=3)
        assert outcome.restarts == 3

    def test_invalid_interval_rejected(self):
        protocol = TreeProtocol()
        live = LiveRun(protocol, ImmediateDriver(), seed=0)
        with pytest.raises(ValueError):
            OnlineModelChecker(
                live, lmc_factory(protocol, ReceivedImpliesSent()), check_interval=0
            )

    def test_hook_runs_every_interval(self):
        protocol = TreeProtocol()
        live = LiveRun(protocol, ImmediateDriver(), seed=0)
        calls = []
        online = OnlineModelChecker(
            live,
            lmc_factory(protocol, ReceivedImpliesSent()),
            check_interval=2.0,
            interval_hook=lambda lr: calls.append(lr.now),
        )
        online.run(max_sim_seconds=10.0)
        assert len(calls) == 5


class TestPaxosTestDriver:
    def _snapshot_with_half_learned(self):
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False
        )
        live = LiveRun(
            protocol, paxos_online_driver(max_sleep=1.0), seed=11,
            drop_probability=0.0,
        )
        live.run_for(60.0)
        snapshot = live.snapshot()
        # force half-learned by erasing node 2's learner verdict
        from dataclasses import replace

        blind = replace(snapshot.get(2), learners=())
        return protocol, SystemState({0: snapshot.get(0), 1: snapshot.get(1), 2: blind})

    def test_scan_indexes_finds_half_learned(self):
        _protocol, snapshot = self._snapshot_with_half_learned()
        half, max_index = scan_indexes(snapshot)
        assert half == {0}
        assert max_index == 0

    def test_driver_contends_on_half_learned_index(self):
        _protocol, snapshot = self._snapshot_with_half_learned()
        driven = PaxosTestDriver().drive(snapshot)
        pendings = {
            node: state.pending for node, state in driven.items() if state.pending
        }
        # node 0 already proposed index 0; the highest-id eligible node (2)
        # becomes the single contender.
        assert set(pendings) == {2}
        assert pendings[2][0][0] == 0

    def test_driver_uses_fresh_index_without_contention(self):
        protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
        snapshot = protocol.initial_system_state()
        driven = PaxosTestDriver().drive(snapshot)
        pendings = [
            (node, state.pending)
            for node, state in driven.items()
            if state.pending
        ]
        assert len(pendings) == 1
        assert pendings[0][1][0][0] == 0  # fresh index 0

    def test_fresh_index_injector_round_robins(self):
        protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
        live = LiveRun(protocol, paxos_online_driver(max_sleep=0.5), seed=3)
        injector = FreshIndexInjector()
        for _ in range(3):
            injector(live)
            live.run_for(20.0)
        snapshot = live.snapshot()
        proposers = {
            node
            for node, state in snapshot.items()
            if state.proposer(0) or state.proposer(1) or state.proposer(2)
        }
        assert proposers == {0, 1, 2}


class TestOnlineBugDetection:
    def test_buggy_paxos_found_from_contended_snapshot(self):
        """Deterministic mini §5.5: a forced half-learned snapshot + driver."""
        protocol = BuggyPaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False,
            retransmit=True,
        )
        live = LiveRun(
            protocol, paxos_online_driver(max_sleep=1.0), seed=11,
            drop_probability=0.0,
        )
        live.run_for(60.0)
        snapshot = live.snapshot()
        from dataclasses import replace

        # Node 2 never saw the Learns and never accepted: the fresh acceptor
        # whose empty PrepareResponse triggers the value-selection bug.
        blind = replace(snapshot.get(2), learners=(), acceptors=())
        snapshot = SystemState(
            {0: snapshot.get(0), 1: snapshot.get(1), 2: blind}
        )
        driven = PaxosTestDriver().drive(snapshot)
        result = LocalModelChecker(
            protocol,
            PaxosAgreementAll(),
            budget=SearchBudget(max_seconds=30.0),
            config=LMCConfig.optimized(),
        ).run(driven)
        assert result.found_bug

    def test_correct_paxos_clean_from_same_snapshot(self):
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False,
            retransmit=True,
        )
        live = LiveRun(
            protocol, paxos_online_driver(max_sleep=1.0), seed=11,
            drop_probability=0.0,
        )
        live.run_for(60.0)
        snapshot = live.snapshot()
        from dataclasses import replace

        blind = replace(snapshot.get(2), learners=(), acceptors=())
        snapshot = SystemState(
            {0: snapshot.get(0), 1: snapshot.get(1), 2: blind}
        )
        driven = PaxosTestDriver().drive(snapshot)
        result = LocalModelChecker(
            protocol,
            PaxosAgreementAll(),
            budget=SearchBudget(max_seconds=30.0),
            config=LMCConfig.optimized(),
        ).run(driven)
        assert not result.found_bug
