"""Edge cases of the snapshot index scan used by the test drivers."""

from dataclasses import replace

from repro.model.system_state import SystemState
from repro.online.injector import scan_indexes
from repro.protocols.paxos import PaxosProtocol
from repro.protocols.paxos.messages import Ballot, Learn
from repro.model.types import Message


def choose(protocol, state, index, value):
    learn = Learn(index=index, ballot=Ballot(1, 0), value=value)
    for src in (0, 1):
        state = protocol.handle_message(
            state, Message(dest=state.node, src=src, payload=learn)
        ).state
    return state


def test_empty_snapshot():
    protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
    half, max_index = scan_indexes(protocol.initial_system_state())
    assert half == set()
    assert max_index == -1


def test_fully_learned_index_is_not_half():
    protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
    states = {
        node: choose(protocol, protocol.initial_state(node), 0, "v")
        for node in (0, 1, 2)
    }
    half, max_index = scan_indexes(SystemState(states))
    assert half == set()
    assert max_index == 0


def test_half_learned_detection():
    protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
    states = {
        0: choose(protocol, protocol.initial_state(0), 2, "v"),
        1: protocol.initial_state(1),
        2: choose(protocol, protocol.initial_state(2), 2, "v"),
    }
    half, max_index = scan_indexes(SystemState(states))
    assert half == {2}
    assert max_index == 2


def test_pending_counts_toward_max_index():
    protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
    waiting = replace(protocol.initial_state(1), pending=((7, "x"),))
    system = SystemState(
        {0: protocol.initial_state(0), 1: waiting, 2: protocol.initial_state(2)}
    )
    half, max_index = scan_indexes(system)
    assert half == set()
    assert max_index == 7
