"""Tests for the live-run simulator and drivers."""

import random

import pytest

from repro.model.types import Action
from repro.online.driver import (
    ImmediateDriver,
    Rule,
    RuleDriver,
    SelectiveDriver,
    onepaxos_online_driver,
    paxos_online_driver,
)
from repro.online.simulator import LiveRun
from repro.protocols.paxos import PaxosProtocol
from repro.protocols.tree import TreeProtocol


class TestDrivers:
    def test_rule_delay_in_range(self):
        rule = Rule(min_delay=1.0, max_delay=2.0)
        rng = random.Random(0)
        for _ in range(50):
            delay = rule.sample_delay(rng)
            assert 1.0 <= delay <= 2.0

    def test_zero_probability_suppresses(self):
        assert Rule(probability=0.0).sample_delay(random.Random(0)) is None

    def test_probabilistic_rule_matches_geometric_mean(self):
        rule = Rule(min_delay=0.0, max_delay=0.0, probability=0.1, period=1.0)
        rng = random.Random(7)
        samples = [rule.sample_delay(rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        # Geometric(0.1) failures have mean 9.
        assert 8.0 <= mean <= 10.0

    def test_rule_driver_default_and_suppression(self):
        driver = RuleDriver({"a": Rule(min_delay=5, max_delay=5)}, default=None)
        rng = random.Random(0)
        assert driver.schedule(Action(node=0, name="a"), 0.0, rng) == 5
        assert driver.schedule(Action(node=0, name="b"), 0.0, rng) is None

    def test_selective_driver(self):
        driver = SelectiveDriver(["go"])
        rng = random.Random(0)
        assert driver.schedule(Action(node=0, name="go"), 0.0, rng) == 0.0
        assert driver.schedule(Action(node=0, name="stop"), 0.0, rng) is None

    def test_prebuilt_drivers_cover_action_names(self):
        rng = random.Random(0)
        paxos = paxos_online_driver()
        assert paxos.schedule(Action(node=0, name="propose"), 0.0, rng) is not None
        onepaxos = onepaxos_online_driver()
        assert onepaxos.schedule(Action(node=0, name="suspect"), 0.0, rng) is not None


class TestLiveRun:
    def test_tree_run_completes(self):
        live = LiveRun(TreeProtocol(), ImmediateDriver(), seed=1)
        live.run_for(10.0)
        snapshot = live.snapshot()
        assert snapshot.get(0).sent
        assert snapshot.get(4).received
        assert live.idle()

    def test_reproducibility_from_seed(self):
        def run(seed):
            protocol = PaxosProtocol(
                num_nodes=3, proposals=((0, 0, "v0"),), require_init=False
            )
            live = LiveRun(
                protocol, paxos_online_driver(max_sleep=5.0), seed=seed,
                drop_probability=0.3,
            )
            live.run_for(100.0)
            return live.snapshot()

        assert run(3) == run(3)

    def test_different_seeds_diverge(self):
        def run(seed):
            protocol = PaxosProtocol(
                num_nodes=3, proposals=((0, 0, "v0"),), require_init=False
            )
            live = LiveRun(
                protocol, paxos_online_driver(max_sleep=5.0), seed=seed,
                drop_probability=0.5,
            )
            live.run_for(50.0)
            return live.events_executed

        outcomes = {run(seed) for seed in range(6)}
        assert len(outcomes) > 1

    def test_time_advances_even_when_idle(self):
        live = LiveRun(TreeProtocol(), ImmediateDriver(), seed=0)
        live.run_for(5.0)
        live.run_for(5.0)
        assert live.now == 10.0

    def test_trace_recorded_when_enabled(self):
        live = LiveRun(TreeProtocol(), ImmediateDriver(), seed=0, keep_trace=True)
        live.run_for(10.0)
        kinds = {entry.kind for entry in live.trace}
        assert kinds == {"action", "deliver"}

    def test_inject_action_executes_application_call(self):
        protocol = PaxosProtocol(num_nodes=3, proposals=(), require_init=False)
        live = LiveRun(protocol, paxos_online_driver(max_sleep=1.0), seed=0)
        live.inject_action(Action(node=1, name="inject", payload=(0, "vX")))
        live.run_for(30.0)
        # the injected proposal must have been issued and decided
        snapshot = live.snapshot()
        assert snapshot.get(1).chosen_value(0) == "vX"

    def test_lossy_network_loses_progress(self):
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False
        )
        reliable = LiveRun(protocol, paxos_online_driver(1.0), seed=5)
        reliable.run_for(50.0)
        lossy = LiveRun(
            protocol, paxos_online_driver(1.0), seed=5, drop_probability=0.95
        )
        lossy.run_for(50.0)
        assert lossy.events_executed < reliable.events_executed

    def test_snapshot_is_immutable_copy(self):
        live = LiveRun(TreeProtocol(), ImmediateDriver(), seed=0)
        before = live.snapshot()
        live.run_for(10.0)
        after = live.snapshot()
        assert before != after
