"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out
        assert "s55" in out and "s56" in out

    def test_check_requires_known_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "nonexistent"])

    def test_defaults(self):
        args = build_parser().parse_args(["check", "paxos"])
        assert args.algorithm == "lmc-opt"
        assert args.nodes == 3
        assert not args.buggy


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check", "tree"]) == 0
        out = capsys.readouterr().out
        assert "bugs          : 0" in out

    def test_buggy_2pc_exits_one(self, capsys):
        assert main(["check", "2pc", "--buggy"]) == 1
        out = capsys.readouterr().out
        assert "BUG" in out

    def test_bdfs_algorithm(self, capsys):
        assert main(["check", "tree", "--algorithm", "bdfs"]) == 0
        out = capsys.readouterr().out
        assert "global states" in out

    def test_lmc_gen_algorithm(self, capsys):
        assert main(["check", "chain", "--algorithm", "lmc-gen"]) == 0

    def test_parallel_algorithm(self, capsys):
        assert main(["check", "tree", "--algorithm", "lmc-parallel"]) == 0

    def test_depth_bound_flag(self, capsys):
        assert main(["check", "echo", "--max-depth", "2"]) == 0


class TestScenarioCommand:
    def test_s55_buggy_finds_bug(self, capsys):
        assert main(["scenario", "s55"]) == 1
        out = capsys.readouterr().out
        assert "Paxos agreement violated" in out

    def test_s55_correct_is_clean(self, capsys):
        assert main(["scenario", "s55", "--correct"]) == 0

    def test_s56_buggy_finds_bug(self, capsys):
        assert main(["scenario", "s56"]) == 1
        out = capsys.readouterr().out
        assert "1Paxos agreement violated" in out

    def test_s56_correct_is_clean(self, capsys):
        assert main(["scenario", "s56", "--correct"]) == 0
