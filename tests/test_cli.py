"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out
        assert "s55" in out and "s56" in out

    def test_check_requires_known_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "nonexistent"])

    def test_defaults(self):
        args = build_parser().parse_args(["check", "paxos"])
        assert args.algorithm == "lmc-opt"
        assert args.nodes == 3
        assert not args.buggy


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check", "tree"]) == 0
        out = capsys.readouterr().out
        assert "bugs          : 0" in out

    def test_buggy_2pc_exits_one(self, capsys):
        assert main(["check", "2pc", "--buggy"]) == 1
        out = capsys.readouterr().out
        assert "BUG" in out

    def test_bdfs_algorithm(self, capsys):
        assert main(["check", "tree", "--algorithm", "bdfs"]) == 0
        out = capsys.readouterr().out
        assert "global states" in out

    def test_lmc_gen_algorithm(self, capsys):
        assert main(["check", "chain", "--algorithm", "lmc-gen"]) == 0

    def test_parallel_algorithm(self, capsys):
        assert main(["check", "tree", "--algorithm", "lmc-parallel"]) == 0

    def test_depth_bound_flag(self, capsys):
        assert main(["check", "echo", "--max-depth", "2"]) == 0


class TestScenarioCommand:
    def test_s55_buggy_finds_bug(self, capsys):
        assert main(["scenario", "s55"]) == 1
        out = capsys.readouterr().out
        assert "Paxos agreement violated" in out

    def test_s55_correct_is_clean(self, capsys):
        assert main(["scenario", "s55", "--correct"]) == 0

    def test_s56_buggy_finds_bug(self, capsys):
        assert main(["scenario", "s56"]) == 1
        out = capsys.readouterr().out
        assert "1Paxos agreement violated" in out

    def test_s56_correct_is_clean(self, capsys):
        assert main(["scenario", "s56", "--correct"]) == 0


class TestFaultFlags:
    """The omission-fault knobs (docs/FAULTS.md) thread CLI → LMCConfig."""

    def test_fault_flags_parse_round_trip(self):
        args = build_parser().parse_args(
            [
                "check",
                "2pc-timeout",
                "--drop-faults",
                "--max-drops",
                "3",
                "--duplicate-faults",
                "--duplicate-limit",
                "2",
                "--partition",
                "1:2:0:1,2",
                "--partition",
                "3:-:1:0",
            ]
        )
        assert args.drop_faults is True
        assert args.max_drops == 3
        assert args.duplicate_faults is True
        assert args.duplicate_limit == 2
        assert args.partitions == [
            (1, 2, (0,), (1, 2)),
            (3, None, (1,), (0,)),
        ]

    def test_fault_flags_default_off(self):
        args = build_parser().parse_args(["check", "2pc-timeout"])
        assert args.drop_faults is False
        assert args.max_drops is None
        assert args.duplicate_faults is False
        assert args.duplicate_limit is None
        assert args.partitions is None

    @pytest.mark.parametrize(
        "spec", ["nonsense", "1:2:0", "x:2:0:1", "1:2::1", "1:2:0:"]
    )
    def test_malformed_partition_spec_is_rejected(self, spec):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["check", "2pc-timeout", "--partition", spec]
            )

    def test_duplicate_limit_reaches_the_config(self, capsys):
        # --duplicate-faults alone must fail config validation (the default
        # duplicate_limit is 0), proving the limit flag is what feeds the
        # admission budget through to LMCConfig.
        with pytest.raises(ValueError, match="duplicate_limit"):
            main(["check", "tree", "--duplicate-faults", "--no-registry"])
        capsys.readouterr()
        assert (
            main(
                [
                    "check",
                    "tree",
                    "--duplicate-faults",
                    "--duplicate-limit",
                    "1",
                    "--no-registry",
                ]
            )
            == 0
        )

    def test_drop_faults_find_the_timeout_atomicity_bug(self, capsys):
        assert main(["check", "2pc-timeout", "--no-registry"]) == 0
        capsys.readouterr()
        assert (
            main(["check", "2pc-timeout", "--drop-faults", "--no-registry"])
            == 1
        )
        out = capsys.readouterr().out
        assert "2PC atomicity violated" in out
        assert "drop Decision" in out

    def test_max_drops_zero_disarms_the_drop_sweep(self, capsys):
        assert (
            main(
                [
                    "check",
                    "2pc-timeout",
                    "--drop-faults",
                    "--max-drops",
                    "0",
                    "--no-registry",
                ]
            )
            == 0
        )

    def test_permanent_partition_suppresses_the_bug(self, capsys):
        assert (
            main(
                [
                    "check",
                    "2pc-timeout",
                    "--drop-faults",
                    "--partition",
                    "1:-:0:1,2",
                    "--no-registry",
                ]
            )
            == 0
        )
