"""Tests for bug reports and check results."""

import pytest

from repro.model.events import DeliveryEvent, InternalEvent
from repro.model.system_state import SystemState
from repro.model.types import Action, Message
from repro.reports import BugReport, CheckResult
from repro.stats.counters import ExplorationStats


def make_report():
    system = SystemState({0: "violating", 1: "fine"})
    initial = SystemState({0: "init", 1: "init"})
    trace = (
        InternalEvent(Action(node=0, name="go")),
        DeliveryEvent(Message(dest=1, src=0, payload="x")),
    )
    return BugReport(
        kind="invariant",
        description="something broke",
        violating_state=system,
        trace=trace,
        initial_state=initial,
    )


class TestBugReport:
    def test_trace_lines_numbered(self):
        report = make_report()
        lines = report.trace_lines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("1.")
        assert "go" in lines[0]
        assert "deliver" in lines[1]

    def test_summary_contains_description_and_trace(self):
        text = make_report().summary()
        assert "something broke" in text
        assert "witness trace" in text
        assert "go@0" in text


class TestCheckResult:
    def test_found_bug_property(self):
        result = CheckResult(algorithm="X", completed=True)
        assert not result.found_bug
        result.bugs.append(make_report())
        assert result.found_bug

    def test_first_bug_raises_when_empty(self):
        result = CheckResult(algorithm="X", completed=True)
        with pytest.raises(LookupError):
            result.first_bug()

    def test_first_bug_returns_first(self):
        result = CheckResult(algorithm="X", completed=False)
        first = make_report()
        result.bugs.append(first)
        result.bugs.append(make_report())
        assert result.first_bug() is first

    def test_defaults(self):
        result = CheckResult(algorithm="X", completed=True)
        assert isinstance(result.stats, ExplorationStats)
        assert result.series is None
        assert result.stop_reason == ""
