"""Tests for the witness-trace replayer."""

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.global_checker import GlobalModelChecker
from repro.model.events import DeliveryEvent, InternalEvent
from repro.model.types import Action, Message
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.tree import Payload, ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import CommitValidity, EagerCommitCoordinator
from repro.replay import replay_trace, trace_to_script, validate_bug


class TestReplayTrace:
    def test_valid_linear_trace(self):
        protocol = TreeProtocol()
        trace = (
            InternalEvent(Action(node=0, name="send")),
            DeliveryEvent(Message(dest=2, src=0, payload=Payload(final_target=4))),
            DeliveryEvent(Message(dest=4, src=2, payload=Payload(final_target=4))),
        )
        outcome = replay_trace(
            protocol, protocol.initial_system_state(), trace, ReceivedImpliesSent()
        )
        assert outcome.complete
        assert outcome.executed == 3
        assert outcome.final_system.get(4).received
        assert outcome.violates is False

    def test_undeliverable_message_stops_replay(self):
        protocol = TreeProtocol()
        trace = (
            # deliver before anything was sent: the message is not in flight
            DeliveryEvent(Message(dest=4, src=2, payload=Payload(final_target=4))),
        )
        outcome = replay_trace(protocol, protocol.initial_system_state(), trace)
        assert not outcome.complete
        assert outcome.failed_at == 0
        assert outcome.executed == 0

    def test_empty_trace(self):
        protocol = TreeProtocol()
        outcome = replay_trace(
            protocol, protocol.initial_system_state(), (), ReceivedImpliesSent()
        )
        assert outcome.complete
        assert outcome.violates is False


class TestValidateBug:
    def test_lmc_paxos_witness_validates(self):
        protocol = scenario_protocol(buggy=True)
        invariant = PaxosAgreement(0)
        result = LocalModelChecker(
            protocol, invariant, config=LMCConfig.optimized()
        ).run(partial_choice_state())
        outcome = validate_bug(protocol, result.first_bug(), invariant)
        assert outcome.complete
        assert outcome.violates

    def test_global_2pc_witness_validates(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        invariant = CommitValidity()
        result = GlobalModelChecker(protocol, invariant).run()
        outcome = validate_bug(protocol, result.first_bug(), invariant)
        assert outcome.complete
        assert outcome.violates


def test_trace_to_script_renders_comments():
    protocol = scenario_protocol(buggy=True)
    result = LocalModelChecker(
        protocol, PaxosAgreement(0), config=LMCConfig.optimized()
    ).run(partial_choice_state())
    lines = trace_to_script(result.first_bug())
    assert all(line.startswith("#") for line in lines)
    assert any("violation" in line for line in lines)
    assert len(lines) >= 3
