"""Tests for the four network substrates."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.types import Message
from repro.network.consuming import ConsumingNetwork
from repro.network.fifo import FifoNetwork, fifo_admissible
from repro.network.lossy import LossyNetwork
from repro.network.monotonic import MonotonicNetwork


def msg(dest=1, src=0, payload="m"):
    return Message(dest=dest, src=src, payload=payload)


# -- consuming network ----------------------------------------------------------


class TestConsumingNetwork:
    def test_send_then_deliver(self):
        net = ConsumingNetwork().send((msg(),))
        assert len(net) == 1
        after = net.deliver(msg())
        assert len(after) == 0
        assert len(net) == 1  # immutability

    def test_send_empty_is_identity(self):
        net = ConsumingNetwork()
        assert net.send(()) is net

    def test_deliver_missing_raises(self):
        with pytest.raises(KeyError):
            ConsumingNetwork().deliver(msg())

    def test_enabled_deliveries_distinct(self):
        net = ConsumingNetwork().send((msg(), msg(), msg(payload="other")))
        events = net.enabled_deliveries()
        assert len(events) == 2
        payloads = {event.message.payload for event in events}
        assert payloads == {"m", "other"}

    def test_in_flight_to(self):
        net = ConsumingNetwork().send((msg(dest=1), msg(dest=2)))
        assert [m.dest for m in net.in_flight_to(1)] == [1]

    def test_equality_and_hash(self):
        a = ConsumingNetwork().send((msg(),))
        b = ConsumingNetwork().send((msg(),))
        assert a == b and hash(a) == hash(b)


# -- monotonic network ---------------------------------------------------------------


class TestMonotonicNetwork:
    def test_messages_never_removed(self):
        net = MonotonicNetwork()
        net.add(msg())
        assert len(net) == 1
        # There is no removal API at all; the network only grows.
        assert not hasattr(net, "remove")

    def test_duplicate_suppression_at_zero_limit(self):
        net = MonotonicNetwork(duplicate_limit=0)
        assert net.add(msg()) is not None
        assert net.add(msg()) is None
        assert net.suppressed_duplicates == 1
        assert len(net) == 1

    def test_duplicate_limit_admits_extra_copies(self):
        net = MonotonicNetwork(duplicate_limit=2)
        assert net.add(msg()) is not None
        assert net.add(msg()) is not None
        assert net.add(msg()) is not None
        assert net.add(msg()) is None
        assert len(net) == 3
        assert net.suppressed_duplicates == 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            MonotonicNetwork(duplicate_limit=-1)

    def test_for_destination_in_arrival_order(self):
        net = MonotonicNetwork()
        net.add(msg(payload="a"))
        net.add(msg(payload="b"))
        net.add(msg(dest=2, payload="c"))
        stored = net.for_destination(1)
        assert [s.message.payload for s in stored] == ["a", "b"]

    def test_cursor_starts_at_zero(self):
        net = MonotonicNetwork()
        stored = net.add(msg())
        assert stored.cursor == 0

    def test_add_all_reports_stored_only(self):
        net = MonotonicNetwork()
        stored = net.add_all((msg(), msg(), msg(payload="x")))
        assert len(stored) == 2

    def test_contains_hash(self):
        from repro.model.hashing import content_hash

        net = MonotonicNetwork()
        net.add(msg())
        assert net.contains_hash(content_hash(msg()))
        assert not net.contains_hash(content_hash(msg(payload="zz")))

    def test_all_messages_in_arrival_order(self):
        net = MonotonicNetwork()
        net.add(msg(dest=2, payload="first"))
        net.add(msg(dest=1, payload="second"))
        seqs = [s.seq for s in net.all_messages()]
        assert seqs == [0, 1]

    def test_retained_bytes_grows(self):
        net = MonotonicNetwork()
        before = net.retained_bytes()
        net.add(msg())
        assert net.retained_bytes() > before

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=20))
    def test_distinct_storage_matches_set(self, payloads):
        net = MonotonicNetwork(duplicate_limit=0)
        for payload in payloads:
            net.add(msg(payload=payload))
        assert len(net) == len(set(payloads))


# -- lossy network ------------------------------------------------------------------


class TestLossyNetwork:
    def test_reliable_delivery_in_time_order(self):
        net = LossyNetwork(random.Random(0), drop_probability=0.0)
        net.send(msg(payload="a"), now=0.0)
        net.send(msg(payload="b"), now=0.0)
        first_time = net.next_delivery_time()
        assert first_time is not None
        out = net.pop_due(first_time)
        assert out is not None
        assert net.pending() == 1

    def test_drop_probability_one_drops_everything_except_loopback(self):
        net = LossyNetwork(random.Random(0), drop_probability=1.0)
        assert net.send(msg(dest=1, src=0), now=0.0) is None
        assert net.send(msg(dest=2, src=2), now=0.0) is not None  # loopback
        assert net.dropped == 1

    def test_statistical_drop_rate(self):
        net = LossyNetwork(random.Random(42), drop_probability=0.3)
        for i in range(1000):
            net.send(msg(payload=str(i)), now=0.0)
        assert 230 <= net.dropped <= 370

    def test_pop_due_respects_time(self):
        net = LossyNetwork(random.Random(0), drop_probability=0.0, min_latency=1.0, max_latency=1.0)
        net.send(msg(), now=0.0)
        assert net.pop_due(0.5) is None
        assert net.pop_due(1.5) is not None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LossyNetwork(random.Random(0), drop_probability=1.5)
        with pytest.raises(ValueError):
            LossyNetwork(random.Random(0), min_latency=2.0, max_latency=1.0)

    def test_seeded_runs_are_reproducible(self):
        def run(seed):
            net = LossyNetwork(random.Random(seed), drop_probability=0.5)
            return [net.send(msg(payload=str(i)), now=0.0) for i in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_duplicate_probability_one_duplicates_everything_except_loopback(self):
        net = LossyNetwork(random.Random(0), duplicate_probability=1.0)
        net.send(msg(dest=1, src=0), now=0.0)
        assert net.duplicated == 1
        assert net.pending() == 2
        net.send(msg(dest=2, src=2), now=0.0)  # loopback: never duplicated
        assert net.duplicated == 1
        assert net.pending() == 3

    def test_duplicate_copies_deliver_independently(self):
        net = LossyNetwork(random.Random(3), duplicate_probability=1.0)
        net.send(msg(payload="x"), now=0.0)
        first = net.pop_due(10.0)
        second = net.pop_due(10.0)
        assert first == second == msg(payload="x")
        assert net.delivered == 2
        assert net.pending() == 0

    def test_statistical_duplicate_rate(self):
        net = LossyNetwork(random.Random(42), duplicate_probability=0.3)
        for i in range(1000):
            net.send(msg(payload=str(i)), now=0.0)
        assert 230 <= net.duplicated <= 370

    def test_duplication_is_seed_reproducible(self):
        def run(seed):
            net = LossyNetwork(
                random.Random(seed),
                drop_probability=0.2,
                duplicate_probability=0.4,
            )
            for i in range(100):
                net.send(msg(payload=str(i)), now=0.0)
            return (net.dropped, net.duplicated, net.pending())

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_invalid_duplicate_probability_rejected(self):
        with pytest.raises(ValueError):
            LossyNetwork(random.Random(0), duplicate_probability=-0.1)
        with pytest.raises(ValueError):
            LossyNetwork(random.Random(0), duplicate_probability=1.5)


# -- fifo network --------------------------------------------------------------


class TestFifoNetwork:
    def test_fifo_per_channel(self):
        net = FifoNetwork()
        net.send(msg(payload="first"))
        net.send(msg(payload="second"))
        assert net.deliver(0, 1).payload == "first"
        assert net.deliver(0, 1).payload == "second"

    def test_channels_are_independent(self):
        net = FifoNetwork()
        net.send(msg(dest=1, src=0, payload="a"))
        net.send(msg(dest=1, src=2, payload="b"))
        assert net.deliverable_channels() == ((0, 1), (2, 1))
        assert net.deliver(2, 1).payload == "b"

    def test_deliver_empty_channel_raises(self):
        with pytest.raises(KeyError):
            FifoNetwork().deliver(0, 1)

    def test_peek_does_not_remove(self):
        net = FifoNetwork()
        net.send(msg(payload="x"))
        assert net.peek(0, 1).payload == "x"
        assert net.pending() == 1
        assert net.peek(3, 4) is None

    def test_fifo_admissible(self):
        delivered = {(0, 1): 2}
        assert fifo_admissible(delivered, 2, 0, 1)
        assert not fifo_admissible(delivered, 1, 0, 1)
        assert not fifo_admissible(delivered, 3, 0, 1)
        assert fifo_admissible({}, 0, 5, 6)
