"""Tests for core value types and events."""

import pytest

from repro.model.events import DeliveryEvent, InternalEvent, event_hash, message_hashes
from repro.model.hashing import content_hash
from repro.model.types import (
    Action,
    HandlerResult,
    LocalAssertionError,
    Message,
    local_assert,
)


def test_message_describe():
    m = Message(dest=1, src=0, payload="hello")
    text = m.describe()
    assert "0->1" in text and "hello" in text


def test_action_describe():
    assert Action(node=2, name="init").describe() == "init@2"
    assert "propose" in Action(node=1, name="propose", payload=(0, "v")).describe()


def test_handler_result_noop_detection():
    state = ("s",)
    assert HandlerResult(state).is_noop(state)
    assert not HandlerResult(("t",)).is_noop(state)
    m = Message(dest=0, src=0, payload="x")
    assert not HandlerResult(state, (m,)).is_noop(state)


def test_local_assert_passes_and_fails():
    local_assert(True, "fine")
    with pytest.raises(LocalAssertionError) as exc:
        local_assert(False, "broken", node=3)
    assert exc.value.node == 3
    assert isinstance(exc.value, AssertionError)


def test_delivery_event_properties():
    m = Message(dest=4, src=0, payload="p")
    ev = DeliveryEvent(m)
    assert ev.node == 4
    assert ev.is_network
    assert "deliver" in ev.describe()


def test_internal_event_properties():
    ev = InternalEvent(Action(node=1, name="timer"))
    assert ev.node == 1
    assert not ev.is_network
    assert "timer" in ev.describe()


def test_event_hash_stable_and_distinct():
    m = Message(dest=1, src=0, payload="x")
    assert event_hash(DeliveryEvent(m)) == event_hash(DeliveryEvent(m))
    assert event_hash(DeliveryEvent(m)) != event_hash(
        InternalEvent(Action(node=1, name="x"))
    )


def test_message_hashes_match_content_hash():
    m1 = Message(dest=1, src=0, payload="a")
    m2 = Message(dest=2, src=0, payload="b")
    assert message_hashes((m1, m2)) == (content_hash(m1), content_hash(m2))
    assert message_hashes(()) == ()


def test_messages_are_ordered_values():
    a = Message(dest=0, src=0, payload="a")
    b = Message(dest=1, src=0, payload="a")
    assert a < b
    assert a == Message(dest=0, src=0, payload="a")
