"""Tests for the immutable multiset backing network states."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.multiset import FrozenMultiset


def test_empty():
    ms = FrozenMultiset()
    assert len(ms) == 0
    assert not ms
    assert list(ms) == []
    assert ms.distinct() == ()


def test_add_and_count():
    ms = FrozenMultiset(["a"]).add("a").add("b")
    assert ms.count("a") == 2
    assert ms.count("b") == 1
    assert ms.count("c") == 0
    assert len(ms) == 3


def test_add_zero_returns_same_object():
    ms = FrozenMultiset(["a"])
    assert ms.add("b", 0) is ms


def test_add_negative_rejected():
    with pytest.raises(ValueError):
        FrozenMultiset().add("a", -1)


def test_add_all_empty_returns_same_object():
    ms = FrozenMultiset(["a"])
    assert ms.add_all([]) is ms


def test_remove_single_occurrence():
    ms = FrozenMultiset(["a", "a", "b"])
    smaller = ms.remove("a")
    assert smaller.count("a") == 1
    assert ms.count("a") == 2  # original untouched


def test_remove_last_occurrence_drops_element():
    ms = FrozenMultiset(["a"]).remove("a")
    assert "a" not in ms
    assert len(ms) == 0


def test_remove_missing_raises():
    with pytest.raises(KeyError):
        FrozenMultiset(["a"]).remove("b")


def test_equality_ignores_insertion_order():
    assert FrozenMultiset(["a", "b", "a"]) == FrozenMultiset(["b", "a", "a"])
    assert hash(FrozenMultiset(["a", "b"])) == hash(FrozenMultiset(["b", "a"]))


def test_multiplicity_matters_for_equality():
    assert FrozenMultiset(["a"]) != FrozenMultiset(["a", "a"])


def test_iteration_repeats_duplicates_in_canonical_order():
    ms = FrozenMultiset([3, 1, 1, 2])
    assert list(ms) == [1, 1, 2, 3]


def test_items_canonical():
    ms = FrozenMultiset(["b", "a", "b"])
    assert ms.items() == (("a", 1), ("b", 2))


def test_contains():
    ms = FrozenMultiset(["x"])
    assert "x" in ms
    assert "y" not in ms


def test_repr_mentions_multiplicity():
    assert "×2" in repr(FrozenMultiset(["a", "a"]))


@given(st.lists(st.integers(min_value=0, max_value=5)))
def test_len_matches_input(items):
    assert len(FrozenMultiset(items)) == len(items)


@given(st.lists(st.integers(min_value=0, max_value=5)))
def test_add_then_remove_round_trip(items):
    ms = FrozenMultiset(items)
    grown = ms.add(99)
    assert grown.remove(99) == ms


@given(
    st.lists(st.integers(min_value=0, max_value=5)),
    st.lists(st.integers(min_value=0, max_value=5)),
)
def test_equality_is_order_insensitive(a, b):
    assert (FrozenMultiset(a) == FrozenMultiset(b)) == (sorted(a) == sorted(b))


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1))
def test_remove_each_in_canonical_order_empties(items):
    ms = FrozenMultiset(items)
    for item in list(ms):
        ms = ms.remove(item)
    assert len(ms) == 0
