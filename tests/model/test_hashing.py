"""Tests for deterministic content hashing."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.hashing import (
    UnhashableModelValue,
    canonical_bytes,
    content_hash,
    content_size,
    hash_many,
)


@dataclasses.dataclass(frozen=True)
class Sample:
    a: int
    b: str


@dataclasses.dataclass(frozen=True)
class Other:
    a: int
    b: str


# -- basic behaviour ---------------------------------------------------------


def test_equal_values_hash_equal():
    assert content_hash((1, "x")) == content_hash((1, "x"))


def test_different_values_hash_differently():
    assert content_hash((1, "x")) != content_hash((1, "y"))


def test_type_tags_prevent_cross_type_collisions():
    assert content_hash(1) != content_hash("1")
    assert content_hash((1,)) != content_hash(1)
    assert content_hash(True) != content_hash(1)
    assert content_hash(False) != content_hash(0)
    assert content_hash(None) != content_hash(0)
    assert content_hash(b"x") != content_hash("x")


def test_dataclass_hash_includes_class_name():
    assert content_hash(Sample(1, "x")) != content_hash(Other(1, "x"))


def test_dataclass_hash_covers_fields():
    assert content_hash(Sample(1, "x")) != content_hash(Sample(2, "x"))
    assert content_hash(Sample(1, "x")) == content_hash(Sample(1, "x"))


def test_frozenset_hash_is_order_independent():
    assert content_hash(frozenset([1, 2, 3])) == content_hash(frozenset([3, 1, 2]))


def test_nested_structures():
    value = (Sample(1, "x"), frozenset([(1, 2)]), None, True)
    assert content_hash(value) == content_hash(
        (Sample(1, "x"), frozenset([(1, 2)]), None, True)
    )


def test_mapping_encoding_is_key_sorted():
    assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


def test_mapping_with_unorderable_keys_rejected():
    with pytest.raises(UnhashableModelValue):
        content_hash({1: "a", "b": 2})


def test_mutable_values_rejected():
    with pytest.raises(UnhashableModelValue):
        content_hash([1, 2, 3])
    with pytest.raises(UnhashableModelValue):
        content_hash({1, 2})


def test_content_size_positive_and_additive_shape():
    small = content_size((1,))
    large = content_size((1, 2, 3, 4, 5))
    assert 0 < small < large


def test_hash_many_round_trips():
    values = [(1,), (2,), (3,)]
    mapping = hash_many(values)
    assert set(mapping.values()) == set(values)
    for digest, value in mapping.items():
        assert content_hash(value) == digest


def test_float_and_int_distinct():
    assert content_hash(1.0) != content_hash(1)


# -- property-based ------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.floats(allow_nan=False),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.frozensets(st.integers(), max_size=4),
    ),
    max_leaves=10,
)


@given(values)
def test_hash_is_deterministic(value):
    assert content_hash(value) == content_hash(value)


@given(values, values)
def test_encoding_injective_on_samples(a, b):
    if canonical_bytes(a) == canonical_bytes(b):
        assert a == b  # equal encodings only for equal values


@given(st.tuples(st.integers(), st.text(max_size=10)))
def test_hash_fits_in_64_bits(value):
    assert 0 <= content_hash(value) < 2**64
