"""Property tests for the hash interning cache.

The contract of :class:`repro.model.hashing.HashInterner` is that it is
*invisible*: for any model value, the interned encoding, hash and size must
equal what the uncached walk produces — including after evictions, repeat
lookups, and for values that are never cacheable (anything containing a
``dict``).  These tests exercise that contract over arbitrary values.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import hashing
from repro.model.hashing import (
    HashInterner,
    canonical_bytes,
    configure_encoding_caches,
    configure_interning,
    content_hash,
    content_hash_and_size,
    content_size,
    intern_stats,
    interning_enabled,
)


@dataclasses.dataclass(frozen=True)
class Inner:
    x: int
    y: str


@dataclasses.dataclass(frozen=True)
class Outer:
    inner: Inner
    items: tuple
    tag: str


@pytest.fixture(autouse=True)
def _restore_hashing_globals():
    """Every test here may reconfigure the module globals; undo it."""
    yield
    configure_encoding_caches(True)
    configure_interning(True)


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.floats(allow_nan=False),
)


def _composites(children):
    return st.one_of(
        st.tuples(children, children),
        st.tuples(children),
        st.frozensets(st.one_of(st.integers(), st.text(max_size=5)), max_size=4),
        st.builds(Inner, st.integers(), st.text(max_size=8)),
        st.builds(
            Outer,
            st.builds(Inner, st.integers(), st.text(max_size=8)),
            st.tuples(children, children),
            st.text(max_size=8),
        ),
        # Mapping values are accepted read-only and poison cacheability.
        st.dictionaries(st.integers(), children, max_size=3),
    )


values = st.recursive(scalars, _composites, max_leaves=12)


@given(values)
@settings(max_examples=200)
def test_interned_agrees_with_uncached(value):
    """Interned bytes/hash/size equal the uncached reference, twice over."""
    expected = canonical_bytes(value, intern=False)
    expected_hash = content_hash(value, intern=False)
    # First pass populates the cache, second pass reads it; both must agree
    # with the reference walk.
    for _ in range(2):
        assert canonical_bytes(value) == expected
        assert content_hash(value) == expected_hash
        assert content_size(value) == len(expected)
        assert content_hash_and_size(value) == (expected_hash, len(expected))


@given(values)
@settings(max_examples=100)
def test_uncached_mode_agrees_with_cached_mode(value):
    """The bench's uncached configuration produces identical encodings."""
    cached = canonical_bytes(value)
    configure_interning(False)
    configure_encoding_caches(False)
    try:
        assert not interning_enabled()
        assert canonical_bytes(value) == cached
        assert content_hash_and_size(value) == (
            content_hash(value),
            len(cached),
        )
    finally:
        configure_encoding_caches(True)
        configure_interning(True)


@given(st.lists(st.tuples(st.integers(), st.text(max_size=8)), min_size=10, max_size=30))
@settings(max_examples=50)
def test_eviction_preserves_correctness(items):
    """A tiny LRU evicts constantly yet never changes a hash."""
    interner = HashInterner(capacity=3)
    for value in items:
        out = bytearray()
        hashing._encode(value, out, interner)
        assert bytes(out) == canonical_bytes(value, intern=False)
    assert len(interner) <= 3
    if len(set(map(id, items))) > 3:
        assert interner.evictions > 0


def test_counters_move_and_pin_identity():
    configure_interning(True)
    value = (1, "x", Inner(2, "y"))
    before = intern_stats()
    content_hash(value)
    content_hash(value)  # same object: must be a hit
    after = intern_stats()
    assert after["misses"] > before["misses"]
    assert after["hits"] > before["hits"]


def test_dict_values_are_never_cached():
    configure_interning(True)
    payload = {"k": 1}
    value = (payload, "tag")
    first = content_hash(value)
    assert first == content_hash(value, intern=False)
    # Mutating the dict must be observed: nothing on the path to it may
    # have been cached.
    payload["k"] = 2
    second = content_hash(value)
    assert second != first
    assert second == content_hash(value, intern=False)


def test_disabling_interning_reports_zero_stats():
    configure_interning(False)
    assert not interning_enabled()
    assert intern_stats() == {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "entries": 0,
        "capacity": 0,
    }
    # Hashing still works without the cache.
    assert content_hash((1, 2)) == content_hash((1, 2), intern=False)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        HashInterner(capacity=0)
