"""Tests for SystemState and GlobalState containers."""

import pytest

from repro.model.multiset import FrozenMultiset
from repro.model.system_state import GlobalState, SystemState
from repro.model.types import Message


def make_system(**states):
    return SystemState({int(k[1:]): v for k, v in states.items()})


def test_entries_sorted_by_node_id():
    ss = SystemState({2: "b", 0: "a", 1: "c"})
    assert ss.node_ids == (0, 1, 2)
    assert ss.states() == ("a", "c", "b")


def test_get_and_items():
    ss = SystemState({0: "a", 1: "b"})
    assert ss.get(0) == "a"
    assert dict(ss.items()) == {0: "a", 1: "b"}
    with pytest.raises(KeyError):
        ss.get(9)


def test_duplicate_node_ids_rejected():
    with pytest.raises(ValueError):
        SystemState(((0, "a"), (0, "b")))


def test_replace_is_functional():
    ss = SystemState({0: "a", 1: "b"})
    replaced = ss.replace(0, "z")
    assert replaced.get(0) == "z"
    assert ss.get(0) == "a"
    with pytest.raises(KeyError):
        ss.replace(7, "x")


def test_equality_and_hash():
    a = SystemState({0: "a", 1: "b"})
    b = SystemState({1: "b", 0: "a"})
    assert a == b
    assert hash(a) == hash(b)
    assert a != SystemState({0: "a", 1: "c"})


def test_len_and_iter():
    ss = SystemState({0: "a", 1: "b"})
    assert len(ss) == 2
    assert list(ss) == [(0, "a"), (1, "b")]


def test_retained_bytes_positive():
    assert SystemState({0: "a"}).retained_bytes() > 0


def test_global_state_deliver_consumes_message():
    message = Message(dest=1, src=0, payload="ping")
    gs = GlobalState(SystemState({0: "a", 1: "b"}), FrozenMultiset([message]))
    after = gs.deliver(message, "b2", ())
    assert after.system.get(1) == "b2"
    assert len(after.network) == 0
    # original untouched
    assert gs.system.get(1) == "b"
    assert len(gs.network) == 1


def test_global_state_deliver_inserts_sends():
    m1 = Message(dest=1, src=0, payload="ping")
    m2 = Message(dest=0, src=1, payload="pong")
    gs = GlobalState(SystemState({0: "a", 1: "b"}), FrozenMultiset([m1]))
    after = gs.deliver(m1, "b2", (m2,))
    assert after.network.count(m2) == 1
    assert after.network.count(m1) == 0


def test_global_state_internal_keeps_network_plus_sends():
    m = Message(dest=1, src=0, payload="x")
    gs = GlobalState(SystemState({0: "a", 1: "b"}), FrozenMultiset())
    after = gs.run_internal(0, "a2", (m,))
    assert after.system.get(0) == "a2"
    assert after.network.count(m) == 1


def test_global_state_equality_covers_network():
    system = SystemState({0: "a"})
    m = Message(dest=0, src=0, payload="x")
    g1 = GlobalState(system, FrozenMultiset())
    g2 = GlobalState(system, FrozenMultiset([m]))
    g3 = GlobalState(system, FrozenMultiset())
    assert g1 != g2
    assert g1 == g3
    assert hash(g1) == hash(g3)


def test_global_state_retained_bytes_counts_messages():
    system = SystemState({0: "a"})
    m = Message(dest=0, src=0, payload="x")
    bare = GlobalState(system, FrozenMultiset()).retained_bytes()
    loaded = GlobalState(system, FrozenMultiset([m, m])).retained_bytes()
    assert loaded > bare
