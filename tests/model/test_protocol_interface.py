"""Tests for the Protocol base class helpers."""

import pytest

from repro.model.events import DeliveryEvent, InternalEvent
from repro.model.protocol import broadcast
from repro.model.types import Action, Message
from repro.protocols.tree import Payload, TreeProtocol


class TestBroadcast:
    def test_targets_in_id_order(self):
        sends = broadcast(1, (3, 0, 2), "payload")
        assert [m.dest for m in sends] == [0, 2, 3]
        assert all(m.src == 1 for m in sends)
        assert all(m.payload == "payload" for m in sends)

    def test_includes_self_when_listed(self):
        sends = broadcast(0, (0, 1), "x")
        assert [m.dest for m in sends] == [0, 1]

    def test_empty_targets(self):
        assert broadcast(0, (), "x") == ()


class TestProtocolHelpers:
    def test_initial_system_state_covers_all_nodes(self):
        protocol = TreeProtocol()
        system = protocol.initial_system_state()
        assert system.node_ids == protocol.node_ids()
        for node, state in system.items():
            assert state == protocol.initial_state(node)

    def test_num_nodes(self):
        assert TreeProtocol().num_nodes() == 5

    def test_execute_dispatches_delivery(self):
        protocol = TreeProtocol()
        message = Message(dest=2, src=0, payload=Payload(final_target=4))
        event = DeliveryEvent(message)
        result = protocol.execute(protocol.initial_state(2), event)
        assert result.sends

    def test_execute_dispatches_internal(self):
        protocol = TreeProtocol()
        event = InternalEvent(Action(node=0, name="send"))
        result = protocol.execute(protocol.initial_state(0), event)
        assert result.state.sent

    def test_execute_rejects_unknown_event(self):
        protocol = TreeProtocol()
        with pytest.raises(ValueError):
            protocol.execute(protocol.initial_state(0), "not-an-event")
