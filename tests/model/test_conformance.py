"""Conformance sweep: every shipped protocol keeps the Protocol contract."""

import random
from dataclasses import dataclass, replace
from typing import Tuple

import pytest

from repro.model.conformance import check_protocol
from repro.model.protocol import Protocol
from repro.model.types import Action, HandlerResult, Message, NodeId
from repro.protocols.chain import ChainProtocol
from repro.protocols.echo import EchoProtocol
from repro.protocols.fifo_wrapper import FifoStampedProtocol
from repro.protocols.onepaxos import OnePaxosProtocol
from repro.protocols.paxos import BuggyPaxosProtocol, PaxosProtocol
from repro.protocols.randtree import RandTreeProtocol, SiblingMixupRandTree
from repro.protocols.ring import GreedyRingElection, RingElection
from repro.protocols.stream import StreamProtocol
from repro.protocols.tree import TreeProtocol
from repro.protocols.twophase import EagerCommitCoordinator, TwoPhaseCommit

ALL_PROTOCOLS = [
    TreeProtocol(),
    TreeProtocol(track_forwarding=False),
    ChainProtocol(4),
    EchoProtocol(3),
    StreamProtocol(3),
    TwoPhaseCommit(3, no_voters=(2,)),
    EagerCommitCoordinator(3, no_voters=(2,)),
    RandTreeProtocol(4),
    SiblingMixupRandTree(4),
    RingElection(4),
    GreedyRingElection(4),
    PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),), require_init=False),
    BuggyPaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),), require_init=False),
    OnePaxosProtocol(
        num_nodes=3, proposals=((2, 0, "v"),), fault_suspects=(2,),
        require_init=False,
    ),
    FifoStampedProtocol(StreamProtocol(3), mode="reject"),
    FifoStampedProtocol(StreamProtocol(3), mode="reassemble"),
]


@pytest.mark.parametrize(
    "protocol", ALL_PROTOCOLS, ids=lambda p: p.name
)
def test_shipped_protocols_conform(protocol):
    report = check_protocol(protocol, max_states=800)
    assert report.ok, report.summary()
    assert report.states_checked > 0
    assert report.events_checked > 0


# -- deliberately broken protocols must be caught ------------------------------


@dataclass(frozen=True)
class TinyState:
    node: NodeId
    done: bool = False


class NonDeterministicProtocol(Protocol):
    """Handler result depends on a random coin: a contract violation."""

    name = "nondeterministic"

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0, 1)

    def initial_state(self, node):
        return TinyState(node=node)

    def enabled_actions(self, state):
        if state.node == 0 and not state.done:
            return (Action(node=0, name="go"),)
        return ()

    def handle_action(self, state, action):
        if random.random() < 0.5:
            return HandlerResult(replace(state, done=True))
        return HandlerResult(state)

    def handle_message(self, state, message):
        return HandlerResult(state)


class UnhashableStateProtocol(Protocol):
    """Reaches a state containing a list: not content-hashable."""

    name = "unhashable"

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0,)

    def initial_state(self, node):
        return TinyState(node=node)

    def enabled_actions(self, state):
        if isinstance(state, TinyState) and not state.done:
            return (Action(node=0, name="go"),)
        return ()

    def handle_action(self, state, action):
        return HandlerResult((state, [1, 2, 3]))  # list inside a state

    def handle_message(self, state, message):
        return HandlerResult(state)


class CrashingProtocol(Protocol):
    """Crashes on foreign payloads instead of ignoring them."""

    name = "crashing"

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0,)

    def initial_state(self, node):
        return TinyState(node=node)

    def enabled_actions(self, state):
        return ()

    def handle_action(self, state, action):
        return HandlerResult(state)

    def handle_message(self, state, message):
        raise RuntimeError(f"unexpected payload {message.payload!r}")


def test_nondeterminism_detected():
    random.seed(1234)
    report = check_protocol(NonDeterministicProtocol())
    assert not report.ok
    assert any("non-deterministic" in problem for problem in report.problems)


def test_unhashable_state_detected():
    report = check_protocol(UnhashableStateProtocol())
    assert not report.ok
    assert any("unhashable" in problem for problem in report.problems)


def test_crash_on_foreign_payload_detected():
    report = check_protocol(CrashingProtocol())
    assert not report.ok
    assert any("raised" in problem for problem in report.problems)


def test_report_summary_renders():
    report = check_protocol(CrashingProtocol())
    text = report.summary()
    assert "problems" in text
    assert "RuntimeError" in text
