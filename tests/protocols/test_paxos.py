"""Unit tests for the Paxos protocol implementation."""

import pytest

from repro.model.protocol import ProtocolConfigError
from repro.model.types import Action, Message
from repro.protocols.paxos import (
    Accept,
    Ballot,
    BuggyPaxosProtocol,
    Learn,
    PaxosAgreement,
    PaxosAgreementAll,
    PaxosProtocol,
    Prepare,
    PrepareResponse,
)
from repro.protocols.paxos.state import PromiseInfo, ProposerSlot


def deliver(protocol, state, src, payload):
    return protocol.handle_message(
        state, Message(dest=state.node, src=src, payload=payload)
    )


@pytest.fixture
def protocol():
    return PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),), require_init=False)


class TestBallots:
    def test_total_order(self):
        assert Ballot(1, 0) < Ballot(1, 1) < Ballot(2, 0)

    def test_next_round(self):
        assert Ballot(1, 2).next_round(0) == Ballot(2, 0)


class TestConfig:
    def test_too_few_nodes_rejected(self):
        with pytest.raises(ProtocolConfigError):
            PaxosProtocol(num_nodes=1)

    def test_unknown_proposer_rejected(self):
        with pytest.raises(ProtocolConfigError):
            PaxosProtocol(num_nodes=3, proposals=((7, 0, "v"),))

    def test_majority(self):
        assert PaxosProtocol(num_nodes=3).majority == 2
        assert PaxosProtocol(num_nodes=5).majority == 3


class TestInitAndPropose:
    def test_init_action_required_by_default(self):
        protocol = PaxosProtocol(num_nodes=3)
        state = protocol.initial_state(0)
        actions = protocol.enabled_actions(state)
        assert [a.name for a in actions] == ["init"]
        inited = protocol.handle_action(state, actions[0]).state
        assert inited.initialized
        assert [a.name for a in protocol.enabled_actions(inited)] == ["propose"]

    def test_propose_broadcasts_prepare_to_all(self, protocol):
        state = protocol.initial_state(0)
        result = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v0"))
        )
        assert len(result.sends) == 3
        assert all(isinstance(m.payload, Prepare) for m in result.sends)
        assert result.state.proposer(0).ballot == Ballot(1, 0)
        assert result.state.pending == ()

    def test_propose_with_wrong_payload_is_noop(self, protocol):
        state = protocol.initial_state(0)
        result = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(5, "zz"))
        )
        assert result.is_noop(state)

    def test_inject_enqueues_once(self, protocol):
        state = protocol.initial_state(1)
        once = protocol.handle_action(
            state, Action(node=1, name="inject", payload=(3, "x"))
        ).state
        assert (3, "x") in once.pending
        twice = protocol.handle_action(
            once, Action(node=1, name="inject", payload=(3, "x"))
        )
        assert twice.is_noop(once)


class TestAcceptor:
    def test_promise_and_response(self, protocol):
        state = protocol.initial_state(1)
        result = deliver(protocol, state, 0, Prepare(index=0, ballot=Ballot(1, 0)))
        assert result.state.acceptor(0).promised == Ballot(1, 0)
        (response,) = result.sends
        assert response.dest == 0
        assert isinstance(response.payload, PrepareResponse)
        assert response.payload.accepted_value is None

    def test_lower_ballot_prepare_ignored(self, protocol):
        state = protocol.initial_state(1)
        state = deliver(protocol, state, 2, Prepare(index=0, ballot=Ballot(1, 2))).state
        result = deliver(protocol, state, 0, Prepare(index=0, ballot=Ballot(1, 0)))
        assert result.is_noop(state)

    def test_equal_ballot_prepare_repromises(self, protocol):
        state = protocol.initial_state(1)
        state = deliver(protocol, state, 0, Prepare(index=0, ballot=Ballot(1, 0))).state
        result = deliver(protocol, state, 0, Prepare(index=0, ballot=Ballot(1, 0)))
        assert result.sends  # idempotent re-response
        assert result.state == state

    def test_accept_stores_and_broadcasts_learn(self, protocol):
        state = protocol.initial_state(1)
        result = deliver(
            protocol, state, 0, Accept(index=0, ballot=Ballot(1, 0), value="v0")
        )
        slot = result.state.acceptor(0)
        assert slot.accepted_value == "v0"
        assert slot.promised == Ballot(1, 0)
        assert len(result.sends) == 3
        assert all(isinstance(m.payload, Learn) for m in result.sends)

    def test_lower_ballot_accept_rejected(self, protocol):
        state = protocol.initial_state(1)
        state = deliver(protocol, state, 2, Prepare(index=0, ballot=Ballot(1, 2))).state
        result = deliver(
            protocol, state, 0, Accept(index=0, ballot=Ballot(1, 0), value="v0")
        )
        assert result.is_noop(state)

    def test_duplicate_accept_reannounces_learn(self, protocol):
        state = protocol.initial_state(1)
        accept = Accept(index=0, ballot=Ballot(1, 0), value="v0")
        state = deliver(protocol, state, 0, accept).state
        result = deliver(protocol, state, 0, accept)
        assert result.state == state
        assert len(result.sends) == 3  # Learn re-broadcast

    def test_response_carries_accepted_proposal(self, protocol):
        state = protocol.initial_state(1)
        state = deliver(
            protocol, state, 0, Accept(index=0, ballot=Ballot(1, 0), value="v0")
        ).state
        result = deliver(protocol, state, 2, Prepare(index=0, ballot=Ballot(1, 2)))
        (response,) = result.sends
        assert response.payload.accepted_ballot == Ballot(1, 0)
        assert response.payload.accepted_value == "v0"


class TestProposerQuorum:
    def _preparing_state(self, protocol):
        state = protocol.initial_state(0)
        return protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v0"))
        ).state

    def test_first_response_recorded(self, protocol):
        state = self._preparing_state(protocol)
        response = PrepareResponse(
            index=0, ballot=Ballot(1, 0), accepted_ballot=None, accepted_value=None
        )
        result = deliver(protocol, state, 1, response)
        assert len(result.state.proposer(0).responses) == 1
        assert not result.sends

    def test_quorum_triggers_accept_broadcast(self, protocol):
        state = self._preparing_state(protocol)
        response = PrepareResponse(
            index=0, ballot=Ballot(1, 0), accepted_ballot=None, accepted_value=None
        )
        state = deliver(protocol, state, 1, response).state
        result = deliver(protocol, state, 2, response)
        assert result.state.proposer(0).phase == "accepting"
        assert len(result.sends) == 3
        assert all(isinstance(m.payload, Accept) for m in result.sends)
        assert result.sends[0].payload.value == "v0"

    def test_duplicate_responder_ignored(self, protocol):
        state = self._preparing_state(protocol)
        response = PrepareResponse(
            index=0, ballot=Ballot(1, 0), accepted_ballot=None, accepted_value=None
        )
        state = deliver(protocol, state, 1, response).state
        result = deliver(protocol, state, 1, response)
        assert result.is_noop(state)

    def test_stale_ballot_response_ignored(self, protocol):
        state = self._preparing_state(protocol)
        stale = PrepareResponse(
            index=0, ballot=Ballot(9, 9), accepted_ballot=None, accepted_value=None
        )
        assert deliver(protocol, state, 1, stale).is_noop(state)

    def test_correct_value_selection_highest_ballot_wins(self, protocol):
        slot = ProposerSlot(
            ballot=Ballot(2, 0),
            value="mine",
            responses=(
                PromiseInfo(1, Ballot(1, 1), "old-low"),
                PromiseInfo(2, Ballot(1, 2), "old-high"),
                PromiseInfo(0, None, None),
            ),
        )
        assert protocol._select_value(slot) == "old-high"

    def test_correct_value_selection_own_value_when_none_accepted(self, protocol):
        slot = ProposerSlot(
            ballot=Ballot(1, 0),
            value="mine",
            responses=(PromiseInfo(1, None, None), PromiseInfo(2, None, None)),
        )
        assert protocol._select_value(slot) == "mine"

    def test_buggy_value_selection_uses_last_response(self):
        buggy = BuggyPaxosProtocol(num_nodes=3, require_init=False)
        slot = ProposerSlot(
            ballot=Ballot(2, 1),
            value="mine",
            responses=(
                PromiseInfo(1, Ballot(1, 0), "accepted-earlier"),
                PromiseInfo(2, None, None),  # last: nothing accepted
            ),
        )
        # The injected §5.5 bug: the last response wins, so the proposer
        # wrongly pushes its own value despite the earlier accepted one.
        assert buggy._select_value(slot) == "mine"
        reordered = ProposerSlot(
            ballot=slot.ballot,
            value="mine",
            responses=tuple(reversed(slot.responses)),
        )
        assert buggy._select_value(reordered) == "accepted-earlier"


class TestLearner:
    def test_choice_requires_majority_of_acceptors(self, protocol):
        state = protocol.initial_state(2)
        learn = Learn(index=0, ballot=Ballot(1, 0), value="v0")
        state = deliver(protocol, state, 0, learn).state
        assert state.chosen_value(0) is None
        state = deliver(protocol, state, 1, learn).state
        assert state.chosen_value(0) == "v0"

    def test_duplicate_learn_ignored(self, protocol):
        state = protocol.initial_state(2)
        learn = Learn(index=0, ballot=Ballot(1, 0), value="v0")
        state = deliver(protocol, state, 0, learn).state
        assert deliver(protocol, state, 0, learn).is_noop(state)

    def test_mixed_ballots_do_not_count_together(self, protocol):
        state = protocol.initial_state(2)
        state = deliver(
            protocol, state, 0, Learn(index=0, ballot=Ballot(1, 0), value="v0")
        ).state
        state = deliver(
            protocol, state, 1, Learn(index=0, ballot=Ballot(2, 1), value="v0")
        ).state
        assert state.chosen_value(0) is None

    def test_choice_retires_own_proposer_slot(self, protocol):
        state = protocol.initial_state(0)
        state = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v0"))
        ).state
        learn = Learn(index=0, ballot=Ballot(1, 0), value="v0")
        state = deliver(protocol, state, 0, learn).state
        state = deliver(protocol, state, 1, learn).state
        assert state.chosen_value(0) == "v0"
        assert state.proposer(0).phase == "done"


class TestRetransmit:
    def test_disabled_by_default(self, protocol):
        state = protocol.initial_state(0)
        state = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v0"))
        ).state
        assert all(a.name != "retry" for a in protocol.enabled_actions(state))

    def test_retry_rebroadcasts_without_state_change(self):
        protocol = PaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v0"),), require_init=False, retransmit=True
        )
        state = protocol.initial_state(0)
        state = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v0"))
        ).state
        retry = [a for a in protocol.enabled_actions(state) if a.name == "retry"]
        assert retry
        result = protocol.handle_action(state, retry[0])
        assert result.state == state
        assert len(result.sends) == 3
        assert isinstance(result.sends[0].payload, Prepare)


class TestInvariants:
    def test_agreement_detects_disagreement(self, protocol):
        a = protocol.initial_state(0)
        b = protocol.initial_state(1)
        learn0 = Learn(index=0, ballot=Ballot(1, 0), value="x")
        learn1 = Learn(index=0, ballot=Ballot(1, 1), value="y")
        for src in (0, 1):
            a = deliver(protocol, a, src, learn0).state
            b = deliver(protocol, b, src, learn1).state
        from repro.model.system_state import SystemState

        system = SystemState({0: a, 1: b, 2: protocol.initial_state(2)})
        assert not PaxosAgreement(0).check(system)
        assert not PaxosAgreementAll().check(system)
        assert "x" in PaxosAgreement(0).describe_violation(system)

    def test_projection_is_chosen_value(self, protocol):
        state = protocol.initial_state(0)
        assert PaxosAgreement(0).local_projection(0, state) is None
        learn = Learn(index=0, ballot=Ballot(1, 0), value="v")
        state = deliver(protocol, state, 0, learn).state
        state = deliver(protocol, state, 1, learn).state
        assert PaxosAgreement(0).local_projection(0, state) == "v"

    def test_agreement_all_projection_and_conflict(self, protocol):
        inv = PaxosAgreementAll()
        state = protocol.initial_state(0)
        assert inv.local_projection(0, state) is None
        learn = Learn(index=3, ballot=Ballot(1, 0), value="v")
        state = deliver(protocol, state, 0, learn).state
        state = deliver(protocol, state, 1, learn).state
        projection = inv.local_projection(0, state)
        assert (3, "v") in projection
        assert inv.projections_conflict({0: projection, 1: frozenset({(3, "w")})})
        assert not inv.projections_conflict(
            {0: projection, 1: frozenset({(4, "w")})}
        )
