"""Tests for the FIFO wrapper (§4.3 simulated TCP) and the stream workload."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.explore.global_checker import GlobalModelChecker
from repro.invariants.base import PredicateInvariant
from repro.model.types import Action, Message
from repro.protocols.echo import EchoProtocol, PongsImplyPing
from repro.protocols.fifo_wrapper import (
    FifoStampedProtocol,
    Stamped,
    UnwrappingInvariant,
    unwrap_system_state,
)
from repro.protocols.stream import InOrderDelivery, Packet, StreamProtocol

TRUE = PredicateInvariant("true", lambda s: True)


class TestWrapperMechanics:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            FifoStampedProtocol(StreamProtocol(2), mode="zigzag")

    def test_sends_are_stamped_per_channel(self):
        wrapped = FifoStampedProtocol(StreamProtocol(3))
        state = wrapped.initial_state(0)
        result = wrapped.handle_action(state, Action(node=0, name="emit", payload=0))
        (message,) = result.sends
        assert isinstance(message.payload, Stamped)
        assert message.payload.seq == 0
        second = wrapped.handle_action(
            result.state, Action(node=0, name="emit", payload=1)
        )
        assert second.sends[0].payload.seq == 1

    def test_in_order_delivery_advances_counter(self):
        wrapped = FifoStampedProtocol(StreamProtocol(2))
        receiver = wrapped.initial_state(1)
        msg = Message(dest=1, src=0, payload=Stamped(0, Packet(0)))
        result = wrapped.handle_message(receiver, msg)
        assert result.state.inner.received == (0,)
        msg1 = Message(dest=1, src=0, payload=Stamped(1, Packet(1)))
        result = wrapped.handle_message(result.state, msg1)
        assert result.state.inner.received == (0, 1)

    def test_reject_mode_ignores_out_of_order(self):
        wrapped = FifoStampedProtocol(StreamProtocol(2), mode="reject")
        receiver = wrapped.initial_state(1)
        out_of_order = Message(dest=1, src=0, payload=Stamped(1, Packet(1)))
        result = wrapped.handle_message(receiver, out_of_order)
        assert result.is_noop(receiver)

    def test_reassemble_mode_stashes_and_flushes(self):
        wrapped = FifoStampedProtocol(StreamProtocol(2), mode="reassemble")
        receiver = wrapped.initial_state(1)
        late = Message(dest=1, src=0, payload=Stamped(1, Packet(1)))
        stashed = wrapped.handle_message(receiver, late).state
        assert stashed.stash
        assert stashed.inner.received == ()
        first = Message(dest=1, src=0, payload=Stamped(0, Packet(0)))
        final = wrapped.handle_message(stashed, first).state
        assert final.inner.received == (0, 1)
        assert not final.stash

    def test_stale_duplicate_dropped(self):
        wrapped = FifoStampedProtocol(StreamProtocol(2))
        receiver = wrapped.initial_state(1)
        msg = Message(dest=1, src=0, payload=Stamped(0, Packet(0)))
        once = wrapped.handle_message(receiver, msg).state
        again = wrapped.handle_message(once, msg)
        assert again.is_noop(once)

    def test_unstamped_traffic_passes_through(self):
        wrapped = FifoStampedProtocol(StreamProtocol(2))
        receiver = wrapped.initial_state(1)
        raw = Message(dest=1, src=0, payload=Packet(0))
        result = wrapped.handle_message(receiver, raw)
        assert result.state.inner.received == (0,)

    def test_unwrap_system_state(self):
        wrapped = FifoStampedProtocol(StreamProtocol(2))
        system = wrapped.initial_system_state()
        inner = unwrap_system_state(system)
        assert inner.get(0).node == 0
        assert inner.get(1).received == ()


class TestStateSpaceSavings:
    """The §4.3 claim, quantified: FIFO collapses reorder-only state space."""

    def test_lmc_states_collapse_under_fifo(self):
        raw = StreamProtocol(4)
        wrapped = FifoStampedProtocol(raw, mode="reject")
        raw_result = LocalModelChecker(raw, TRUE).run()
        fifo_result = LocalModelChecker(wrapped, TRUE).run()
        # Receiver states raw: all permutation prefixes of 4 packets (65);
        # under FIFO: the 5 in-order prefixes.
        assert raw_result.stats.node_states > 5 * fifo_result.stats.node_states

    def test_in_order_invariant_flips_with_transport(self):
        raw = StreamProtocol(3)
        inv = InOrderDelivery()
        assert GlobalModelChecker(raw, inv).run().found_bug
        assert LocalModelChecker(raw, inv).run().found_bug

        reject = FifoStampedProtocol(raw, mode="reject")
        reassemble = FifoStampedProtocol(raw, mode="reassemble")
        wrapped_inv = PredicateInvariant(
            "in-order+unwrap", lambda s: inv.check(unwrap_system_state(s))
        )
        assert not LocalModelChecker(reject, wrapped_inv).run().found_bug
        assert not GlobalModelChecker(reassemble, wrapped_inv).run().found_bug

    def test_wrapper_preserves_verdicts_on_echo(self):
        raw = EchoProtocol(3)
        inv = UnwrappingInvariant(PongsImplyPing())
        for mode in ("reject", "reassemble"):
            wrapped = FifoStampedProtocol(raw, mode=mode)
            result = LocalModelChecker(wrapped, inv).run()
            assert result.completed and not result.found_bug, mode
        reassembled = FifoStampedProtocol(raw, mode="reassemble")
        assert not GlobalModelChecker(reassembled, inv).run().found_bug
