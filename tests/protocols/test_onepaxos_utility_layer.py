"""Tests for the PaxosUtility envelope layer of 1Paxos."""

from repro.model.types import Action, Message
from repro.protocols.onepaxos import OnePaxosProtocol, Util, leader_entry
from repro.protocols.paxos.messages import Ballot, Prepare, PrepareResponse


def make_protocol(**kwargs):
    defaults = dict(num_nodes=3, require_init=False)
    defaults.update(kwargs)
    return OnePaxosProtocol(**defaults)


class TestEnvelope:
    def test_suspect_emits_wrapped_prepares(self):
        protocol = make_protocol(fault_suspects=(2,))
        state = protocol.initial_state(2)
        result = protocol.handle_action(state, Action(node=2, name="suspect"))
        assert len(result.sends) == 3
        for message in result.sends:
            assert isinstance(message.payload, Util)
            assert isinstance(message.payload.inner, Prepare)
        # the inner proposer slot exists at utility index 0
        assert result.state.utility.proposer(0) is not None
        assert result.state.utility.proposer(0).value == leader_entry(2)

    def test_wrapped_message_delegates_to_inner_paxos(self):
        protocol = make_protocol()
        state = protocol.initial_state(1)
        prepare = Util(inner=Prepare(index=0, ballot=Ballot(1, 2)))
        result = protocol.handle_message(
            state, Message(dest=1, src=2, payload=prepare)
        )
        # the inner acceptor promised; the response is wrapped again
        assert result.state.utility.acceptor(0).promised == Ballot(1, 2)
        (response,) = result.sends
        assert isinstance(response.payload, Util)
        assert isinstance(response.payload.inner, PrepareResponse)
        assert response.dest == 2

    def test_irrelevant_wrapped_message_is_noop(self):
        protocol = make_protocol()
        state = protocol.initial_state(1)
        stale = Util(
            inner=PrepareResponse(
                index=0, ballot=Ballot(9, 9), accepted_ballot=None, accepted_value=None
            )
        )
        result = protocol.handle_message(
            state, Message(dest=1, src=0, payload=stale)
        )
        assert result.is_noop(state)

    def test_unknown_payload_is_noop(self):
        protocol = make_protocol()
        state = protocol.initial_state(0)
        result = protocol.handle_message(
            state, Message(dest=0, src=1, payload="garbage")
        )
        assert result.is_noop(state)


class TestConfigurationViews:
    def test_next_utility_index_advances_past_chosen(self):
        from repro.protocols.onepaxos.scenarios import (
            post_leaderchange_state,
            scenario_protocol,
        )

        protocol = scenario_protocol(buggy=False)
        snapshot = post_leaderchange_state(protocol)
        assert snapshot.get(2).next_utility_index() == 1  # entry 0 chosen
        assert snapshot.get(0).next_utility_index() == 0  # saw nothing

    def test_suspect_proposal_respects_existing_entries(self):
        from repro.protocols.onepaxos.scenarios import (
            post_leaderchange_state,
            scenario_protocol,
        )
        from dataclasses import replace

        protocol = make_protocol(fault_suspects=(1,))
        base = scenario_protocol(buggy=False)
        snapshot = post_leaderchange_state(base)
        # node 1 knows leader=2 was chosen at utility index 0; arming its
        # fault detector must target index 1, not overwrite index 0
        armed = replace(snapshot.get(1), suspect_armed=True)
        result = protocol.handle_action(armed, Action(node=1, name="suspect"))
        assert result.state.utility.proposer(1) is not None
        assert result.state.utility.proposer(0) is None
