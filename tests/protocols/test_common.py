"""Tests for shared protocol helpers (tuple maps, quorums)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.common import (
    first_or_none,
    majority_of,
    tm_contains,
    tm_get,
    tm_keys,
    tm_set,
)


class TestTupleMap:
    def test_get_default(self):
        assert tm_get((), 1) is None
        assert tm_get((), 1, "d") == "d"
        assert tm_get(((1, "a"),), 1) == "a"

    def test_set_inserts_sorted(self):
        entries = tm_set((), 2, "b")
        entries = tm_set(entries, 1, "a")
        assert entries == ((1, "a"), (2, "b"))

    def test_set_replaces(self):
        entries = tm_set(((1, "a"),), 1, "z")
        assert entries == ((1, "z"),)

    def test_contains_and_keys(self):
        entries = ((1, "a"), (3, "c"))
        assert tm_contains(entries, 3)
        assert not tm_contains(entries, 2)
        assert tm_keys(entries) == (1, 3)

    @given(st.dictionaries(st.integers(), st.text(max_size=5), max_size=8))
    def test_tuple_map_models_dict(self, mapping):
        entries = ()
        for key, value in mapping.items():
            entries = tm_set(entries, key, value)
        assert dict(entries) == mapping
        assert tm_keys(entries) == tuple(sorted(mapping))
        for key, value in mapping.items():
            assert tm_get(entries, key) == value

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=5), st.integers()),
            max_size=12,
        )
    )
    def test_last_write_wins(self, writes):
        entries = ()
        expected = {}
        for key, value in writes:
            entries = tm_set(entries, key, value)
            expected[key] = value
        assert dict(entries) == expected


class TestMajority:
    @pytest.mark.parametrize(
        "count,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4)]
    )
    def test_majority(self, count, expected):
        assert majority_of(count) == expected

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            majority_of(0)

    @given(st.integers(min_value=1, max_value=100))
    def test_two_majorities_intersect(self, count):
        # the quorum-intersection property Paxos relies on
        quorum = majority_of(count)
        assert 2 * quorum > count


def test_first_or_none():
    assert first_or_none(()) is None
    assert first_or_none((1, 2)) == 1
