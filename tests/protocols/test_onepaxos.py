"""Unit and scenario tests for 1Paxos and PaxosUtility."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.global_checker import (
    GlobalModelChecker,
    apply_event,
    enumerate_events,
)
from repro.model.multiset import FrozenMultiset
from repro.model.protocol import ProtocolConfigError
from repro.model.system_state import GlobalState
from repro.model.types import Action, Message
from repro.protocols.onepaxos import (
    Learn1,
    OnePaxosAgreement,
    OnePaxosProtocol,
    Propose1,
    SingleActiveRoles,
    Util,
    acceptor_entry,
    leader_entry,
    parse_entry,
)
from repro.protocols.onepaxos.scenarios import (
    post_leaderchange_state,
    scenario_protocol,
)


def deliver(protocol, state, src, payload):
    return protocol.handle_message(
        state, Message(dest=state.node, src=src, payload=payload)
    )


class TestEntries:
    def test_round_trip(self):
        assert parse_entry(leader_entry(2)) == ("leader", 2)
        assert parse_entry(acceptor_entry(1)) == ("acceptor", 1)

    def test_garbage_is_unknown(self):
        assert parse_entry("leader=xx")[0] == "unknown"
        assert parse_entry("banana")[0] == "unknown"


class TestInitialization:
    def test_needs_three_nodes(self):
        with pytest.raises(ProtocolConfigError):
            OnePaxosProtocol(num_nodes=2)

    def test_correct_init_separates_roles(self):
        protocol = OnePaxosProtocol(num_nodes=3, require_init=False)
        state = protocol.initial_state(0)
        assert state.cached_leader == 0
        assert state.cached_acceptor == 1  # *(++members.begin())

    def test_buggy_init_collapses_roles(self):
        protocol = OnePaxosProtocol(num_nodes=3, buggy_init=True, require_init=False)
        state = protocol.initial_state(0)
        # acceptor = *(members.begin()++): the first member, i.e. the leader.
        assert state.cached_acceptor == state.cached_leader == 0

    def test_believed_leader_defaults_to_first_member(self):
        protocol = OnePaxosProtocol(num_nodes=3, require_init=False)
        for node in protocol.node_ids():
            assert protocol.initial_state(node).believed_leader() == 0


class TestDataPlane:
    def test_only_believed_leader_proposes(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, proposals=((1, 0, "v"),), require_init=False
        )
        state = protocol.initial_state(1)  # has pending but is not leader
        assert not protocol.enabled_actions(state)

    def test_leader_proposes_to_cached_acceptor(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v"),), require_init=False
        )
        state = protocol.initial_state(0)
        result = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v"))
        )
        (send,) = result.sends
        assert send.dest == 1  # the true initial acceptor
        assert isinstance(send.payload, Propose1)

    def test_buggy_leader_proposes_to_itself(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, proposals=((0, 0, "v"),), buggy_init=True, require_init=False
        )
        state = protocol.initial_state(0)
        result = protocol.handle_action(
            state, Action(node=0, name="propose", payload=(0, "v"))
        )
        (send,) = result.sends
        assert send.dest == 0  # loopback: the §5.6 symptom

    def test_acceptor_first_accept_broadcasts_learn(self):
        protocol = OnePaxosProtocol(num_nodes=3, require_init=False)
        state = protocol.initial_state(1)
        result = deliver(protocol, state, 0, Propose1(index=0, value="v"))
        assert result.state.accepted_value(0) == "v"
        assert len(result.sends) == 3
        assert all(isinstance(m.payload, Learn1) for m in result.sends)

    def test_acceptor_reproposal_reannounces_existing_choice(self):
        protocol = OnePaxosProtocol(num_nodes=3, require_init=False)
        state = protocol.initial_state(1)
        state = deliver(protocol, state, 0, Propose1(index=0, value="v")).state
        result = deliver(protocol, state, 2, Propose1(index=0, value="other"))
        assert result.state == state
        assert all(m.payload.value == "v" for m in result.sends)

    def test_learner_takes_first_learn(self):
        protocol = OnePaxosProtocol(num_nodes=3, require_init=False)
        state = protocol.initial_state(2)
        state = deliver(protocol, state, 1, Learn1(index=0, value="v")).state
        assert state.chosen_value(0) == "v"
        assert deliver(
            protocol, state, 1, Learn1(index=0, value="w")
        ).is_noop(state)


class TestControlPlane:
    def test_suspect_disabled_for_believed_leader(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, fault_suspects=(0,), require_init=False
        )
        state = protocol.initial_state(0)  # node 0 believes it leads
        assert not protocol.enabled_actions(state)

    def test_suspect_proposes_leaderchange_through_utility(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, fault_suspects=(2,), require_init=False
        )
        state = protocol.initial_state(2)
        (action,) = protocol.enabled_actions(state)
        assert action.name == "suspect"
        result = protocol.handle_action(state, action)
        assert not result.state.suspect_armed
        assert result.sends
        assert all(isinstance(m.payload, Util) for m in result.sends)

    def test_full_leaderchange_round_converges(self):
        protocol = OnePaxosProtocol(
            num_nodes=3,
            proposals=((2, 0, "v2"),),
            fault_suspects=(2,),
            require_init=False,
        )
        state = GlobalState(protocol.initial_system_state(), FrozenMultiset())
        for _ in range(200):
            events = enumerate_events(protocol, state)
            successor = None
            for event in events:
                successor = apply_event(protocol, state, event)
                if successor is not None:
                    break
            if successor is None:
                break
            state = successor
        for node in protocol.node_ids():
            node_state = state.system.get(node)
            assert node_state.believed_leader() == 2
            assert node_state.chosen_value(0) == "v2"

    def test_utility_view_reads_entries_in_index_order(self):
        protocol = OnePaxosProtocol(num_nodes=3, require_init=False)
        state = protocol.initial_state(0)
        # Fabricate two chosen utility entries: leader=2 then leader=1.
        from repro.protocols.paxos.messages import Ballot
        from repro.protocols.paxos.state import LearnerSlot

        utility = state.utility
        for index, entry in ((0, leader_entry(2)), (1, leader_entry(1))):
            ballot = Ballot(1, 2)
            utility = utility.with_learner(
                index,
                LearnerSlot(
                    learns=frozenset({(0, ballot, entry), (1, ballot, entry)}),
                    chosen=entry,
                ),
            )
        from dataclasses import replace

        state = replace(state, utility=utility)
        assert state.believed_leader() == 1  # the later entry wins


class TestScenario56:
    def test_bug_found_from_snapshot(self):
        protocol = scenario_protocol(buggy=True)
        result = LocalModelChecker(
            protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
        ).run(post_leaderchange_state(protocol))
        assert result.found_bug
        assert "v0" in result.first_bug().description
        assert "v2" in result.first_bug().description

    def test_correct_build_is_clean(self):
        protocol = scenario_protocol(buggy=False)
        result = LocalModelChecker(
            protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
        ).run(post_leaderchange_state(protocol))
        assert result.completed and not result.found_bug

    def test_global_checker_agrees(self):
        buggy = scenario_protocol(buggy=True)
        result = GlobalModelChecker(buggy, OnePaxosAgreement(0)).run(
            post_leaderchange_state(buggy)
        )
        assert result.found_bug
        correct = scenario_protocol(buggy=False)
        result = GlobalModelChecker(correct, OnePaxosAgreement(0)).run(
            post_leaderchange_state(correct)
        )
        assert result.completed and not result.found_bug

    def test_witness_is_the_loopback_story(self):
        protocol = scenario_protocol(buggy=True)
        result = LocalModelChecker(
            protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
        ).run(post_leaderchange_state(protocol))
        described = " ".join(result.first_bug().trace_lines())
        assert "propose@0" in described
        assert "0->0" in described  # the self-addressed Propose1/Learn1

    def test_local_roles_invariant_flags_buggy_init_instantly(self):
        protocol = scenario_protocol(buggy=True)
        result = LocalModelChecker(
            protocol, SingleActiveRoles(true_initial_acceptor=1)
        ).run(post_leaderchange_state(protocol))
        assert result.found_bug
