"""Unit tests for chain, echo, two-phase commit and randtree protocols."""

import pytest

from repro.model.protocol import ProtocolConfigError
from repro.model.system_state import SystemState
from repro.model.types import Action, Message
from repro.protocols.chain import ChainOrder, ChainProtocol, Token
from repro.protocols.echo import EchoProtocol, Ping, Pong, PongsImplyPing
from repro.protocols.randtree import (
    ChildrenSiblingsDisjoint,
    JoinRequest,
    RandTreeProtocol,
    SiblingMixupRandTree,
    SiblingNotice,
    Welcome,
)
from repro.protocols.twophase import (
    Atomicity,
    CommitValidity,
    Decision,
    EagerCommitCoordinator,
    TwoPhaseCommit,
    Vote,
    VoteRequest,
)


def deliver(protocol, state, src, payload, dest=None):
    return protocol.handle_message(
        state,
        Message(dest=dest if dest is not None else state.node, src=src, payload=payload),
    )


class TestChain:
    def test_config_validation(self):
        with pytest.raises(ProtocolConfigError):
            ChainProtocol(1)

    def test_start_forwards_with_hop_count(self):
        protocol = ChainProtocol(3)
        result = protocol.handle_action(
            protocol.initial_state(0), Action(node=0, name="start")
        )
        assert result.state.seen
        (send,) = result.sends
        assert send.dest == 1 and send.payload == Token(hops=1)

    def test_middle_node_increments_hops(self):
        protocol = ChainProtocol(3)
        result = deliver(protocol, protocol.initial_state(1), 0, Token(hops=1))
        assert result.state.hops_when_seen == 1
        (send,) = result.sends
        assert send.payload == Token(hops=2)

    def test_last_node_absorbs(self):
        protocol = ChainProtocol(3)
        result = deliver(protocol, protocol.initial_state(2), 1, Token(hops=2))
        assert result.state.seen and not result.sends

    def test_seen_node_ignores_token(self):
        protocol = ChainProtocol(3)
        state = deliver(protocol, protocol.initial_state(1), 0, Token(hops=1)).state
        assert deliver(protocol, state, 0, Token(hops=5)).is_noop(state)

    def test_order_invariant(self):
        protocol = ChainProtocol(3)
        seen = protocol.initial_state(1)
        seen = deliver(protocol, seen, 0, Token(hops=1)).state
        good = SystemState(
            {0: protocol.initial_state(0), 1: protocol.initial_state(1), 2: protocol.initial_state(2)}
        )
        assert ChainOrder().check(good)
        gap = SystemState(
            {0: protocol.initial_state(0), 1: seen, 2: protocol.initial_state(2)}
        )
        assert not ChainOrder().check(gap)
        assert "gap" in ChainOrder().describe_violation(gap)


class TestEcho:
    def test_initiator_pings_once(self):
        protocol = EchoProtocol(3)
        state = protocol.initial_state(0)
        (action,) = protocol.enabled_actions(state)
        result = protocol.handle_action(state, action)
        assert result.state.pinged
        assert len(result.sends) == 3
        assert not protocol.enabled_actions(result.state)

    def test_pong_broadcast_on_first_ping(self):
        protocol = EchoProtocol(3)
        result = deliver(protocol, protocol.initial_state(1), 0, Ping())
        assert result.state.ponged
        assert len(result.sends) == 3
        assert all(m.payload == Pong(origin=1) for m in result.sends)

    def test_second_ping_ignored(self):
        protocol = EchoProtocol(3)
        state = deliver(protocol, protocol.initial_state(1), 0, Ping()).state
        assert deliver(protocol, state, 0, Ping()).is_noop(state)

    def test_pongs_accumulate_distinct_origins(self):
        protocol = EchoProtocol(3)
        state = protocol.initial_state(2)
        state = deliver(protocol, state, 0, Pong(origin=0)).state
        state = deliver(protocol, state, 1, Pong(origin=1)).state
        assert state.pongs_seen == frozenset({0, 1})
        assert deliver(protocol, state, 0, Pong(origin=0)).is_noop(state)

    def test_invariant_rejects_pong_before_ping(self):
        protocol = EchoProtocol(3)
        ponged = deliver(protocol, protocol.initial_state(1), 0, Ping()).state
        bad = SystemState(
            {0: protocol.initial_state(0), 1: ponged, 2: protocol.initial_state(2)}
        )
        assert not PongsImplyPing().check(bad)


class TestTwoPhase:
    def _coordinator_with_votes(self, protocol, votes):
        state = protocol.handle_action(
            protocol.initial_state(0), Action(node=0, name="begin")
        ).state
        result = None
        for voter, yes in votes:
            result = deliver(protocol, state, voter, Vote(voter=voter, yes=yes))
            state = result.state
        return state, result

    def test_begin_broadcasts_vote_requests(self):
        protocol = TwoPhaseCommit(3)
        result = protocol.handle_action(
            protocol.initial_state(0), Action(node=0, name="begin")
        )
        assert len(result.sends) == 3
        assert all(isinstance(m.payload, VoteRequest) for m in result.sends)

    def test_participants_vote_their_script(self):
        protocol = TwoPhaseCommit(3, no_voters=(2,))
        yes = deliver(protocol, protocol.initial_state(1), 0, VoteRequest())
        no = deliver(protocol, protocol.initial_state(2), 0, VoteRequest())
        assert yes.sends[0].payload.yes is True
        assert no.sends[0].payload.yes is False
        assert yes.state.my_vote is True
        assert no.state.my_vote is False

    def test_unanimous_yes_commits(self):
        protocol = TwoPhaseCommit(3)
        state, result = self._coordinator_with_votes(
            protocol, [(0, True), (1, True), (2, True)]
        )
        assert state.decided is True
        assert all(m.payload == Decision(commit=True) for m in result.sends)

    def test_any_no_aborts(self):
        protocol = TwoPhaseCommit(3, no_voters=(2,))
        state, _ = self._coordinator_with_votes(protocol, [(0, True), (2, False)])
        assert state.decided is False

    def test_eager_coordinator_commits_on_first_yes(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        state, _ = self._coordinator_with_votes(protocol, [(1, True)])
        assert state.decided is True  # the bug

    def test_decision_adopted_once(self):
        protocol = TwoPhaseCommit(3)
        state = deliver(
            protocol, protocol.initial_state(1), 0, Decision(commit=True)
        ).state
        assert state.decided is True
        again = deliver(protocol, state, 0, Decision(commit=False))
        assert again.is_noop(state)

    def test_atomicity_invariant(self):
        protocol = TwoPhaseCommit(3)
        committed = deliver(
            protocol, protocol.initial_state(1), 0, Decision(commit=True)
        ).state
        aborted = deliver(
            protocol, protocol.initial_state(2), 0, Decision(commit=False)
        ).state
        bad = SystemState({0: protocol.initial_state(0), 1: committed, 2: aborted})
        assert not Atomicity().check(bad)
        assert Atomicity().local_projection(1, committed) is True

    def test_commit_validity_projections(self):
        inv = CommitValidity()
        protocol = TwoPhaseCommit(3, no_voters=(1,))
        voted_no = deliver(protocol, protocol.initial_state(1), 0, VoteRequest()).state
        committed = deliver(
            protocol, protocol.initial_state(2), 0, Decision(commit=True)
        ).state
        assert inv.local_projection(1, voted_no) == "voted-no"
        assert inv.local_projection(2, committed) == "committed"
        both = deliver(protocol, voted_no, 0, Decision(commit=True)).state
        assert inv.local_projection(1, both) == "committed+voted-no"
        assert inv.projections_conflict({1: "committed+voted-no"})
        assert inv.projections_conflict({1: "voted-no", 2: "committed"})
        assert not inv.projections_conflict({1: "voted-no", 2: "voted-no"})


class TestRandTree:
    def test_join_targets_root(self):
        protocol = RandTreeProtocol(4)
        result = protocol.handle_action(
            protocol.initial_state(2), Action(node=2, name="join")
        )
        (send,) = result.sends
        assert send.dest == 0
        assert send.payload == JoinRequest(joiner=2)

    def test_root_adopts_and_notifies(self):
        protocol = RandTreeProtocol(4)
        root = protocol.initial_state(0)
        first = deliver(protocol, root, 1, JoinRequest(joiner=1))
        assert first.state.children == frozenset({1})
        second = deliver(protocol, first.state, 2, JoinRequest(joiner=2))
        assert second.state.children == frozenset({1, 2})
        notices = [m for m in second.sends if isinstance(m.payload, SiblingNotice)]
        welcomes = [m for m in second.sends if isinstance(m.payload, Welcome)]
        assert len(notices) == 1 and notices[0].dest == 1
        assert len(welcomes) == 1 and welcomes[0].payload.siblings == frozenset({1})

    def test_full_node_forwards_to_first_child(self):
        protocol = RandTreeProtocol(5, fanout=2)
        root = protocol.initial_state(0)
        root = deliver(protocol, root, 1, JoinRequest(joiner=1)).state
        root = deliver(protocol, root, 2, JoinRequest(joiner=2)).state
        result = deliver(protocol, root, 3, JoinRequest(joiner=3))
        assert result.state == root  # no adoption
        (forward,) = result.sends
        assert forward.dest == 1
        assert forward.payload == JoinRequest(joiner=3)

    def test_welcome_sets_membership(self):
        protocol = RandTreeProtocol(4)
        state = deliver(
            protocol,
            protocol.initial_state(2),
            0,
            Welcome(parent=0, siblings=frozenset({1})),
        ).state
        assert state.joined and state.parent == 0
        assert state.siblings == frozenset({1})

    def test_buggy_adopt_violates_disjointness(self):
        protocol = SiblingMixupRandTree(4)
        inv = ChildrenSiblingsDisjoint()
        root = protocol.initial_state(0)
        root = deliver(protocol, root, 1, JoinRequest(joiner=1)).state
        assert not inv.check_local(0, root)

    def test_correct_adopt_keeps_disjointness(self):
        protocol = RandTreeProtocol(4)
        inv = ChildrenSiblingsDisjoint()
        root = protocol.initial_state(0)
        root = deliver(protocol, root, 1, JoinRequest(joiner=1)).state
        root = deliver(protocol, root, 2, JoinRequest(joiner=2)).state
        assert inv.check_local(0, root)
