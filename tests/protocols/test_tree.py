"""Tests for the §2 tree primer protocol."""

import pytest

from repro.explore.global_checker import GlobalModelChecker, apply_event, enumerate_events
from repro.core.checker import LocalModelChecker
from repro.invariants.base import PredicateInvariant
from repro.model.multiset import FrozenMultiset
from repro.model.protocol import ProtocolConfigError
from repro.model.system_state import GlobalState
from repro.model.types import Action, Message
from repro.protocols.tree import (
    DEFAULT_CHILDREN,
    Payload,
    ReceivedImpliesSent,
    TreeProtocol,
)

TRUE_INV = PredicateInvariant("true", lambda s: True)


class TestProtocolMechanics:
    def test_default_topology_has_five_nodes(self):
        assert TreeProtocol().node_ids() == (0, 1, 2, 3, 4)

    def test_origin_equal_target_rejected(self):
        with pytest.raises(ProtocolConfigError):
            TreeProtocol(origin=0, target=0)

    def test_send_action_only_at_origin(self):
        protocol = TreeProtocol()
        assert protocol.enabled_actions(protocol.initial_state(0))
        for node in (1, 2, 3, 4):
            assert not protocol.enabled_actions(protocol.initial_state(node))

    def test_send_produces_children_messages(self):
        protocol = TreeProtocol()
        result = protocol.handle_action(
            protocol.initial_state(0), Action(node=0, name="send")
        )
        assert result.state.sent
        assert {m.dest for m in result.sends} == set(DEFAULT_CHILDREN[0])

    def test_interior_node_forwards(self):
        protocol = TreeProtocol()
        message = Message(dest=2, src=0, payload=Payload(final_target=4))
        result = protocol.handle_message(protocol.initial_state(2), message)
        assert {m.dest for m in result.sends} == set(DEFAULT_CHILDREN[2])
        assert result.state.forwarded

    def test_interior_node_forwards_once(self):
        protocol = TreeProtocol()
        message = Message(dest=2, src=0, payload=Payload(final_target=4))
        once = protocol.handle_message(protocol.initial_state(2), message)
        twice = protocol.handle_message(once.state, message)
        assert twice.is_noop(once.state)

    def test_target_sets_received_and_stops(self):
        protocol = TreeProtocol()
        message = Message(dest=4, src=2, payload=Payload(final_target=4))
        result = protocol.handle_message(protocol.initial_state(4), message)
        assert result.state.received
        assert not result.sends

    def test_stateless_mode_interior_nodes_never_change(self):
        protocol = TreeProtocol(track_forwarding=False)
        message = Message(dest=2, src=0, payload=Payload(final_target=4))
        result = protocol.handle_message(protocol.initial_state(2), message)
        assert result.state == protocol.initial_state(2)
        assert result.sends

    def test_render_matches_paper_notation(self):
        protocol = TreeProtocol()
        system = protocol.initial_system_state()
        assert protocol.render(system) == "-----"

    def test_unknown_payload_ignored(self):
        protocol = TreeProtocol()
        message = Message(dest=1, src=0, payload="garbage")
        assert protocol.handle_message(
            protocol.initial_state(1), message
        ).is_noop(protocol.initial_state(1))


class TestPrimerNumbers:
    """The quantitative story of §2 (Figs. 3-4)."""

    def test_global_state_count_stateless(self):
        protocol = TreeProtocol(track_forwarding=False)
        result = GlobalModelChecker(protocol, TRUE_INV).run()
        # The paper's Fig. 3 draws 12 boxes including duplicates; the
        # deduplicated reachable count for this topology is 11.
        assert result.stats.global_states == 11

    def test_lmc_system_states_far_fewer(self):
        protocol = TreeProtocol(track_forwarding=False)
        local = LocalModelChecker(protocol, ReceivedImpliesSent()).run()
        glob = GlobalModelChecker(protocol, ReceivedImpliesSent()).run()
        # Fig. 4: "in total, only 4 system states are created in contrast
        # with the 12 global states" — ours: 3 created + the seed checked.
        assert local.stats.system_states_created == 3
        assert local.stats.system_states_created < glob.stats.global_states

    def test_invalid_combination_rejected(self):
        protocol = TreeProtocol(track_forwarding=False)
        local = LocalModelChecker(protocol, ReceivedImpliesSent()).run()
        # "----r" is created, violates, and fails soundness verification.
        assert local.stats.preliminary_violations == 1
        assert not local.found_bug

    def test_full_run_reaches_final_state(self):
        protocol = TreeProtocol()
        state = GlobalState(protocol.initial_system_state(), FrozenMultiset())
        while True:
            events = enumerate_events(protocol, state)
            if not events:
                break
            state = apply_event(protocol, state, events[0])
        assert state.system.get(0).sent
        assert state.system.get(4).received
