"""Tests for 1Paxos retransmission and the online test driver."""

from dataclasses import replace

import pytest

from repro.model.types import Action, Message
from repro.online.injector import OnePaxosTestDriver
from repro.model.system_state import SystemState
from repro.protocols.onepaxos import (
    Learn1,
    OnePaxosAgreementAll,
    OnePaxosProtocol,
    Propose1,
)


def make_protocol(**kwargs):
    defaults = dict(
        num_nodes=3,
        proposals=((0, 0, "v0"),),
        require_init=False,
    )
    defaults.update(kwargs)
    return OnePaxosProtocol(**defaults)


class TestDataPlaneRetransmit:
    def test_disabled_by_default(self):
        protocol = make_protocol()
        state = protocol.handle_action(
            protocol.initial_state(0),
            Action(node=0, name="propose", payload=(0, "v0")),
        ).state
        assert state.proposed1 == ()
        assert all(a.name != "retry1" for a in protocol.enabled_actions(state))

    def test_proposal_recorded_and_retry_enabled(self):
        protocol = make_protocol(retransmit=True)
        state = protocol.handle_action(
            protocol.initial_state(0),
            Action(node=0, name="propose", payload=(0, "v0")),
        ).state
        assert dict(state.proposed1) == {0: "v0"}
        retries = [a for a in protocol.enabled_actions(state) if a.name == "retry1"]
        assert len(retries) == 1

    def test_retry_resends_without_state_change(self):
        protocol = make_protocol(retransmit=True)
        state = protocol.handle_action(
            protocol.initial_state(0),
            Action(node=0, name="propose", payload=(0, "v0")),
        ).state
        result = protocol.handle_action(
            state, Action(node=0, name="retry1", payload=0)
        )
        assert result.state == state
        (send,) = result.sends
        assert isinstance(send.payload, Propose1)
        assert send.dest == 1  # the true initial acceptor (correct build)

    def test_learn_retires_outstanding_proposal(self):
        protocol = make_protocol(retransmit=True)
        state = protocol.handle_action(
            protocol.initial_state(0),
            Action(node=0, name="propose", payload=(0, "v0")),
        ).state
        learned = protocol.handle_message(
            state, Message(dest=0, src=1, payload=Learn1(index=0, value="v0"))
        ).state
        assert learned.proposed1 == ()
        assert all(
            a.name != "retry1" for a in protocol.enabled_actions(learned)
        )

    def test_utility_retransmit_can_differ_from_data_plane(self):
        split = make_protocol(retransmit=True, utility_retransmit=False)
        assert split.retransmit and not split.utility_retransmit
        assert not split.utility.retransmit
        unified = make_protocol(retransmit=True)
        assert unified.utility.retransmit


class TestOnePaxosTestDriver:
    def _snapshot_with_split_brain(self):
        """Nodes 1,2 follow leader 2; node 0 still believes it leads."""
        from repro.protocols.onepaxos.scenarios import (
            post_leaderchange_state,
            scenario_protocol,
        )

        protocol = scenario_protocol(buggy=True)
        return protocol, post_leaderchange_state(protocol)

    def test_drives_half_chosen_index_to_stale_leader(self):
        protocol, snapshot = self._snapshot_with_split_brain()
        # wipe node 0's pending so the driver has to create the proposal
        bare0 = replace(snapshot.get(0), pending=())
        snapshot = SystemState({0: bare0, 1: snapshot.get(1), 2: snapshot.get(2)})
        driven = OnePaxosTestDriver().drive(snapshot)
        # index 0 is chosen at nodes 1,2 but not 0; node 0 believes it leads
        assert driven.get(0).pending
        assert driven.get(0).pending[0][0] == 0

    def test_fresh_index_given_to_every_self_leader(self):
        protocol = OnePaxosProtocol(
            num_nodes=3, proposals=(), require_init=False
        )
        snapshot = protocol.initial_system_state()
        driven = OnePaxosTestDriver().drive(snapshot)
        # only node 0 believes it leads initially
        pendings = {n for n, st in driven.items() if st.pending}
        assert pendings == {0}

    def test_driver_preserves_other_nodes(self):
        protocol, snapshot = self._snapshot_with_split_brain()
        driven = OnePaxosTestDriver().drive(snapshot)
        assert driven.get(1) == snapshot.get(1)


class TestAgreementAll:
    def test_detects_any_index_conflict(self):
        protocol = make_protocol()
        a = protocol.initial_state(0).with_chosen(5, "x")
        b = protocol.initial_state(1).with_chosen(5, "y")
        c = protocol.initial_state(2)
        system = SystemState({0: a, 1: b, 2: c})
        inv = OnePaxosAgreementAll()
        assert not inv.check(system)
        assert "5" in inv.describe_violation(system)
        pa = inv.local_projection(0, a)
        pb = inv.local_projection(1, b)
        assert inv.projections_conflict({0: pa, 1: pb})
        assert inv.local_projection(2, c) is None

    def test_same_values_do_not_conflict(self):
        protocol = make_protocol()
        a = protocol.initial_state(0).with_chosen(5, "x")
        b = protocol.initial_state(1).with_chosen(5, "x")
        inv = OnePaxosAgreementAll()
        assert inv.check(SystemState({0: a, 1: b, 2: protocol.initial_state(2)}))
        assert not inv.projections_conflict(
            {0: inv.local_projection(0, a), 1: inv.local_projection(1, b)}
        )
