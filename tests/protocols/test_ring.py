"""Tests for the ring leader election protocol."""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.global_checker import GlobalModelChecker
from repro.model.protocol import ProtocolConfigError
from repro.model.types import Action, Message
from repro.protocols.ring import (
    AtMostOneLeader,
    ElectionToken,
    GreedyRingElection,
    RingElection,
)


def deliver(protocol, state, src, payload):
    return protocol.handle_message(
        state, Message(dest=state.node, src=src, payload=payload)
    )


class TestMechanics:
    def test_config_validation(self):
        with pytest.raises(ProtocolConfigError):
            RingElection(1)
        with pytest.raises(ProtocolConfigError):
            RingElection(3, initiators=(9,))

    def test_successor_wraps(self):
        ring = RingElection(3)
        assert ring.successor(0) == 1
        assert ring.successor(2) == 0

    def test_elect_sends_own_token_clockwise(self):
        ring = RingElection(4, initiators=(2,))
        result = ring.handle_action(
            ring.initial_state(2), Action(node=2, name="elect")
        )
        (token,) = result.sends
        assert token.dest == 3
        assert token.payload == ElectionToken(uid=2)

    def test_larger_token_forwarded(self):
        ring = RingElection(4)
        result = deliver(ring, ring.initial_state(1), 0, ElectionToken(uid=3))
        (forward,) = result.sends
        assert forward.dest == 2
        assert forward.payload.uid == 3

    def test_smaller_token_swallowed_and_wakes_candidacy(self):
        ring = RingElection(4)
        result = deliver(ring, ring.initial_state(2), 1, ElectionToken(uid=1))
        assert result.state.started
        (own,) = result.sends
        assert own.payload.uid == 2

    def test_own_token_returning_elects(self):
        ring = RingElection(4, initiators=(3,))
        state = ring.handle_action(
            ring.initial_state(3), Action(node=3, name="elect")
        ).state
        result = deliver(ring, state, 2, ElectionToken(uid=3))
        assert result.state.leader
        assert not result.sends

    def test_greedy_variant_elects_on_passing_maximum(self):
        ring = GreedyRingElection(4)
        result = deliver(ring, ring.initial_state(1), 0, ElectionToken(uid=3))
        assert result.state.leader  # the bug: a bystander crowns itself


class TestElectionVerdicts:
    @pytest.mark.parametrize("initiators", [(0,), (2,), (0, 2), (0, 1, 2)])
    def test_correct_ring_has_at_most_one_leader(self, initiators):
        ring = RingElection(3, initiators=initiators)
        invariant = AtMostOneLeader()
        assert not GlobalModelChecker(ring, invariant).run().found_bug
        assert not LocalModelChecker(ring, invariant).run().found_bug

    def test_maximum_wins_on_full_run(self):
        from repro.explore.global_checker import apply_event, enumerate_events
        from repro.model.multiset import FrozenMultiset
        from repro.model.system_state import GlobalState

        ring = RingElection(4, initiators=(0,))
        state = GlobalState(ring.initial_system_state(), FrozenMultiset())
        while True:
            events = enumerate_events(ring, state)
            if not events:
                break
            successor = apply_event(ring, state, events[0])
            if successor is None:
                break
            state = successor
        leaders = [n for n, s in state.system.items() if s.leader]
        assert leaders == [3]

    @pytest.mark.parametrize("nodes", [3, 4])
    def test_greedy_bug_found_by_both_checkers(self, nodes):
        ring = GreedyRingElection(nodes, initiators=(0,))
        invariant = AtMostOneLeader()
        global_result = GlobalModelChecker(ring, invariant).run()
        local_result = LocalModelChecker(
            ring, invariant, config=LMCConfig.optimized()
        ).run()
        assert global_result.found_bug
        assert local_result.found_bug
        assert "multiple ring leaders" in local_result.first_bug().description

    def test_opt_projection_distinguishes_leaders(self):
        invariant = AtMostOneLeader()
        ring = RingElection(3)
        follower = ring.initial_state(1)
        assert invariant.local_projection(1, follower) is None
        from dataclasses import replace

        crowned = replace(follower, leader=True)
        assert invariant.local_projection(1, crowned) == 1
        # two leaders project distinct values => default conflict fires
        assert invariant.projections_conflict({1: 1, 2: 2})
