"""The status surface: `repro runs`/`status`/`coverage` and live cross-process reads."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.obs.registry import RunRegistry

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _run_main(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


def test_check_registers_and_readers_report(tmp_path, capsys):
    root = str(tmp_path / "runs")
    code, out = _run_main(
        capsys,
        ["check", "echo", "--registry-root", root, "--coverage"],
    )
    assert code == 0
    assert "run id" in out

    code, out = _run_main(capsys, ["runs", "--registry-root", root])
    assert code == 0
    assert "echo" in out and "finished" in out

    code, out = _run_main(capsys, ["status", "--registry-root", root])
    assert code == 0
    assert "status        : finished" in out
    assert "depth" in out

    code, out = _run_main(capsys, ["coverage", "--registry-root", root])
    assert code == 0
    assert "Ping" in out and "Pong" in out
    assert "All declared handlers exercised." not in out  # echo declares nothing


def test_no_registry_flag_suppresses_registration(tmp_path, capsys):
    root = str(tmp_path / "runs")
    code, out = _run_main(
        capsys,
        ["check", "echo", "--no-registry", "--registry-root", root],
    )
    assert code == 0
    assert "run id" not in out
    assert RunRegistry(root).run_ids() == []


def test_scenario_registers(tmp_path, capsys):
    root = str(tmp_path / "runs")
    code, _out = _run_main(
        capsys, ["scenario", "s55", "--registry-root", root, "--coverage"]
    )
    assert code == 1  # the buggy scenario finds its bug
    record = RunRegistry(root).latest()
    assert record.meta["command"] == "scenario"
    assert record.meta["workload"] == "s55"
    assert record.result["bugs"] == 1
    assert record.result["status"] == "finished"
    assert record.coverage() is not None


def test_status_of_missing_run_errors(tmp_path, capsys):
    root = str(tmp_path / "empty")
    assert main(["status", "--registry-root", root]) == 2
    assert main(["status", "nope", "--registry-root", root]) == 2
    assert main(["coverage", "--registry-root", root]) == 2
    capsys.readouterr()


def test_coverage_without_recording_errors(tmp_path, capsys):
    root = str(tmp_path / "runs")
    assert main(["check", "echo", "--registry-root", root]) == 0
    capsys.readouterr()
    assert main(["coverage", "--registry-root", root]) == 2
    err = capsys.readouterr().err
    assert "--coverage" in err


def test_paxos_coverage_lists_every_declared_handler(tmp_path, capsys):
    """The CI smoke assertion, in-process: all Paxos handlers exercised."""
    root = str(tmp_path / "runs")
    assert main(["check", "paxos", "--registry-root", root, "--coverage"]) == 0
    capsys.readouterr()
    code, out = _run_main(capsys, ["coverage", "--registry-root", root])
    assert code == 0
    for handler in ("Prepare", "PrepareResponse", "Accept", "Learn", "init", "propose"):
        assert handler in out
    assert "All declared handlers exercised." in out


@pytest.mark.slow
def test_live_status_from_second_process(tmp_path):
    """The acceptance path: watch an in-flight run from another process."""
    root = str(tmp_path / "runs")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    # A deliberately long run: paxos with two proposals explores for many
    # seconds; the wall-clock budget bounds the test either way.
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "check",
            "echo",
            "--nodes",
            "4",
            "--max-seconds",
            "60",
            "--max-depth",
            "60",
            "--metrics-interval",
            "0.05",
            "--registry-root",
            root,
            "--coverage",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    registry = RunRegistry(root)
    try:
        record = None
        deadline = time.time() + 30
        while time.time() < deadline:
            record = registry.latest()
            if (
                record is not None
                and record.heartbeat is not None
                and record.heartbeat.get("round", 0) >= 1
            ):
                break
            time.sleep(0.05)
        assert record is not None and record.heartbeat is not None, (
            "child never heartbeat"
        )
        assert record.status() in ("running", "finished")
        heartbeat = record.heartbeat
        assert heartbeat["pid"] == child.pid
        assert "depth" in heartbeat and "transitions" in heartbeat
        assert "frontier" in heartbeat
        # The depth bound makes the run ETA-estimable once depth grows.
        if record.status() == "running" and heartbeat.get("progress"):
            assert heartbeat["progress"]["max_depth"] == 60
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    # After a SIGKILL, the registry must call the run killed, not running.
    record = registry.latest()
    if record.result is None:
        assert record.status() == "killed"
