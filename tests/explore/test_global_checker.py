"""Tests for the global model checking baseline."""

import pytest

from repro.explore.budget import BudgetClock, SearchBudget
from repro.explore.global_checker import (
    GlobalModelChecker,
    apply_event,
    enumerate_events,
)
from repro.invariants.base import PredicateInvariant
from repro.model.events import DeliveryEvent, InternalEvent
from repro.model.multiset import FrozenMultiset
from repro.model.system_state import GlobalState
from repro.protocols.chain import ChainOrder, ChainProtocol
from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol
from repro.protocols.twophase import (
    Atomicity,
    CommitValidity,
    EagerCommitCoordinator,
    TwoPhaseCommit,
)

TRUE_INV = PredicateInvariant("true", lambda s: True)


def initial_global(protocol):
    return GlobalState(protocol.initial_system_state(), FrozenMultiset())


class TestEventEnumeration:
    def test_initial_tree_has_only_send_action(self):
        protocol = TreeProtocol()
        events = enumerate_events(protocol, initial_global(protocol))
        assert len(events) == 1
        assert isinstance(events[0], InternalEvent)
        assert events[0].action.name == "send"

    def test_delivery_events_enumerated_after_send(self):
        protocol = TreeProtocol()
        state = initial_global(protocol)
        state = apply_event(protocol, state, enumerate_events(protocol, state)[0])
        events = enumerate_events(protocol, state)
        deliveries = [e for e in events if isinstance(e, DeliveryEvent)]
        assert {e.message.dest for e in deliveries} == {1, 2}

    def test_apply_internal_noop_returns_none(self):
        protocol = ChainProtocol(3)
        state = initial_global(protocol)
        # chain start is not a noop; craft one via a protocol whose action
        # handler ignores the action by running "start" twice.
        after = apply_event(
            protocol, state, enumerate_events(protocol, state)[0]
        )
        assert after is not None


class TestExhaustiveSearch:
    @pytest.mark.parametrize("strategy", ["bfs", "dfs"])
    def test_tree_explores_all_strategies_equally(self, strategy):
        protocol = TreeProtocol()
        checker = GlobalModelChecker(
            protocol, TRUE_INV, strategy=strategy, record_series=False
        )
        result = checker.run()
        assert result.completed
        assert not result.found_bug
        assert result.stats.global_states == 11

    def test_iddfs_completes_with_reexploration_overhead(self):
        protocol = TreeProtocol()
        result = GlobalModelChecker(protocol, TRUE_INV, strategy="iddfs").run()
        assert result.completed
        # The series reports distinct states per bound; the cumulative stats
        # count the re-exploration work iterative deepening pays.
        assert result.series.final().get("global_states") == 11
        assert result.stats.global_states > 11

    def test_bfs_and_dfs_visit_same_state_count(self):
        protocol = TwoPhaseCommit(3)
        bfs = GlobalModelChecker(protocol, TRUE_INV, strategy="bfs").run()
        dfs = GlobalModelChecker(
            protocol, TRUE_INV, strategy="dfs", record_series=False
        ).run()
        assert bfs.stats.global_states == dfs.stats.global_states

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            GlobalModelChecker(TreeProtocol(), TRUE_INV, strategy="zigzag")

    def test_series_records_depths(self):
        result = GlobalModelChecker(TreeProtocol(), TRUE_INV).run()
        assert result.series is not None
        assert result.series.depths()[0] == 0
        assert result.series.max_depth() >= 4
        memory = result.series.column("memory_bytes")
        assert all(m > 0 for m in memory)

    def test_invariant_holds_on_valid_runs(self):
        result = GlobalModelChecker(TreeProtocol(), ReceivedImpliesSent()).run()
        assert result.completed
        assert not result.found_bug

    def test_chain_order_never_violated_globally(self):
        result = GlobalModelChecker(ChainProtocol(4), ChainOrder()).run()
        assert result.completed and not result.found_bug


class TestBugFinding:
    def test_eager_commit_bug_found_with_trace(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        result = GlobalModelChecker(protocol, CommitValidity()).run()
        assert result.found_bug
        bug = result.first_bug()
        assert bug.kind == "invariant"
        assert bug.trace, "bug must carry a witness trace"
        assert "committed" in bug.description

    def test_trace_replays_to_violating_state(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        result = GlobalModelChecker(protocol, CommitValidity()).run()
        bug = result.first_bug()
        state = GlobalState(bug.initial_state, FrozenMultiset())
        for event in bug.trace:
            state = apply_event(protocol, state, event)
            assert state is not None
        assert state.system == bug.violating_state

    def test_stop_on_first_bug_false_collects_more(self):
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        eager = GlobalModelChecker(
            protocol, CommitValidity(), stop_on_first_bug=False
        ).run()
        assert len(eager.bugs) >= 1
        assert eager.completed

    def test_atomicity_not_violated_by_eager_bug(self):
        # All nodes adopt the coordinator's single decision, so atomicity
        # holds even in the buggy build: only commit-validity is broken.
        protocol = EagerCommitCoordinator(3, no_voters=(2,))
        result = GlobalModelChecker(protocol, Atomicity()).run()
        assert result.completed and not result.found_bug


class TestBudgets:
    def test_depth_bound_truncates(self):
        protocol = TreeProtocol()
        bounded = GlobalModelChecker(
            protocol, TRUE_INV, budget=SearchBudget(max_depth=2)
        ).run()
        full = GlobalModelChecker(protocol, TRUE_INV).run()
        assert bounded.stats.global_states < full.stats.global_states
        assert bounded.stop_reason == "depth bound reached"

    def test_transition_budget_stops_search(self):
        protocol = TwoPhaseCommit(3)
        result = GlobalModelChecker(
            protocol, TRUE_INV, budget=SearchBudget(max_transitions=10)
        ).run()
        assert not result.completed
        assert "transition budget" in result.stop_reason

    def test_state_budget_stops_search(self):
        protocol = TwoPhaseCommit(3)
        result = GlobalModelChecker(
            protocol, TRUE_INV, budget=SearchBudget(max_states=5)
        ).run()
        assert not result.completed

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SearchBudget(max_depth=-1)
        with pytest.raises(ValueError):
            SearchBudget(max_seconds=-0.1)

    def test_budget_clock_reports(self):
        clock = BudgetClock(SearchBudget(max_seconds=1000))
        assert not clock.out_of_time()
        assert clock.depth_allowed(10)
        assert clock.stop_reason(0, 0) is None
        tight = BudgetClock(SearchBudget(max_seconds=0.0))
        assert tight.out_of_time()


class TestIterativeDeepening:
    def test_iddfs_series_grows_monotonically(self):
        protocol = TreeProtocol()
        result = GlobalModelChecker(protocol, TRUE_INV, strategy="iddfs").run()
        assert result.completed
        states = result.series.column("global_states")
        assert list(states) == sorted(states)
        assert states[-1] == 11
