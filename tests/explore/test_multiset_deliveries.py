"""Global-checker behaviour with duplicate in-flight messages.

The network state is a multiset: the same message value can be in flight
more than once (e.g. a retransmission racing its original).  Delivering
either copy reaches the same successor, so the checker enumerates one
delivery event per *distinct* message but must keep the multiplicities
straight in the state identity.
"""

from dataclasses import dataclass, replace
from typing import Tuple

from repro.explore.global_checker import (
    GlobalModelChecker,
    apply_event,
    enumerate_events,
)
from repro.invariants.base import PredicateInvariant
from repro.model.multiset import FrozenMultiset
from repro.model.protocol import Protocol
from repro.model.system_state import GlobalState
from repro.model.types import Action, HandlerResult, Message, NodeId

TRUE = PredicateInvariant("true", lambda s: True)


@dataclass(frozen=True)
class DoubleSenderState:
    node: NodeId
    fired: bool = False
    hits: int = 0


class DoubleSender(Protocol):
    """Node 0 sends the SAME message twice; node 1 counts deliveries."""

    name = "double-sender"

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0, 1)

    def initial_state(self, node):
        return DoubleSenderState(node=node)

    def enabled_actions(self, state):
        if state.node == 0 and not state.fired:
            return (Action(node=0, name="fire"),)
        return ()

    def handle_action(self, state, action):
        if action.name != "fire" or state.fired:
            return HandlerResult(state)
        message = Message(dest=1, src=0, payload="dup")
        return HandlerResult(replace(state, fired=True), (message, message))

    def handle_message(self, state, message):
        if state.node != 1 or message.payload != "dup":
            return HandlerResult(state)
        return HandlerResult(replace(state, hits=state.hits + 1))


def test_duplicate_sends_both_in_flight():
    protocol = DoubleSender()
    state = GlobalState(protocol.initial_system_state(), FrozenMultiset())
    (fire,) = enumerate_events(protocol, state)
    state = apply_event(protocol, state, fire)
    assert len(state.network) == 2
    assert len(state.network.distinct()) == 1


def test_one_delivery_event_per_distinct_message():
    protocol = DoubleSender()
    state = GlobalState(protocol.initial_system_state(), FrozenMultiset())
    state = apply_event(protocol, state, enumerate_events(protocol, state)[0])
    events = enumerate_events(protocol, state)
    assert len(events) == 1  # one event despite two copies


def test_multiplicity_distinguishes_states():
    protocol = DoubleSender()
    state = GlobalState(protocol.initial_system_state(), FrozenMultiset())
    state = apply_event(protocol, state, enumerate_events(protocol, state)[0])
    after_one = apply_event(protocol, state, enumerate_events(protocol, state)[0])
    assert hash(after_one) != hash(state)
    assert after_one.network.count(Message(dest=1, src=0, payload="dup")) == 1


def test_exhaustive_search_counts_both_deliveries():
    protocol = DoubleSender()
    result = GlobalModelChecker(protocol, TRUE).run()
    assert result.completed
    # states: initial, sent(2 copies), 1 hit (1 copy), 2 hits (0 copies)
    assert result.stats.global_states == 4
