"""Tests for the DOT exports."""

from repro.core.checker import LocalModelChecker, _ExplorationPass
from repro.core.config import LMCConfig
from repro.explore.budget import BudgetClock, SearchBudget
from repro.invariants.base import PredicateInvariant
from repro.protocols.paxos import PaxosAgreement
from repro.protocols.paxos.scenarios import partial_choice_state, scenario_protocol
from repro.protocols.tree import TreeProtocol
from repro.viz import predecessor_dag, witness_sequence_diagram

TRUE = PredicateInvariant("true", lambda s: True)


def explored_space(protocol, initial=None):
    checker = LocalModelChecker(protocol, TRUE, config=LMCConfig())
    pass_run = _ExplorationPass(
        checker,
        initial if initial is not None else protocol.initial_system_state(),
        BudgetClock(SearchBudget.unbounded()),
        None,
    )
    pass_run.execute()
    return pass_run.space


class TestPredecessorDag:
    def test_renders_all_nodes(self):
        space = explored_space(TreeProtocol())
        dot = predecessor_dag(space)
        assert dot.startswith("digraph predecessors")
        assert dot.endswith("}")
        for node in TreeProtocol().node_ids():
            assert f"cluster_{node}" in dot

    def test_single_node_view(self):
        space = explored_space(TreeProtocol())
        dot = predecessor_dag(space, node=0)
        assert "cluster_0" in dot
        assert "cluster_1" not in dot

    def test_seed_states_double_boxed_and_edges_labelled(self):
        space = explored_space(TreeProtocol())
        dot = predecessor_dag(space)
        assert "peripheries=2" in dot
        assert "->" in dot
        assert "deliver" in dot or "run" in dot

    def test_custom_state_description(self):
        space = explored_space(TreeProtocol())
        dot = predecessor_dag(space, describe_state=lambda s: s.glyph())
        assert '"0: -"' in dot or ': -"' in dot

    def test_quotes_escaped(self):
        space = explored_space(TreeProtocol())
        dot = predecessor_dag(space, describe_state=lambda s: 'with "quotes"')
        assert '\\"quotes\\"' in dot


class TestWitnessDiagram:
    def test_renders_confirmed_paxos_bug(self):
        protocol = scenario_protocol(buggy=True)
        result = LocalModelChecker(
            protocol, PaxosAgreement(0), config=LMCConfig.optimized()
        ).run(partial_choice_state())
        dot = witness_sequence_diagram(result.first_bug())
        assert dot.startswith("digraph witness")
        assert "process 0" in dot and "process 1" in dot
        assert "recv PrepareResponse" in dot
        assert "color=blue" in dot  # at least one message edge
        # every trace event appears exactly once as a graph node
        for index in range(1, len(result.first_bug().trace) + 1):
            assert f"e{index} [" in dot
