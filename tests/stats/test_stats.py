"""Tests for counters, series and reporting."""

import pytest

from repro.stats.counters import ExplorationStats
from repro.stats.reporting import format_depth_series, format_table
from repro.stats.series import DepthSeries


class TestExplorationStats:
    def test_snapshot_contains_all_counters(self):
        stats = ExplorationStats(transitions=5, node_states=2)
        stats.add_phase_time("explore", 1.5)
        snap = stats.snapshot()
        assert snap["transitions"] == 5
        assert snap["node_states"] == 2
        assert snap["phase_explore_s"] == 1.5

    def test_phase_time_accumulates(self):
        stats = ExplorationStats()
        stats.add_phase_time("soundness", 1.0)
        stats.add_phase_time("soundness", 0.5)
        assert stats.phase_seconds["soundness"] == 1.5

    def test_merge_sums_everything(self):
        a = ExplorationStats(transitions=1, preliminary_violations=2)
        a.add_phase_time("explore", 1.0)
        b = ExplorationStats(transitions=10, preliminary_violations=20)
        b.add_phase_time("explore", 2.0)
        b.add_phase_time("soundness", 3.0)
        a.merge(b)
        assert a.transitions == 11
        assert a.preliminary_violations == 22
        assert a.phase_seconds == {"explore": 3.0, "soundness": 3.0}


class TestDepthSeries:
    def test_record_and_query(self):
        series = DepthSeries("X")
        series.record(0, 0.1, {"states": 1})
        series.record(3, 0.5, {"states": 10})
        assert series.depths() == (0, 3)
        assert series.max_depth() == 3
        assert series.at_depth(3).get("states") == 10
        assert series.at_depth(1) is None
        assert series.final().elapsed_s == 0.5

    def test_depths_must_increase(self):
        series = DepthSeries("X")
        series.record(2, 0.1, {})
        with pytest.raises(ValueError):
            series.record(2, 0.2, {})
        with pytest.raises(ValueError):
            series.record(1, 0.2, {})

    def test_column_extraction(self):
        series = DepthSeries("X")
        series.record(0, 0.1, {"m": 5.0})
        series.record(1, 0.2, {"m": 7.0})
        assert series.column("m") == (5.0, 7.0)
        assert series.column("elapsed_s") == (0.1, 0.2)
        assert series.column("missing") == (0.0, 0.0)

    def test_empty_series(self):
        series = DepthSeries("X")
        assert series.max_depth() == 0
        assert series.final() is None


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [("a", 1), ("bbbb", 22222)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "22,222" in text

    def test_format_table_floats(self):
        text = format_table(["v"], [(0.000123,), (1234.5,), (2.5,)])
        assert "0.000123" in text
        assert "1,234" in text  # thousands grouping, no decimals
        assert "2.5" in text

    def test_format_table_booleans(self):
        text = format_table(["flag"], [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_format_depth_series_merges_and_fills_gaps(self):
        a = DepthSeries("A")
        a.record(0, 0.1, {})
        a.record(2, 0.3, {})
        b = DepthSeries("B")
        b.record(0, 0.2, {})
        b.record(1, 0.4, {})
        text = format_depth_series([a, b], "elapsed_s", "title")
        assert text.startswith("title")
        lines = text.splitlines()
        assert len(lines) == 1 + 2 + 3  # title + header+rule + 3 depth rows
        # depth 1 missing for A, depth 2 missing for B
        assert any("-" in line for line in lines[3:])


class TestRecordOrUpdate:
    def test_appends_when_depth_grows(self):
        series = DepthSeries("X")
        series.record(0, 0.1, {"m": 1.0})
        series.record_or_update(2, 0.5, {"m": 2.0})
        assert series.depths() == (0, 2)

    def test_replaces_final_sample_when_depth_static(self):
        series = DepthSeries("X")
        series.record(3, 0.1, {"m": 1.0})
        series.record_or_update(3, 9.0, {"m": 7.0})
        assert series.depths() == (3,)
        assert series.final().elapsed_s == 9.0
        assert series.final().get("m") == 7.0

    def test_replaces_even_for_smaller_depth(self):
        series = DepthSeries("X")
        series.record(5, 0.1, {})
        series.record_or_update(4, 2.0, {})
        assert series.depths() == (5,)
        assert series.final().elapsed_s == 2.0

    def test_first_sample_appends(self):
        series = DepthSeries("X")
        series.record_or_update(0, 0.2, {})
        assert series.depths() == (0,)
