"""Package-level API hygiene tests."""

import importlib
import pkgutil

import repro


def test_every_module_imports_cleanly():
    failures = []
    for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(mod.name)
        except Exception as exc:  # noqa: BLE001
            failures.append((mod.name, repr(exc)))
    assert not failures, failures


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_resolves():
    for package_name in (
        "repro.model",
        "repro.network",
        "repro.explore",
        "repro.core",
        "repro.invariants",
        "repro.online",
        "repro.stats",
        "repro.protocols.paxos",
        "repro.protocols.onepaxos",
    ):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", ()):
            assert hasattr(package, name), f"{package_name}.{name}"


def test_version_exposed():
    assert repro.__version__


def test_main_module_import_is_side_effect_free():
    # ``python -m repro`` must run the CLI, but *importing* the module (as
    # tooling like coverage and pkgutil does) must not.
    importlib.import_module("repro.__main__")
