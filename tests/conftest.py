"""Shared expensive fixtures: full explorations of the Fig. 10 Paxos space.

Several test modules compare algorithms on the paper's single-proposal
space; the full B-DFS exploration alone takes tens of seconds, so the runs
happen once per session and are shared read-only.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol


def paxos_space():
    return PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


@pytest.fixture(scope="session")
def paxos_bdfs_full():
    """Complete B-DFS exploration of the single-proposal space (slow)."""
    protocol, invariant = paxos_space()
    return GlobalModelChecker(
        protocol, invariant, budget=SearchBudget(max_seconds=600)
    ).run()


@pytest.fixture(scope="session")
def paxos_gen_full():
    """Complete LMC-GEN exploration of the single-proposal space."""
    protocol, invariant = paxos_space()
    return LocalModelChecker(
        protocol, invariant, config=LMCConfig.general()
    ).run()


@pytest.fixture(scope="session")
def paxos_opt_full():
    """Complete LMC-OPT exploration of the single-proposal space."""
    protocol, invariant = paxos_space()
    return LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
