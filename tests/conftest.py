"""Shared expensive fixtures: full explorations of the Fig. 10 Paxos space.

Several test modules compare algorithms on the paper's single-proposal
space; the full B-DFS exploration alone takes tens of seconds, so the runs
happen once per session and are shared read-only.
"""

import pytest

from repro.core.checker import LocalModelChecker
from repro.obs.registry import RUNS_ROOT_ENV


@pytest.fixture(autouse=True)
def _isolated_runs_root(monkeypatch, tmp_path_factory):
    """Point the run registry at a per-test temp root.

    CLI runs register themselves by default; without this every test that
    calls ``main`` would drop ``.lmc/runs`` directories into the repo.
    """
    monkeypatch.setenv(
        RUNS_ROOT_ENV, str(tmp_path_factory.mktemp("lmc-runs"))
    )
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.protocols.paxos import PaxosAgreement, PaxosProtocol


def paxos_space():
    return PaxosProtocol(num_nodes=3, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


@pytest.fixture(scope="session")
def paxos_bdfs_full():
    """Complete B-DFS exploration of the single-proposal space (slow)."""
    protocol, invariant = paxos_space()
    return GlobalModelChecker(
        protocol, invariant, budget=SearchBudget(max_seconds=600)
    ).run()


@pytest.fixture(scope="session")
def paxos_gen_full():
    """Complete LMC-GEN exploration of the single-proposal space."""
    protocol, invariant = paxos_space()
    return LocalModelChecker(
        protocol, invariant, config=LMCConfig.general()
    ).run()


@pytest.fixture(scope="session")
def paxos_opt_full():
    """Complete LMC-OPT exploration of the single-proposal space."""
    protocol, invariant = paxos_space()
    return LocalModelChecker(
        protocol, invariant, config=LMCConfig.optimized()
    ).run()
