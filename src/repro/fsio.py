"""Crash-safe file writes shared by every durable artifact in the library.

The bug corpus (:mod:`repro.persistence`), the run registry's heartbeat and
result snapshots (:mod:`repro.obs.registry`), and the coverage reports all
share one durability requirement: a reader — possibly in another process,
possibly after this one was SIGKILLed — must see either the complete old
file or the complete new one, never a prefix.

:func:`atomic_write_text` implements the standard POSIX recipe once: write
to a same-directory temporary file, flush, fsync, then rename over the
destination with :func:`os.replace` (atomic within one filesystem).
:func:`atomic_write_json` layers JSON encoding on top.  Both clean up the
temporary file on any failure, so an aborted write leaves no debris next to
the artifact it failed to replace.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def atomic_write_text(path: str, text: str) -> None:
    """Replace ``path``'s contents with ``text`` atomically.

    The payload lands in a same-directory temporary file first (``os.replace``
    is only atomic within one filesystem), is flushed and fsynced so the
    rename never outruns the data, and then renamed over ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str,
    payload: Any,
    indent: Optional[int] = None,
    sort_keys: bool = True,
) -> None:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys, default=str)
    )


def read_json(path: str) -> Optional[Any]:
    """Load a JSON file, returning ``None`` when missing or unparseable.

    Registry readers poll files another process is actively replacing;
    with :func:`atomic_write_json` writers a torn read is impossible, but a
    crashed *first* write (no previous version to fall back to) or a hand-
    edited file still must not take the whole status surface down.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
