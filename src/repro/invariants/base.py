"""Invariant framework.

Invariants are specified on **system states** — the paper's observation (1):
"the invariants are typically specified only on the system states, i.e., the
invariants do not involve the network states".  The framework distinguishes
three shapes, each unlocking a different optimisation in LMC:

* :class:`Invariant` — the base contract: a predicate over a
  :class:`~repro.model.system_state.SystemState`.
* :class:`DecomposableInvariant` — additionally exposes a cheap *local
  projection* of each node state and a conflict test over projections.  This
  is the §4.1/§4.2 invariant-specific system-state creation hook: a weaker
  invariant ``in'`` (``in' ⇒ in`` violation-wise) decomposed into locally
  verifiable properties, so LMC-OPT can skip every combination whose
  projections cannot possibly violate the invariant.  For Paxos the
  projection is the value a node has chosen (``None`` for undecided nodes)
  and a conflict is "at least two distinct chosen values".
* :class:`LocalInvariant` — an invariant that is a conjunction of per-node
  predicates (the RandTree children/siblings-disjoint example); checking it
  never needs a combination of nodes at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.model.system_state import SystemState
from repro.model.types import NodeId


class Invariant(ABC):
    """A safety property over system states.

    ``check`` returns True when the invariant *holds*.  The checkers report a
    bug when ``check`` returns False on a state they can prove reachable.
    """

    #: Short name used in bug reports and benchmark tables.
    name: str = "invariant"

    @abstractmethod
    def check(self, system: SystemState) -> bool:
        """True when the invariant holds on ``system``."""

    def describe_violation(self, system: SystemState) -> str:
        """Human-readable account of why ``system`` violates the invariant."""
        return f"invariant {self.name!r} violated on {system!r}"


class DecomposableInvariant(Invariant):
    """An invariant with a cheap local projection for LMC-OPT.

    Subclasses implement :meth:`local_projection`; the default
    :meth:`projections_conflict` flags any pair of distinct non-``None``
    projection values, which matches agreement-style invariants (Paxos: no
    two nodes choose different values).  Subclasses with richer conflict
    structure override it.

    The contract LMC-OPT relies on (soundness of the *skip*): if a system
    state violates :meth:`check`, then the projections of its node states
    must satisfy :meth:`projections_conflict`.  Violating that contract makes
    LMC-OPT miss bugs; the test suite cross-checks it for every shipped
    invariant by exhaustive comparison against LMC-GEN.

    ``pairwise`` (default True) additionally asserts that every violation is
    *witnessed by a pair*: some two nodes' projections already conflict on
    their own.  This is the paper's own reading ("we thus select only the
    node states that at least two of them are mapped to different values",
    §4.2) and lets LMC-OPT scan conflicting pairs instead of walking the
    full Cartesian product.  Set it to False for exotic invariants whose
    conflicts only appear with three or more nodes; OPT then falls back to
    the pruned full-product enumeration.
    """

    #: Violations are witnessed by a two-node projection conflict.
    pairwise: bool = True

    @abstractmethod
    def local_projection(self, node: NodeId, state: Any) -> Optional[Any]:
        """Project a node state to its invariant-relevant summary.

        Return ``None`` when this node state can never contribute to a
        violation (e.g. an undecided Paxos node) — LMC-OPT will not combine
        it into any system state.
        """

    def projections_conflict(self, projections: Dict[NodeId, Any]) -> bool:
        """Could node states with these (non-None) projections violate?"""
        return len(set(projections.values())) >= 2


class LocalInvariant(Invariant):
    """A conjunction of per-node predicates.

    ``check_local(node, state)`` must be True for every node.  The system
    check is derived; LMC can check these on node states directly, without
    creating any system state.
    """

    @abstractmethod
    def check_local(self, node: NodeId, state: Any) -> bool:
        """True when ``node``'s local state satisfies its share of the invariant."""

    def check(self, system: SystemState) -> bool:
        return all(self.check_local(node, state) for node, state in system.items())

    def describe_violation(self, system: SystemState) -> str:
        failing = [
            node for node, state in system.items() if not self.check_local(node, state)
        ]
        return f"local invariant {self.name!r} violated at nodes {failing}"


class PredicateInvariant(Invariant):
    """Adapter: wrap a plain function ``SystemState -> bool`` as an invariant."""

    def __init__(self, name: str, predicate: Callable[[SystemState], bool]):
        self.name = name
        self._predicate = predicate

    def check(self, system: SystemState) -> bool:
        return self._predicate(system)


class AllOf(Invariant):
    """Conjunction of several invariants; violated when any member is."""

    def __init__(self, invariants: Iterable[Invariant], name: str = "all-of"):
        self.members: Tuple[Invariant, ...] = tuple(invariants)
        if not self.members:
            raise ValueError("AllOf requires at least one invariant")
        self.name = name

    def check(self, system: SystemState) -> bool:
        return all(member.check(system) for member in self.members)

    def describe_violation(self, system: SystemState) -> str:
        for member in self.members:
            if not member.check(system):
                return member.describe_violation(system)
        return f"invariant {self.name!r} holds (no violation to describe)"
