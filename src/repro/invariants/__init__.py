"""Invariant framework: system invariants, decompositions, local assertions."""

from repro.invariants.base import (
    AllOf,
    DecomposableInvariant,
    Invariant,
    LocalInvariant,
    PredicateInvariant,
)

__all__ = [
    "AllOf",
    "DecomposableInvariant",
    "Invariant",
    "LocalInvariant",
    "PredicateInvariant",
]
