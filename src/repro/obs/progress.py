"""Progress and ETA estimation from the per-depth work series.

The state spaces LMC explores grow (roughly) geometrically with depth — the
paper's Fig. 10/11 curves are straight lines on a log axis — which makes a
useful forward model cheap: fit ``log(cumulative work)`` against depth by
least squares, read the per-depth growth factor off the slope, and
extrapolate the remaining work of a depth-bounded run.  Combined with the
observed work rate (transitions per wall second so far) that yields an ETA.

Everything here is a pure function of the depth series the checkers already
record (:class:`~repro.stats.series.DepthSeries` feeds the Fig. 10–13
benches), so the same numbers appear consistently in heartbeats
(:mod:`repro.obs.registry`), ``repro status``, and the ``trace-report``
growth section — and are deterministic for tests.

The model is honest about its limits: with fewer than two distinct depths
there is no slope and only the raw fraction-of-depth is reported; when the
fit says the space has stopped growing (factor ≤ 1) extrapolation falls
back to linear; unbounded runs get the growth factor but no ETA — without
a target depth "remaining" is undefined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: A progress observation: (depth, elapsed wall seconds, cumulative work).
#: "Work" is whichever monotone counter the caller trusts — the checkers
#: use executed transitions.
Sample = Tuple[int, float, float]

#: Growth factors this close to 1.0 extrapolate linearly: the exponential
#: formula divides by (b - 1) and a near-flat fit means the frontier has
#: saturated, where linear is the better model anyway.
_FLAT_FACTOR = 1.001


@dataclass(frozen=True)
class ProgressEstimate:
    """A point-in-time progress judgement for one run."""

    #: Deepest combined depth observed.
    depth: int
    #: The run's depth bound, when it has one.
    max_depth: Optional[int]
    #: Cumulative work observed (transitions so far).
    work_done: float
    #: Observed work rate (work per wall second), None before any elapsed time.
    rate_per_s: Optional[float]
    #: Fitted per-depth growth factor of cumulative work (None: no fit yet).
    growth_factor: Optional[float]
    #: Predicted work still ahead of the run (depth-bounded runs only).
    work_remaining: Optional[float]
    #: ``work_done / (work_done + work_remaining)`` when predictable.
    fraction_done: Optional[float]
    #: Predicted seconds to completion (depth-bounded runs with a rate).
    eta_s: Optional[float]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form, as embedded in heartbeats."""
        return {
            "depth": self.depth,
            "max_depth": self.max_depth,
            "work_done": self.work_done,
            "rate_per_s": self.rate_per_s,
            "growth_factor": self.growth_factor,
            "work_remaining": self.work_remaining,
            "fraction_done": self.fraction_done,
            "eta_s": self.eta_s,
        }


def fit_growth_factor(samples: Sequence[Sample]) -> Optional[float]:
    """Least-squares fit of ``log(work)`` vs depth → per-depth growth factor.

    Needs at least two distinct depths with positive work; returns None
    otherwise.  The factor is ``exp(slope)``: cumulative work multiplies by
    it per unit of combined depth.
    """
    points: List[Tuple[float, float]] = []
    seen_depths = set()
    for depth, _elapsed, work in samples:
        if work > 0 and depth not in seen_depths:
            seen_depths.add(depth)
            points.append((float(depth), math.log(work)))
    if len(points) < 2:
        return None
    n = len(points)
    mean_x = sum(x for x, _y in points) / n
    mean_y = sum(y for _x, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _y in points)
    if var_x == 0.0:
        return None
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / var_x
    return math.exp(slope)


def _predict_remaining(
    work_done: float, depth: int, max_depth: int, factor: Optional[float]
) -> Optional[float]:
    """Work predicted between ``depth`` and ``max_depth`` under the fit.

    Geometric model: cumulative work at the bound is ``W · b^(D-d)``, so the
    remainder is ``W · (b^(D-d) − 1)``.  A flat or missing fit degrades to
    the linear reading (current per-depth average times depths left).
    """
    levels_left = max_depth - depth
    if levels_left <= 0:
        return 0.0
    if factor is not None and factor > _FLAT_FACTOR:
        return work_done * (factor ** levels_left - 1.0)
    if depth <= 0:
        return None
    return (work_done / depth) * levels_left


def estimate_progress(
    samples: Sequence[Sample], max_depth: Optional[int]
) -> Optional[ProgressEstimate]:
    """Estimate progress/ETA from a depth-ordered work series.

    ``samples`` is typically the depth series plus the live in-flight
    point; the last sample is taken as "now".  Returns None when there is
    nothing to estimate from (no samples at all).
    """
    if not samples:
        return None
    depth, elapsed, work_done = samples[-1]
    factor = fit_growth_factor(samples)
    rate = (work_done / elapsed) if elapsed > 0 and work_done > 0 else None
    work_remaining: Optional[float] = None
    fraction: Optional[float] = None
    eta: Optional[float] = None
    if max_depth is not None:
        work_remaining = _predict_remaining(work_done, depth, max_depth, factor)
        if work_remaining is not None:
            total = work_done + work_remaining
            fraction = (work_done / total) if total > 0 else 1.0
            if rate is not None:
                eta = work_remaining / rate
    return ProgressEstimate(
        depth=depth,
        max_depth=max_depth,
        work_done=work_done,
        rate_per_s=rate,
        growth_factor=factor,
        work_remaining=work_remaining,
        fraction_done=fraction,
        eta_s=eta,
    )


def format_eta(seconds: Optional[float]) -> str:
    """Human-readable ETA (``-`` when unknown)."""
    if seconds is None:
        return "-"
    if seconds < 0:
        seconds = 0.0
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
