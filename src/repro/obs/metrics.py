"""Run-metrics sampling: counters, memory, and phase timers over time.

:class:`RunMetrics` replaces the checkers' ad-hoc depth-sample bookkeeping
with one registry that feeds two consumers at once:

* the per-depth :class:`~repro.stats.series.DepthSeries` the Fig. 10–13
  benches print (a sample lands whenever the explored depth grows, plus a
  forced end-of-run sample — exactly the seed behaviour);
* the trace, as ``metric`` records — additionally emitted on a configurable
  wall-clock cadence (``interval`` seconds, checked at each sampling point),
  so a long run's trace shows counter *progress*, not just its endpoints.

Each sample is the :meth:`~repro.stats.counters.ExplorationStats.snapshot`
dict (which already folds in the ``phase_*_s`` Fig. 13 timers) extended
with caller-provided gauges (node states, tracked bytes) and the process
RSS via :func:`rss_bytes`.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional

from repro.obs.emitter import NULL_EMITTER, TraceEmitter
from repro.stats.counters import ExplorationStats
from repro.stats.series import DepthSeries


def rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes, or None if unknown.

    Uses the stdlib ``resource`` module (no third-party dependency);
    ``ru_maxrss`` is KiB on Linux and bytes on macOS.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class RunMetrics:
    """Samples exploration counters into a depth series and a trace.

    Parameters
    ----------
    series:
        The depth series to fill (Fig. 10–13 raw material).
    stats:
        The live counter block being sampled.
    elapsed:
        Zero-argument callable returning seconds since the run started
        (typically ``BudgetClock.elapsed``).
    emitter:
        Trace sink for ``metric`` records; the null emitter by default.
    interval:
        Wall-clock cadence in seconds for *trace* samples while depth is
        flat; ``None`` emits only when depth grows (and on force).
    extra:
        Zero-argument callable contributing additional gauge fields to each
        sample (e.g. ``node_states``, ``memory_bytes``).
    heartbeat:
        Callable receiving ``(depth, elapsed_s, metrics, force)`` on every
        taken sample — the run registry's hook (docs/OBSERVABILITY.md "Live
        operations"); ``force`` marks the seed and end-of-run samples that
        must reach disk past any rate limiting.  A heartbeat sink keeps the
        ``interval`` cadence alive even when tracing is off, but never
        touches the depth series or the trace, so results stay
        byte-identical with it absent.
    """

    def __init__(
        self,
        series: DepthSeries,
        stats: ExplorationStats,
        elapsed: Callable[[], float],
        emitter: TraceEmitter = NULL_EMITTER,
        interval: Optional[float] = None,
        extra: Optional[Callable[[], Dict[str, float]]] = None,
        heartbeat: Optional[Callable[[int, float, Dict[str, float], bool], None]] = None,
    ):
        self.series = series
        self.stats = stats
        self.elapsed = elapsed
        self.emitter = emitter
        self.interval = interval
        self.extra = extra
        self.heartbeat = heartbeat
        self._last_depth = -1
        self._last_emit = float("-inf")

    def pulse(self, get_depth: Callable[[], int]) -> bool:
        """Interval-cadence emission from *inside* a long round.

        Exploration rounds grow with the frontier, so the round-boundary
        :meth:`sample` calls can be minutes apart on hard workloads — a
        live status reader would see nothing but the seed snapshot.  This
        hook emits a trace metric and/or heartbeat whenever the wall-clock
        cadence is due, but never touches the depth series: mid-round
        depths are provisional, and the Fig. 10–13 series must stay keyed
        to round boundaries exactly as without observability.

        ``get_depth`` is called only once a sample is actually due, so the
        common case costs two attribute checks and a clock read.  Returns
        True when a sample was emitted.
        """
        if self.interval is None:
            return False
        if not self.emitter.enabled and self.heartbeat is None:
            return False
        elapsed = self.elapsed()
        if elapsed - self._last_emit < self.interval:
            return False
        depth = get_depth()
        metrics = self.stats.snapshot()
        if self.extra is not None:
            metrics.update(self.extra())
        rss = rss_bytes()
        if rss is not None:
            metrics["rss_bytes"] = rss
        if self.emitter.enabled:
            self.emitter.metric(depth=depth, elapsed_s=elapsed, **metrics)
        if self.heartbeat is not None:
            self.heartbeat(depth, elapsed, metrics, False)
        self._last_emit = elapsed
        return True

    def sample(self, depth: int, force: bool = False) -> bool:
        """Take a sample at ``depth`` if anything warrants one.

        A sample is warranted when the depth grew past the last recorded
        one, when ``force`` is set (seeding and end-of-run), or — for the
        trace only — when ``interval`` seconds elapsed since the last
        emitted metric record.  Returns True when a sample was taken.
        """
        depth_grew = depth > self._last_depth
        elapsed = self.elapsed()
        interval_due = (
            self.interval is not None
            and (self.emitter.enabled or self.heartbeat is not None)
            and elapsed - self._last_emit >= self.interval
        )
        if not (depth_grew or force or interval_due):
            return False
        metrics = self.stats.snapshot()
        if self.extra is not None:
            metrics.update(self.extra())
        rss = rss_bytes()
        if rss is not None:
            metrics["rss_bytes"] = rss
        # The series stays depth-keyed: interval-only samples do not touch
        # it, and a forced sample at an already-recorded depth replaces the
        # final row (end-of-run totals must win).
        if depth_grew:
            self.series.record(depth, elapsed, metrics)
            self._last_depth = depth
        elif force:
            self.series.record_or_update(depth, elapsed, metrics)
        if self.emitter.enabled:
            self.emitter.metric(depth=depth, elapsed_s=elapsed, **metrics)
        if self.heartbeat is not None:
            self.heartbeat(depth, elapsed, metrics, force)
        if self.emitter.enabled or self.heartbeat is not None:
            self._last_emit = elapsed
        return True
