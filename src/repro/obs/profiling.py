"""Profiling hooks: phase timers and the Fig. 13 overhead arithmetic.

The paper's Fig. 13 decomposes one LMC run's wall time into exploration,
system-state creation, and soundness verification by re-running with phases
disabled.  This module lets a single traced run produce the same
decomposition: :func:`phase_timer` accumulates wall time into the
:class:`~repro.stats.counters.ExplorationStats` phase buckets (optionally
emitting a trace span for the region), and :func:`overhead_breakdown` turns
the resulting ``phase_seconds`` dict into per-phase shares.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.emitter import NULL_EMITTER, TraceEmitter
from repro.stats.counters import ExplorationStats

#: Canonical phase order for Fig. 13-style tables.
PHASE_ORDER = ("explore", "system_states", "soundness")


@contextmanager
def phase_timer(
    stats: ExplorationStats,
    phase: str,
    emitter: TraceEmitter = NULL_EMITTER,
    span_name: Optional[str] = None,
    **fields: Any,
) -> Iterator[None]:
    """Time a region into ``stats.phase_seconds[phase]``; optionally trace it.

    With ``span_name`` set (and a real emitter) the region also becomes a
    trace span, so the same hook feeds both the Fig. 13 buckets and the
    trace tree.  Exceptions still charge the elapsed time (a stop criterion
    firing mid-phase must not lose the phase's cost).
    """
    span = (
        emitter.span(span_name, phase=phase, **fields)
        if span_name is not None and emitter.enabled
        else None
    )
    if span is not None:
        span.__enter__()
    started = time.perf_counter()
    try:
        yield
    finally:
        stats.add_phase_time(phase, time.perf_counter() - started)
        if span is not None:
            span.__exit__(None, None, None)


def overhead_breakdown(
    phase_seconds: Dict[str, float]
) -> List[Tuple[str, float, float]]:
    """Fig. 13 shares: ``(phase, seconds, fraction-of-total)`` rows.

    Phases appear in canonical order first, then any extra buckets
    alphabetically; fractions are of the summed phase time (0.0 when the
    total is zero).  Negative residue from the checker's compensation
    arithmetic is clamped at zero seconds.
    """
    ordered = [name for name in PHASE_ORDER if name in phase_seconds]
    ordered += sorted(set(phase_seconds) - set(PHASE_ORDER))
    rows = [(name, max(0.0, phase_seconds[name])) for name in ordered]
    total = sum(seconds for _name, seconds in rows)
    return [
        (name, seconds, (seconds / total) if total > 0 else 0.0)
        for name, seconds in rows
    ]
