"""The live run registry: durable, cross-process records of checker runs.

Every ``check``/``scenario``/online/bench run can register itself under a
*runs root* (``.lmc/runs`` by default, overridable with the
``REPRO_RUNS_ROOT`` environment variable) and keep a heartbeat there while
it explores.  A second process — ``repro runs``, ``repro status``,
``repro serve-status``, a dashboard — reads those files to answer the
operator questions a long run otherwise leaves dark: is it alive, how deep
is it, how fast is it burning transitions, when will it finish.

Layout of one run directory (``<root>/<run_id>/``):

``meta.json``
    Written once at registration: run id, command, workload, algorithm,
    pid, argv, start wall-clock time.
``heartbeat.json``
    Replaced atomically on the metrics cadence (depth growth or the
    ``--metrics-interval`` wall clock): depth, round, frontier size, every
    :meth:`~repro.stats.counters.ExplorationStats.snapshot` counter, phase
    timers, RSS, and the :mod:`~repro.obs.progress` ETA estimate.
``result.json``
    Written once when the run finishes: final status and summary counters.
``coverage.json``
    Present when coverage accounting (:mod:`repro.obs.coverage`) was on.

All writes go through :func:`repro.fsio.atomic_write_json`, so a SIGKILLed
run always leaves parseable files; liveness is judged from the heartbeat
instead.  A run is **running** while its pid is alive and its heartbeat is
fresh, **stale** when the pid is alive but the heartbeat stopped advancing
(a wedged process), and **killed** when the pid is gone without a
``result.json`` (the SIGKILL case).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.fsio import atomic_write_json, read_json

#: Environment variable overriding the default runs root.
RUNS_ROOT_ENV = "REPRO_RUNS_ROOT"
#: Default runs root, relative to the current working directory.
DEFAULT_RUNS_ROOT = os.path.join(".lmc", "runs")

META_FILE = "meta.json"
HEARTBEAT_FILE = "heartbeat.json"
RESULT_FILE = "result.json"
COVERAGE_FILE = "coverage.json"
#: Default location of a run's durable checker snapshot
#: (docs/CHECKPOINTS.md): ``repro resume <run_id>`` reads it, and
#: ``repro runs --gc`` prunes it once the run has finished.
CHECKPOINT_FILE = "checkpoint.json"

#: A heartbeat older than this (seconds) marks a live-pid run as stale.
#: When the heartbeat itself advertises its cadence the threshold widens to
#: a few missed beats — a run sampling every 30 s is not stale after 11.
DEFAULT_STALE_AFTER_S = 10.0
_STALE_CADENCE_MULTIPLE = 4.0


def default_runs_root() -> str:
    """The runs root the environment selects (``REPRO_RUNS_ROOT`` or default)."""
    return os.environ.get(RUNS_ROOT_ENV) or DEFAULT_RUNS_ROOT


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a local process id."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class RunHandle:
    """The writer half: one registered run's durable record.

    Handles are cheap to carry through checker plumbing; every write is an
    atomic whole-file replace, and :meth:`heartbeat` self-rate-limits so a
    fast-sampling run does not turn the registry into an fsync benchmark.
    """

    def __init__(self, directory: str, run_id: str, min_interval: float = 0.5):
        self.directory = directory
        self.run_id = run_id
        #: Minimum seconds between unforced heartbeat writes.
        self.min_interval = min_interval
        self._last_write = float("-inf")
        self._interval_hint: Optional[float] = None

    def advertise_cadence(self, interval_s: Optional[float]) -> None:
        """Record the expected sampling cadence in future heartbeats.

        Readers use it to scale stale detection: a run that samples every
        30 s should not be flagged stale after 10.
        """
        self._interval_hint = interval_s

    def heartbeat(self, snapshot: Dict[str, Any], force: bool = False) -> bool:
        """Atomically replace ``heartbeat.json`` with ``snapshot``.

        Returns True when a write happened (rate limiting may skip one;
        ``force`` bypasses it for seed and end-of-run beats).
        """
        now = time.monotonic()
        if not force and now - self._last_write < self.min_interval:
            return False
        payload = dict(snapshot)
        payload["run_id"] = self.run_id
        payload["pid"] = os.getpid()
        payload["wall_ts"] = time.time()
        if self._interval_hint is not None:
            payload["heartbeat_interval_s"] = self._interval_hint
        atomic_write_json(os.path.join(self.directory, HEARTBEAT_FILE), payload)
        self._last_write = now
        return True

    def write_coverage(self, coverage: Dict[str, Any]) -> None:
        """Atomically replace ``coverage.json`` (see :mod:`repro.obs.coverage`)."""
        atomic_write_json(os.path.join(self.directory, COVERAGE_FILE), coverage)

    def finish(self, status: str = "finished", **summary: Any) -> None:
        """Write the final ``result.json``; the run is no longer live.

        ``status`` is typically ``"finished"`` or ``"failed"``; ``summary``
        carries whatever end-of-run facts the caller wants durable
        (stop reason, bug count, final counters).
        """
        payload = dict(summary)
        payload["run_id"] = self.run_id
        payload["status"] = status
        payload["wall_ts"] = time.time()
        atomic_write_json(os.path.join(self.directory, RESULT_FILE), payload)


@dataclass
class RunRecord:
    """The reader half: one run directory, parsed leniently.

    Any of the component files may be missing (a just-registered run has no
    heartbeat yet; a killed run has no result) — readers get ``None`` and
    judge status from what exists.
    """

    run_id: str
    directory: str
    meta: Dict[str, Any] = field(default_factory=dict)
    heartbeat: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None

    @property
    def coverage_path(self) -> str:
        return os.path.join(self.directory, COVERAGE_FILE)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_FILE)

    def has_checkpoint(self) -> bool:
        """True when the run left a durable checker snapshot to resume from."""
        return os.path.isfile(self.checkpoint_path)

    def coverage(self) -> Optional[Dict[str, Any]]:
        """The run's coverage report, when coverage accounting was on."""
        return read_json(self.coverage_path)

    def heartbeat_age_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the last heartbeat, or None without one."""
        if self.heartbeat is None:
            return None
        wall = self.heartbeat.get("wall_ts")
        if not isinstance(wall, (int, float)):
            return None
        return max(0.0, (time.time() if now is None else now) - float(wall))

    def status(
        self,
        stale_after: float = DEFAULT_STALE_AFTER_S,
        now: Optional[float] = None,
    ) -> str:
        """One of ``finished``/``failed``/``running``/``stale``/``killed``/``registered``.

        Finished runs answer from ``result.json``.  In-flight runs are
        judged from the heartbeat: a dead pid without a result means the
        run was killed; a live pid with a heartbeat older than the stale
        threshold (scaled up when the heartbeat advertises a slow cadence)
        means the process is wedged.
        """
        if self.result is not None:
            status = self.result.get("status")
            return status if isinstance(status, str) else "finished"
        if self.heartbeat is None:
            return "registered"
        pid = self.heartbeat.get("pid")
        if isinstance(pid, int) and not pid_alive(pid):
            return "killed"
        age = self.heartbeat_age_s(now=now)
        cadence = self.heartbeat.get("heartbeat_interval_s")
        if isinstance(cadence, (int, float)) and cadence > 0:
            stale_after = max(stale_after, _STALE_CADENCE_MULTIPLE * float(cadence))
        if age is not None and age > stale_after:
            return "stale"
        return "running"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the ``serve-status`` payload for one run)."""
        return {
            "run_id": self.run_id,
            "status": self.status(),
            "heartbeat_age_s": self.heartbeat_age_s(),
            "meta": self.meta,
            "heartbeat": self.heartbeat,
            "result": self.result,
        }


class RunRegistry:
    """Registers new runs and enumerates existing ones under one root."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root if root else default_runs_root())

    # -- writer side -----------------------------------------------------------

    def register(
        self,
        command: str,
        workload: Optional[str] = None,
        algorithm: Optional[str] = None,
        run_id: Optional[str] = None,
        argv: Optional[List[str]] = None,
        **extra: Any,
    ) -> RunHandle:
        """Create a run directory and its ``meta.json``; return the handle.

        Generated run ids sort chronologically (``YYYYmmddTHHMMSS-<pid>``
        with a numeric suffix on collision), so directory order is start
        order.
        """
        os.makedirs(self.root, exist_ok=True)
        if run_id is None:
            stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime())
            base = f"{stamp}-{os.getpid()}"
            run_id, suffix = base, 0
            while os.path.exists(os.path.join(self.root, run_id)):
                suffix += 1
                run_id = f"{base}-{suffix}"
        directory = os.path.join(self.root, run_id)
        os.makedirs(directory, exist_ok=True)
        meta: Dict[str, Any] = {
            "run_id": run_id,
            "command": command,
            "workload": workload,
            "algorithm": algorithm,
            "pid": os.getpid(),
            "argv": list(argv) if argv is not None else None,
            "started_wall_ts": time.time(),
            "started": time.strftime("%Y-%m-%d %H:%M:%S", time.localtime()),
        }
        meta.update(extra)
        atomic_write_json(os.path.join(directory, META_FILE), meta)
        return RunHandle(directory, run_id)

    def gc_checkpoints(self) -> List[str]:
        """Delete finished runs' leftover checkpoints; return pruned paths.

        Only runs with a ``result.json`` qualify: an in-flight or killed
        run's checkpoint is its resume point and is never touched.  Only
        the registry-managed ``checkpoint.json`` inside each run directory
        is removed — never a user-chosen ``--checkpoint PATH`` elsewhere.
        """
        pruned: List[str] = []
        for record in self.list_runs():
            if record.result is None:
                continue
            path = record.checkpoint_path
            if os.path.isfile(path):
                try:
                    os.remove(path)
                except OSError:
                    continue
                pruned.append(path)
        return pruned

    # -- reader side -----------------------------------------------------------

    def run_ids(self) -> List[str]:
        """All registered run ids, in start order (directory-name order)."""
        try:
            entries = os.listdir(self.root)
        except OSError:
            return []
        found = [
            name
            for name in entries
            if os.path.isfile(os.path.join(self.root, name, META_FILE))
        ]
        return sorted(found)

    def load(self, run_id: str) -> Optional[RunRecord]:
        """Read one run directory; None when it does not exist."""
        directory = os.path.join(self.root, run_id)
        meta = read_json(os.path.join(directory, META_FILE))
        if meta is None:
            return None
        return RunRecord(
            run_id=run_id,
            directory=directory,
            meta=meta if isinstance(meta, dict) else {},
            heartbeat=read_json(os.path.join(directory, HEARTBEAT_FILE)),
            result=read_json(os.path.join(directory, RESULT_FILE)),
        )

    def list_runs(self) -> List[RunRecord]:
        """All readable runs, in start order."""
        records = []
        for run_id in self.run_ids():
            record = self.load(run_id)
            if record is not None:
                records.append(record)
        return records

    def latest(self) -> Optional[RunRecord]:
        """The most recently registered readable run, if any."""
        for run_id in reversed(self.run_ids()):
            record = self.load(run_id)
            if record is not None:
                return record
        return None
