"""Read-only HTTP status endpoint over the run registry (stdlib only).

``repro serve-status`` exposes the registry's view of every run as JSON so
dashboards, curl, or a colleague's browser can watch a long check without
touching the checker process:

``GET /``, ``GET /runs``
    Summary list: one object per run with id, status, command, workload,
    algorithm, depth, and the progress estimate from the latest heartbeat.
``GET /runs/<run_id>``
    The full :meth:`~repro.obs.registry.RunRecord.as_dict` payload —
    meta, latest heartbeat, result.
``GET /runs/<run_id>/coverage``
    The run's coverage report (404 when coverage accounting was off).

The server is deliberately read-only (GET only, no mutation endpoints) and
re-reads the registry files on every request — heartbeats are atomic whole
file replaces, so responses are always internally consistent.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.registry import RunRecord, RunRegistry


def run_summary(record: RunRecord) -> Dict[str, Any]:
    """The list-endpoint view of one run: the fields an overview needs."""
    heartbeat = record.heartbeat or {}
    return {
        "run_id": record.run_id,
        "status": record.status(),
        "command": record.meta.get("command"),
        "workload": record.meta.get("workload"),
        "algorithm": record.meta.get("algorithm"),
        "started": record.meta.get("started"),
        "heartbeat_age_s": record.heartbeat_age_s(),
        "depth": heartbeat.get("depth"),
        "round": heartbeat.get("round"),
        "transitions": heartbeat.get("transitions"),
        "progress": heartbeat.get("progress"),
    }


class StatusRequestHandler(BaseHTTPRequestHandler):
    """One GET-only handler; the registry root rides on the server object."""

    server_version = "repro-status/1"

    def _respond(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True, default=str).encode(
            "utf-8"
        )
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        registry: RunRegistry = self.server.registry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/")
        if path in ("", "/runs"):
            self._respond(
                200, [run_summary(record) for record in registry.list_runs()]
            )
            return
        if path.startswith("/runs/"):
            parts = path[len("/runs/") :].split("/")
            record = registry.load(parts[0])
            if record is None:
                self._respond(404, {"error": f"unknown run {parts[0]!r}"})
                return
            if len(parts) == 1:
                self._respond(200, record.as_dict())
                return
            if len(parts) == 2 and parts[1] == "coverage":
                coverage = record.coverage()
                if coverage is None:
                    self._respond(
                        404, {"error": "no coverage recorded for this run"}
                    )
                    return
                self._respond(200, coverage)
                return
        self._respond(404, {"error": f"unknown path {self.path!r}"})

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter; the CLI prints the endpoint."""


def make_server(
    registry: RunRegistry, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Build (but do not start) the status server; port 0 picks a free one."""
    server = ThreadingHTTPServer((host, port), StatusRequestHandler)
    server.registry = registry  # type: ignore[attr-defined]
    return server


def serve_forever(
    registry: RunRegistry,
    host: str = "127.0.0.1",
    port: int = 8765,
    ready: Optional[Any] = None,
) -> Tuple[str, int]:
    """Run the status server until interrupted (the ``serve-status`` loop)."""
    server = make_server(registry, host, port)
    address = server.server_address[:2]
    if ready is not None:
        ready(address)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return address
