"""Structured trace emitters: JSONL spans, events, and metric samples.

A trace is a flat stream of JSON records, one per line.  Three kinds:

``span``
    A named, timed region — an exploration round, a system-state
    materialisation batch, one soundness call, one worker verification.
    Spans carry ``id``/``parent`` so nested regions reconstruct into a
    tree; a span record is written when the region *ends* and its ``ts``
    is the region's start, so sorting by ``ts`` yields causal order.
``event``
    A point-in-time occurrence (a bug confirmation, a run ending).
``metric``
    A counter snapshot (:meth:`repro.stats.counters.ExplorationStats.snapshot`
    plus memory figures), emitted by :class:`repro.obs.metrics.RunMetrics`.

Every record has ``ts`` (seconds since the emitter was created), ``pid``,
and ``kind``.  The full field-by-field schema is docs/OBSERVABILITY.md.

The default sink is :data:`NULL_EMITTER`, whose hooks are no-ops and whose
``span()`` returns a shared singleton — instrumented hot paths cost one
no-op ``with`` statement when tracing is off.  Emitters are single-threaded
by design (one per checker run); parallel workers do not emit directly but
return pre-timed span dicts that the parent re-emits via
:meth:`TraceEmitter.emit_span`, keeping a multiprocess run's trace coherent.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, TextIO, Union

#: Schema version stamped on the trace header event.
SCHEMA_VERSION = 1


class _Span:
    """Context manager for one timed region; emits its record on exit."""

    __slots__ = ("_emitter", "name", "span_id", "parent", "fields", "_start")

    def __init__(
        self,
        emitter: "TraceEmitter",
        name: str,
        span_id: int,
        parent: Optional[int],
        fields: Dict[str, Any],
    ):
        self._emitter = emitter
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self.fields = fields
        self._start = 0.0

    def add(self, **fields: Any) -> None:
        """Attach fields discovered mid-region (counts, outcomes)."""
        self.fields.update(fields)

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._emitter._stack.append(self.span_id)
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        stack = self._emitter._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._emitter._write_record(
            {
                "ts": self._start - self._emitter._origin,
                "pid": os.getpid(),
                "kind": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent,
                "dur_s": duration,
                "fields": self.fields,
            }
        )


class _NullSpan:
    """Shared no-op span: the entire cost of a disabled instrumentation point."""

    __slots__ = ()

    def add(self, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceEmitter:
    """Base emitter: span/event/metric construction over an abstract sink.

    Subclasses implement :meth:`_write`; everything else — ids, the span
    nesting stack, the trace-relative clock — lives here.
    """

    #: Hot paths may consult this to skip field computation entirely.
    enabled: bool = True

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._stack: List[int] = []
        self._next_id = 1
        self._closed = False
        self.event("trace_start", schema=SCHEMA_VERSION)

    # -- record construction ---------------------------------------------------

    def span(self, name: str, **fields: Any) -> Union[_Span, _NullSpan]:
        """A context manager timing a named region nested under the current span."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return _Span(self, name, span_id, parent, fields)

    def emit_span(
        self,
        name: str,
        dur_s: float,
        fields: Optional[Dict[str, Any]] = None,
        pid: Optional[int] = None,
    ) -> None:
        """Emit a pre-timed span (a worker's region, forwarded by the parent).

        The record nests under the *parent's* current span and carries the
        worker's ``pid``, so a multiprocess run reads as one tree.
        """
        span_id = self._next_id
        self._next_id += 1
        self._write_record(
            {
                "ts": time.perf_counter() - self._origin,
                "pid": os.getpid() if pid is None else pid,
                "kind": "span",
                "name": name,
                "id": span_id,
                "parent": self._stack[-1] if self._stack else None,
                "dur_s": dur_s,
                "fields": dict(fields or {}),
            }
        )

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point-in-time event record."""
        self._write_record(
            {
                "ts": time.perf_counter() - self._origin,
                "pid": os.getpid(),
                "kind": "event",
                "name": name,
                "fields": fields,
            }
        )

    def metric(self, **fields: Any) -> None:
        """Emit a counter-snapshot record (see :class:`repro.obs.metrics.RunMetrics`)."""
        self._write_record(
            {
                "ts": time.perf_counter() - self._origin,
                "pid": os.getpid(),
                "kind": "metric",
                "fields": fields,
            }
        )

    # -- sink ------------------------------------------------------------------

    def _write_record(self, record: Dict[str, Any]) -> None:
        if not self._closed:
            self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release the sink; further records are dropped."""
        self._closed = True

    def __enter__(self) -> "TraceEmitter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullEmitter(TraceEmitter):
    """The zero-overhead default: every hook is a no-op."""

    enabled = False

    def __init__(self) -> None:  # deliberately skips TraceEmitter.__init__
        self._stack = []
        self._closed = False

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def emit_span(self, name, dur_s, fields=None, pid=None) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def metric(self, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


#: Process-wide shared no-op emitter; the default for every instrumented API.
NULL_EMITTER = NullEmitter()


class MemoryEmitter(TraceEmitter):
    """Collects records in a list — the test and notebook sink."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        super().__init__()

    def _write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)


class CallbackEmitter(TraceEmitter):
    """Hands each record dict to a callable (bridges to foreign tracers)."""

    def __init__(self, callback: Callable[[Dict[str, Any]], None]):
        self._callback = callback
        super().__init__()

    def _write(self, record: Dict[str, Any]) -> None:
        self._callback(record)


class JsonlEmitter(TraceEmitter):
    """Streams records to a JSONL file (one compact JSON object per line)."""

    def __init__(self, path_or_file: Union[str, "os.PathLike[str]", TextIO]):
        if hasattr(path_or_file, "write"):
            self._file: TextIO = path_or_file  # type: ignore[assignment]
            self._owns_file = False
            self.path: Optional[str] = getattr(path_or_file, "name", None)
        else:
            self.path = os.fspath(path_or_file)
            # Line buffering: each record reaches the OS as one whole line,
            # so a killed run truncates at most the final record — which the
            # trace readers tolerate (see repro.obs.report.load_trace).
            self._file = open(self.path, "w", encoding="utf-8", buffering=1)
            self._owns_file = True
        super().__init__()

    def _write(self, record: Dict[str, Any]) -> None:
        self._file.write(json.dumps(record, separators=(",", ":"), default=str))
        self._file.write("\n")

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        self._file.flush()
        if self._owns_file:
            self._file.close()
