"""Trace-file analysis: render a captured trace back into paper tables.

``repro trace-report <trace.jsonl>`` loads the records written by
:class:`~repro.obs.emitter.JsonlEmitter` and reproduces, from the trace
alone:

* the **Fig. 13 overhead breakdown** — exploration vs system-state creation
  vs soundness-verification wall-time shares, read from the final ``metric``
  record's ``phase_*_s`` fields (the same buckets the checker maintains);
* the **§5.4 soundness profile** — call count, average wall time per call,
  and sequences examined, aggregated over ``soundness`` and
  ``worker_verify`` spans (so sequential and parallel runs read the same);
* span counts/durations per name, final counters, and per-worker totals
  for multiprocess runs.

Rendering reuses :func:`repro.stats.reporting.format_table`, keeping
trace-report output in the same monospace-table dialect as the benches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.profiling import overhead_breakdown
from repro.obs.progress import ProgressEstimate, estimate_progress, format_eta
from repro.stats.reporting import format_table

#: Span names counted into the §5.4 soundness profile.
_SOUNDNESS_SPANS = ("soundness", "worker_verify")


def load_trace(
    path: str, tolerate_truncated_tail: bool = True
) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into record dicts, in file order.

    Blank lines are skipped; a malformed line raises ``ValueError`` naming
    its line number — except, by default, when it is the file's *final*
    non-blank line.  A process killed mid-write leaves exactly one
    truncated record at the tail, and a trace that ends that way is still
    worth reporting on; a malformed line anywhere earlier is corruption
    and still fails loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_content = 0
    for lineno, line in enumerate(lines, start=1):
        if line.strip():
            last_content = lineno
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerate_truncated_tail and lineno == last_content:
                break
            raise ValueError(f"{path}:{lineno}: malformed trace record: {exc}")
    return records


@dataclass
class TraceSummary:
    """Aggregated view over one trace's records."""

    records: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_file(cls, path: str) -> "TraceSummary":
        """Load and summarise a JSONL trace file."""
        return cls(load_trace(path))

    # -- selectors -------------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """All span records, optionally filtered by name, in causal (ts) order."""
        found = [
            record
            for record in self.records
            if record.get("kind") == "span"
            and (name is None or record.get("name") == name)
        ]
        return sorted(found, key=lambda record: record.get("ts", 0.0))

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """All event records, optionally filtered by name."""
        return [
            record
            for record in self.records
            if record.get("kind") == "event"
            and (name is None or record.get("name") == name)
        ]

    def final_metric(self) -> Optional[Dict[str, Any]]:
        """The last ``metric`` record's fields — the run's final counters."""
        for record in reversed(self.records):
            if record.get("kind") == "metric":
                return dict(record.get("fields", {}))
        return None

    # -- derived profiles ------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Fig. 13 phase buckets, from the final metric's ``phase_*_s`` fields."""
        final = self.final_metric() or {}
        return {
            key[len("phase_") : -len("_s")]: float(value)
            for key, value in final.items()
            if key.startswith("phase_") and key.endswith("_s")
        }

    def soundness_profile(self) -> Dict[str, float]:
        """§5.4 aggregate: calls, total/average wall time, sequences examined."""
        calls = 0
        total_s = 0.0
        sequences = 0
        for span in self.spans():
            if span.get("name") not in _SOUNDNESS_SPANS:
                continue
            calls += 1
            total_s += float(span.get("dur_s", 0.0))
            fields = span.get("fields", {})
            sequences += int(fields.get("sequences", fields.get("combinations", 0)))
        return {
            "calls": calls,
            "total_s": total_s,
            "avg_ms": (total_s / calls * 1000.0) if calls else 0.0,
            "sequences": sequences,
        }

    def progress_profile(self) -> Optional[ProgressEstimate]:
        """Frontier-growth fit over the trace's metric samples.

        Rebuilds the same :func:`~repro.obs.progress.estimate_progress`
        model the live heartbeats carry, from the per-depth ``metric``
        records (depth, elapsed, transitions) and the depth bound the
        ``run_start`` event advertised.  For a trace from a killed run —
        where no final counters exist — this is the report's forecast of
        what the run still had ahead of it.
        """
        samples = []
        for record in self.records:
            if record.get("kind") != "metric":
                continue
            fields = record.get("fields", {})
            depth = fields.get("depth")
            work = fields.get("transitions")
            if depth is None or work is None:
                continue
            samples.append(
                (int(depth), float(fields.get("elapsed_s", 0.0)), float(work))
            )
        max_depth: Optional[int] = None
        for event in self.events("run_start"):
            bound = event.get("fields", {}).get("max_depth")
            if bound is not None:
                max_depth = int(bound)
        return estimate_progress(samples, max_depth)

    def worker_profile(self) -> List[Dict[str, Any]]:
        """Per-process totals over forwarded ``worker_verify`` spans."""
        by_pid: Dict[int, Dict[str, Any]] = {}
        for span in self.spans("worker_verify"):
            pid = span.get("pid", 0)
            entry = by_pid.setdefault(
                pid, {"pid": pid, "units": 0, "total_s": 0.0}
            )
            entry["units"] += 1
            entry["total_s"] += float(span.get("dur_s", 0.0))
        return sorted(by_pid.values(), key=lambda entry: entry["pid"])

    def health_profile(self) -> Dict[str, Any]:
        """Pool & cache health: interner hit rate, evictions, parallel rounds.

        Pulls together the operational gauges a long run's trace carries but
        the paper tables don't surface: the hash interner's hit rate (the
        last ``hash_cache`` event — the interner is process-global, so the
        last snapshot is the authoritative one), rejected-cache evictions
        and the two cache-hit counters from the final metric, and the
        parallel-exploration round/shard/sync-miss totals from
        ``parallel_round`` events.
        """
        health: Dict[str, Any] = {}
        caches = self.events("hash_cache")
        if caches:
            fields = caches[-1].get("fields", {})
            hits = int(fields.get("hits", 0))
            misses = int(fields.get("misses", 0))
            health["intern_hits"] = hits
            health["intern_misses"] = misses
            health["intern_evictions"] = int(fields.get("evictions", 0))
            health["intern_entries"] = int(fields.get("entries", 0))
            health["intern_hit_rate"] = (
                hits / (hits + misses) if hits + misses else 0.0
            )
        final = self.final_metric() or {}
        for counter in (
            "sequence_cache_hits",
            "replay_cache_hits",
            "rejected_cache_evictions",
            "explore_rounds_parallel",
            "explore_shards",
            "explore_merge_conflicts_suppressed",
        ):
            if counter in final:
                health[counter] = int(final[counter])
        rounds = self.events("parallel_round")
        if rounds:
            fields_of = [record.get("fields", {}) for record in rounds]
            health["parallel_round_events"] = len(rounds)
            health["parallel_items"] = sum(
                int(fields.get("items", 0)) for fields in fields_of
            )
            health["parallel_sync_misses"] = sum(
                int(fields.get("sync_misses", 0)) for fields in fields_of
            )
        return health

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        """The full ``repro trace-report`` text: all tables, ready to print."""
        sections: List[str] = []

        phases = self.phase_seconds()
        if phases:
            rows = [
                (name, seconds, f"{share * 100:.1f}%")
                for name, seconds, share in overhead_breakdown(phases)
            ]
            sections.append(
                "Overhead breakdown (Fig. 13)\n"
                + format_table(["phase", "seconds", "share"], rows)
            )

        profile = self.soundness_profile()
        if profile["calls"]:
            sections.append(
                "Soundness verification profile (§5.4)\n"
                + format_table(
                    ["calls", "sequences", "total s", "avg ms/call"],
                    [
                        (
                            int(profile["calls"]),
                            int(profile["sequences"]),
                            profile["total_s"],
                            profile["avg_ms"],
                        )
                    ],
                )
            )

        estimate = self.progress_profile()
        if estimate is not None and estimate.growth_factor is not None:
            finished = bool(self.events("run_end"))
            progress_rows = [
                ("deepest depth", estimate.depth),
                ("depth bound", estimate.max_depth or "-"),
                ("growth per depth", f"x{estimate.growth_factor:.2f}"),
                (
                    "rate",
                    f"{estimate.rate_per_s:.0f} transitions/s"
                    if estimate.rate_per_s
                    else "-",
                ),
            ]
            if not finished and estimate.max_depth is not None:
                # Only a truncated trace still has a future to forecast.
                if estimate.fraction_done is not None:
                    progress_rows.append(
                        ("est. fraction done", f"{estimate.fraction_done * 100:.1f}%")
                    )
                progress_rows.append(("est. remaining", format_eta(estimate.eta_s)))
            sections.append(
                "Progress & growth model\n"
                + format_table(["quantity", "value"], progress_rows)
            )

        span_rows = self._span_rows()
        if span_rows:
            sections.append(
                "Spans\n" + format_table(["span", "count", "total s"], span_rows)
            )

        workers = self.worker_profile()
        if workers:
            sections.append(
                "Workers\n"
                + format_table(
                    ["pid", "units", "total s"],
                    [(w["pid"], w["units"], w["total_s"]) for w in workers],
                )
            )

        health = self.health_profile()
        if health:
            health_rows = []
            for key, value in sorted(health.items()):
                if key == "intern_hit_rate":
                    health_rows.append((key, f"{value * 100:.1f}%"))
                else:
                    health_rows.append((key, value))
            sections.append(
                "Pool & cache health\n"
                + format_table(["gauge", "value"], health_rows)
            )

        final = self.final_metric()
        if final:
            counter_rows = [
                (key, value)
                for key, value in sorted(final.items())
                if not (key.startswith("phase_") and key.endswith("_s"))
            ]
            sections.append(
                "Final counters\n" + format_table(["counter", "value"], counter_rows)
            )

        if not sections:
            return "(empty trace: no spans, events, or metrics)"
        return "\n\n".join(sections)

    def _span_rows(self) -> List[tuple]:
        totals: Dict[str, List[float]] = {}
        for span in self.spans():
            entry = totals.setdefault(span.get("name", "?"), [0, 0.0])
            entry[0] += 1
            entry[1] += float(span.get("dur_s", 0.0))
        return [
            (name, int(count), seconds)
            for name, (count, seconds) in sorted(totals.items())
        ]
