"""State-space coverage accounting: which protocol transitions really ran.

A verdict of "no bug found" is only as strong as the space actually
explored.  This module counts, deterministically, what the checker
exercised — per message type delivered, per internal action fired, per
invariant checked, per fault event injected — and compares it against the
protocol's *declared* handler universe, so ``repro coverage`` can flag
transitions the run never touched (a dead handler, an unreachable action,
a fault schedule the bounds excluded).

The discipline matches the rest of :mod:`repro.obs`: hot paths hold a
tracker whose ``enabled`` flag gates all field computation, and the shared
:data:`NULL_COVERAGE` singleton makes a disabled instrumentation point cost
one attribute read — counters, verdicts and witnesses are byte-identical
with coverage off.

The declared universe comes from the optional protocol hooks
``coverage_message_types()`` / ``coverage_action_names()`` (dispatched
structurally by :func:`repro.protocols.common.declared_message_types`, like
the durability contract).  Protocols that declare nothing still get
exercised-only reports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.stats.reporting import format_table

#: Schema version stamped on serialized coverage reports.
COVERAGE_VERSION = 1


class CoverageTracker:
    """Mutable per-run coverage counters (one per checker run).

    Counting is by handler execution — a delivery that turns out to be a
    no-op still exercised the handler, which is exactly what coverage is
    asking.  All keys are plain strings so the dict serializes as-is.
    """

    #: Hot paths consult this to skip key computation entirely.
    enabled: bool = True

    def __init__(self) -> None:
        #: Executions of the message handler, keyed by payload type name.
        self.message_types: Dict[str, int] = {}
        #: Executions of the internal handler, keyed by action name.
        self.actions: Dict[str, int] = {}
        #: Invariant evaluations, keyed by invariant class name.
        self.invariant_checks: Dict[str, int] = {}
        #: Preliminary violations, keyed by invariant class name.
        self.invariant_violations: Dict[str, int] = {}
        #: Fault events executed, keyed by ``"crash:<node>"``/``"restart:<node>"``.
        self.faults: Dict[str, int] = {}

    # -- recording hooks (checker hot paths) -----------------------------------

    def note_delivery(self, payload_type: str) -> None:
        self.message_types[payload_type] = (
            self.message_types.get(payload_type, 0) + 1
        )

    def note_action(self, name: str) -> None:
        self.actions[name] = self.actions.get(name, 0) + 1

    def note_invariant(self, name: str, violated: bool) -> None:
        self.invariant_checks[name] = self.invariant_checks.get(name, 0) + 1
        if violated:
            self.invariant_violations[name] = (
                self.invariant_violations.get(name, 0) + 1
            )

    def note_fault(self, kind: str, node: Any) -> None:
        key = f"{kind}:{node}"
        self.faults[key] = self.faults.get(key, 0) + 1

    # -- reporting --------------------------------------------------------------

    def as_dict(
        self,
        declared_messages: Optional[Tuple[str, ...]] = None,
        declared_actions: Optional[Tuple[str, ...]] = None,
    ) -> Dict[str, Any]:
        """JSON-ready coverage report, with the declared universe attached."""
        return {
            "version": COVERAGE_VERSION,
            "message_types": dict(self.message_types),
            "actions": dict(self.actions),
            "invariant_checks": dict(self.invariant_checks),
            "invariant_violations": dict(self.invariant_violations),
            "faults": dict(self.faults),
            "universe": {
                "message_types": (
                    list(declared_messages) if declared_messages is not None else None
                ),
                "actions": (
                    list(declared_actions) if declared_actions is not None else None
                ),
            },
        }


class NullCoverage(CoverageTracker):
    """The zero-overhead default: every hook is a no-op."""

    enabled = False

    def note_delivery(self, payload_type: str) -> None:
        pass

    def note_action(self, name: str) -> None:
        pass

    def note_invariant(self, name: str, violated: bool) -> None:
        pass

    def note_fault(self, kind: str, node: Any) -> None:
        pass


#: Process-wide shared no-op tracker; the default for instrumented checkers.
NULL_COVERAGE = NullCoverage()


# -- report analysis ----------------------------------------------------------------


def unexercised(coverage: Dict[str, Any]) -> Dict[str, List[str]]:
    """Declared-but-never-executed handlers, per dimension.

    Only dimensions with a declared universe can have unexercised entries;
    an undeclared universe reports an empty list (nothing to miss against).
    """
    universe = coverage.get("universe") or {}
    missing: Dict[str, List[str]] = {"message_types": [], "actions": []}
    declared_messages = universe.get("message_types")
    if declared_messages:
        counts = coverage.get("message_types") or {}
        missing["message_types"] = sorted(
            name for name in declared_messages if not counts.get(name)
        )
    declared_actions = universe.get("actions")
    if declared_actions:
        counts = coverage.get("actions") or {}
        missing["actions"] = sorted(
            name for name in declared_actions if not counts.get(name)
        )
    return missing


def _dimension_rows(
    counts: Dict[str, int], declared: Optional[List[str]]
) -> List[Tuple[str, int, str]]:
    """Table rows for one dimension: every declared or observed name."""
    names = set(counts)
    if declared:
        names.update(declared)
    rows = []
    for name in sorted(names):
        count = int(counts.get(name, 0))
        if count:
            flag = ""
        elif declared and name in declared:
            flag = "UNEXERCISED"
        else:
            flag = ""
        rows.append((name, count, flag))
    return rows


def render_coverage(coverage: Dict[str, Any]) -> str:
    """The full ``repro coverage`` text: per-dimension tables plus a verdict."""
    universe = coverage.get("universe") or {}
    sections: List[str] = []

    message_rows = _dimension_rows(
        coverage.get("message_types") or {}, universe.get("message_types")
    )
    if message_rows:
        sections.append(
            "Message handlers (by payload type)\n"
            + format_table(["message type", "executions", ""], message_rows)
        )

    action_rows = _dimension_rows(
        coverage.get("actions") or {}, universe.get("actions")
    )
    if action_rows:
        sections.append(
            "Internal actions (by name)\n"
            + format_table(["action", "executions", ""], action_rows)
        )

    checks = coverage.get("invariant_checks") or {}
    if checks:
        violations = coverage.get("invariant_violations") or {}
        sections.append(
            "Invariants\n"
            + format_table(
                ["invariant", "checks", "violations"],
                [
                    (name, int(count), int(violations.get(name, 0)))
                    for name, count in sorted(checks.items())
                ],
            )
        )

    faults = coverage.get("faults") or {}
    if faults:
        sections.append(
            "Fault events\n"
            + format_table(
                ["fault", "executions"],
                [(name, int(count)) for name, count in sorted(faults.items())],
            )
        )

    missing = unexercised(coverage)
    missing_total = sum(len(names) for names in missing.values())
    if missing_total:
        lines = [f"UNEXERCISED transitions: {missing_total}"]
        for dimension, names in sorted(missing.items()):
            for name in names:
                lines.append(f"  {dimension}: {name}")
        sections.append("\n".join(lines))
    elif universe.get("message_types") or universe.get("actions"):
        sections.append("All declared handlers exercised.")

    if not sections:
        return "(no coverage data recorded)"
    return "\n\n".join(sections)
