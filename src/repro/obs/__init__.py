"""Observability: structured tracing, run metrics, and profiling hooks.

The paper's evaluation is entirely quantitative — 157,332 vs 1,186
transitions (§5.1), 773 soundness calls at 45 ms average (§5.4), the
Fig. 10–13 curves — and this package makes the same quantities observable
on a *live* run instead of only after it ends:

* :mod:`repro.obs.emitter` — :class:`TraceEmitter` streams structured JSONL
  span/event/metric records to a file, a callback, or memory; the
  :class:`NullEmitter` default makes every hook a no-op.
* :mod:`repro.obs.metrics` — :class:`RunMetrics` samples
  :class:`~repro.stats.counters.ExplorationStats`, RSS, and the per-phase
  timers into the depth series and the trace at a configurable cadence.
* :mod:`repro.obs.profiling` — context-manager timers that feed the
  Fig. 13 phase buckets and the trace at once.
* :mod:`repro.obs.report` — loads a trace file back and renders the
  Fig. 13 overhead breakdown and the §5.4 soundness profile as tables
  (the ``repro trace-report`` subcommand).
* :mod:`repro.obs.registry` — durable per-run records under
  ``.lmc/runs/<run_id>/`` with atomic heartbeat snapshots, readable from
  other processes (``repro runs`` / ``repro status``).
* :mod:`repro.obs.progress` — fits frontier growth per depth and turns it
  into a fraction-done / ETA estimate for depth-bounded runs.
* :mod:`repro.obs.coverage` — per-handler / message-type / invariant /
  fault exercise counts, with unexercised-transition detection against a
  protocol's declared universe (``repro coverage``).
* :mod:`repro.obs.statusd` — a read-only stdlib HTTP endpoint over the
  run registry (``repro serve-status``).

See ``docs/OBSERVABILITY.md`` for the record schema and a worked example.
"""

from repro.obs.emitter import (
    NULL_EMITTER,
    CallbackEmitter,
    JsonlEmitter,
    MemoryEmitter,
    NullEmitter,
    TraceEmitter,
)
from repro.obs.coverage import NULL_COVERAGE, CoverageTracker, render_coverage
from repro.obs.metrics import RunMetrics, rss_bytes
from repro.obs.profiling import overhead_breakdown, phase_timer
from repro.obs.progress import ProgressEstimate, estimate_progress, format_eta
from repro.obs.registry import RunHandle, RunRecord, RunRegistry
from repro.obs.report import TraceSummary, load_trace

__all__ = [
    "CallbackEmitter",
    "CoverageTracker",
    "JsonlEmitter",
    "MemoryEmitter",
    "NULL_COVERAGE",
    "NULL_EMITTER",
    "NullEmitter",
    "ProgressEstimate",
    "RunHandle",
    "RunMetrics",
    "RunRecord",
    "RunRegistry",
    "TraceEmitter",
    "TraceSummary",
    "estimate_progress",
    "format_eta",
    "load_trace",
    "overhead_breakdown",
    "phase_timer",
    "render_coverage",
    "rss_bytes",
]
