"""Observability: structured tracing, run metrics, and profiling hooks.

The paper's evaluation is entirely quantitative — 157,332 vs 1,186
transitions (§5.1), 773 soundness calls at 45 ms average (§5.4), the
Fig. 10–13 curves — and this package makes the same quantities observable
on a *live* run instead of only after it ends:

* :mod:`repro.obs.emitter` — :class:`TraceEmitter` streams structured JSONL
  span/event/metric records to a file, a callback, or memory; the
  :class:`NullEmitter` default makes every hook a no-op.
* :mod:`repro.obs.metrics` — :class:`RunMetrics` samples
  :class:`~repro.stats.counters.ExplorationStats`, RSS, and the per-phase
  timers into the depth series and the trace at a configurable cadence.
* :mod:`repro.obs.profiling` — context-manager timers that feed the
  Fig. 13 phase buckets and the trace at once.
* :mod:`repro.obs.report` — loads a trace file back and renders the
  Fig. 13 overhead breakdown and the §5.4 soundness profile as tables
  (the ``repro trace-report`` subcommand).

See ``docs/OBSERVABILITY.md`` for the record schema and a worked example.
"""

from repro.obs.emitter import (
    NULL_EMITTER,
    CallbackEmitter,
    JsonlEmitter,
    MemoryEmitter,
    NullEmitter,
    TraceEmitter,
)
from repro.obs.metrics import RunMetrics, rss_bytes
from repro.obs.profiling import overhead_breakdown, phase_timer
from repro.obs.report import TraceSummary, load_trace

__all__ = [
    "CallbackEmitter",
    "JsonlEmitter",
    "MemoryEmitter",
    "NULL_EMITTER",
    "NullEmitter",
    "RunMetrics",
    "TraceEmitter",
    "TraceSummary",
    "load_trace",
    "overhead_breakdown",
    "phase_timer",
    "rss_bytes",
]
