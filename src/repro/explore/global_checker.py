"""The global model checking baseline (§3.2): exhaustive search over global states.

This is the classic approach the paper compares against: every explored state
is a full global state ``(L, I)`` — system state plus in-flight messages —
and every network mutation mints a fresh global state.  The checker is sound
(every visited state is reachable, so every violation is real) and complete
up to its bounds, but hits exponential explosion almost immediately; that
explosion *is* the paper's motivation and the B-DFS curves of Figs. 10-12.

Three strategies share one expansion engine:

* ``bfs`` — layered breadth-first search.  With visited-state deduplication
  it visits exactly the states bounded DFS visits up to any depth, and it
  yields the per-depth samples Figs. 10-12 plot, so it is the default for
  benchmarking.
* ``dfs`` — a single bounded depth-first pass (the literal B-DFS of §3.2).
* ``iddfs`` — iterative-deepening DFS: B-DFS restarted with a growing bound,
  the shape MaceMC actually runs; per-bound cumulative times make a series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.explore.budget import BudgetClock, SearchBudget
from repro.invariants.base import Invariant
from repro.model.events import DeliveryEvent, Event, InternalEvent, is_fault_event
from repro.model.multiset import FrozenMultiset
from repro.model.protocol import Protocol
from repro.model.system_state import GlobalState, SystemState
from repro.model.types import LocalAssertionError, Message
from repro.reports import BugReport, CheckResult
from repro.stats.counters import ExplorationStats
from repro.stats.series import DepthSeries

#: Deterministic memory model: bytes charged per visited-set entry (a 64-bit
#: state hash plus table overhead) and per predecessor-map entry.  These
#: mirror how the MaceMC prototype stores hashes rather than full states.
HASH_ENTRY_BYTES = 16
PARENT_ENTRY_BYTES = 24

#: How many transitions to execute between budget re-checks.
_BUDGET_CHECK_INTERVAL = 256


def enumerate_events(protocol: Protocol, state: GlobalState) -> Tuple[Event, ...]:
    """All events enabled in a global state, in deterministic order.

    Delivery events for each *distinct* in-flight message come first (in the
    network's canonical order), then internal actions per node in node-id
    order.
    """
    events: List[Event] = [
        DeliveryEvent(message) for message in state.network.distinct()
    ]
    for node, node_state in state.system.items():
        for action in protocol.enabled_actions(node_state):
            events.append(InternalEvent(action))
    return tuple(events)


def apply_event(
    protocol: Protocol, state: GlobalState, event: Event
) -> Optional[GlobalState]:
    """Successor global state after executing ``event``, or None for a no-op.

    A no-op arises only from internal actions that change nothing; a message
    delivery always consumes the message, so it always produces a distinct
    global state.  Local assertion failures propagate to the caller: in the
    sound global search they are genuine bugs.
    """
    if isinstance(event, DeliveryEvent):
        message = event.message
        result = protocol.handle_message(state.system.get(message.dest), message)
        return state.deliver(message, result.state, result.sends)
    if is_fault_event(event):
        # Fault events (docs/FAULTS.md): Protocol.execute applies the
        # durability/omission contracts.  Crash and restart never send;
        # drop hooks and duplicate redeliveries may, so the handler's
        # sends are forwarded like any local step.
        result = protocol.execute(state.system.get(event.node), event)
        return state.run_internal(event.node, result.state, result.sends)
    result = protocol.handle_action(state.system.get(event.node), event.action)
    if result.is_noop(state.system.get(event.node)):
        return None
    return state.run_internal(event.node, result.state, result.sends)


class GlobalModelChecker:
    """Exhaustive checker over global states with pluggable search strategy."""

    def __init__(
        self,
        protocol: Protocol,
        invariant: Invariant,
        budget: SearchBudget = SearchBudget.unbounded(),
        strategy: str = "bfs",
        record_series: bool = True,
        stop_on_first_bug: bool = True,
    ):
        if strategy not in ("bfs", "dfs", "iddfs"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.protocol = protocol
        self.invariant = invariant
        self.budget = budget
        self.strategy = strategy
        self.record_series = record_series
        self.stop_on_first_bug = stop_on_first_bug

    # -- public API ---------------------------------------------------------

    def run(self, initial_system: Optional[SystemState] = None) -> CheckResult:
        """Search from ``initial_system`` (default: the protocol's initial state).

        The network starts empty — when restarting from a live snapshot the
        online framework treats in-flight messages as lost, which the lossy
        network model already permits.
        """
        if initial_system is None:
            initial_system = self.protocol.initial_system_state()
        initial = GlobalState(initial_system, FrozenMultiset())
        if self.strategy == "bfs":
            return self._run_bfs(initial)
        if self.strategy == "dfs":
            return self._run_dfs(initial, self.budget.max_depth)
        return self._run_iddfs(initial)

    # -- BFS ------------------------------------------------------------------

    def _run_bfs(self, initial: GlobalState) -> CheckResult:
        stats = ExplorationStats()
        clock = BudgetClock(self.budget)
        series = DepthSeries("B-DFS") if self.record_series else None
        result = CheckResult(
            algorithm="B-DFS", completed=False, stats=stats, series=series
        )
        visited: Dict[int, int] = {}
        parents: Dict[int, Tuple[Optional[int], Optional[Event]]] = {}
        retained = 0

        initial_hash = hash(initial)
        visited[initial_hash] = 0
        parents[initial_hash] = (None, None)
        stats.global_states = 1
        retained += HASH_ENTRY_BYTES + PARENT_ENTRY_BYTES
        self._check_state(initial, initial_hash, parents, initial.system, result)
        if result.bugs and self.stop_on_first_bug:
            result.stop_reason = "bug found"
            self._record_depth(series, 0, clock, stats, retained, [initial])
            return result

        frontier: List[Tuple[GlobalState, int]] = [(initial, initial_hash)]
        depth = 0
        self._record_depth(series, depth, clock, stats, retained, [s for s, _ in frontier])
        while frontier:
            if not clock.depth_allowed(depth + 1):
                result.completed = True
                result.stop_reason = "depth bound reached"
                return result
            next_frontier: List[Tuple[GlobalState, int]] = []
            for state, state_hash in frontier:
                for event in enumerate_events(self.protocol, state):
                    reason = self._budget_reason(clock, stats)
                    if reason:
                        result.stop_reason = reason
                        return result
                    successor = self._execute(
                        state, state_hash, event, parents, result, stats
                    )
                    if successor is None:
                        continue
                    succ_hash = hash(successor)
                    if succ_hash in visited:
                        continue
                    visited[succ_hash] = depth + 1
                    parents[succ_hash] = (state_hash, event)
                    stats.global_states += 1
                    retained += HASH_ENTRY_BYTES + PARENT_ENTRY_BYTES
                    next_frontier.append((successor, succ_hash))
                    self._check_state(
                        successor, succ_hash, parents, initial.system, result
                    )
                    if result.bugs and self.stop_on_first_bug:
                        result.stop_reason = "bug found"
                        self._record_depth(
                            series, depth + 1, clock, stats, retained,
                            [s for s, _ in next_frontier],
                        )
                        return result
            depth += 1
            frontier = next_frontier
            if frontier:
                self._record_depth(
                    series, depth, clock, stats, retained, [s for s, _ in frontier]
                )
        result.completed = True
        result.stop_reason = "state space exhausted"
        return result

    # -- DFS --------------------------------------------------------------------

    def _run_dfs(self, initial: GlobalState, bound: Optional[int]) -> CheckResult:
        stats = ExplorationStats()
        clock = BudgetClock(self.budget)
        result = CheckResult(algorithm="B-DFS", completed=False, stats=stats)
        self._dfs_pass(initial, bound, clock, stats, result)
        if not result.stop_reason:
            result.completed = True
            result.stop_reason = "state space exhausted"
        return result

    def _run_iddfs(self, initial: GlobalState) -> CheckResult:
        stats = ExplorationStats()
        clock = BudgetClock(self.budget)
        series = DepthSeries("B-DFS") if self.record_series else None
        result = CheckResult(
            algorithm="B-DFS", completed=False, stats=stats, series=series
        )
        bound = 0
        max_bound = self.budget.max_depth
        while max_bound is None or bound <= max_bound:
            pass_stats = ExplorationStats()
            visited_count, saturated = self._dfs_pass(
                initial, bound, clock, pass_stats, result
            )
            stats.merge(pass_stats)
            if result.stop_reason:
                return result
            retained = visited_count * (HASH_ENTRY_BYTES + PARENT_ENTRY_BYTES)
            if series is not None:
                metrics = stats.snapshot()
                metrics["memory_bytes"] = retained
                metrics["global_states"] = visited_count
                series.record(bound, clock.elapsed(), metrics)
            if result.bugs and self.stop_on_first_bug:
                result.stop_reason = "bug found"
                return result
            if saturated:
                result.completed = True
                result.stop_reason = "state space exhausted"
                return result
            bound += 1
        result.completed = True
        result.stop_reason = "depth bound reached"
        return result

    def _dfs_pass(
        self,
        initial: GlobalState,
        bound: Optional[int],
        clock: BudgetClock,
        stats: ExplorationStats,
        result: CheckResult,
    ) -> Tuple[int, bool]:
        """One bounded DFS pass.  Returns (visited states, saturated?).

        ``saturated`` is True when no path was cut off by the bound, i.e. the
        reachable state space was exhausted within it.
        """
        visited: Dict[int, int] = {}
        parents: Dict[int, Tuple[Optional[int], Optional[Event]]] = {}
        initial_hash = hash(initial)
        visited[initial_hash] = 0
        parents[initial_hash] = (None, None)
        stats.global_states += 1
        self._check_state(initial, initial_hash, parents, initial.system, result)
        if result.bugs and self.stop_on_first_bug:
            return len(visited), False
        saturated = True
        stack: List[Tuple[GlobalState, int, int]] = [(initial, initial_hash, 0)]
        while stack:
            state, state_hash, depth = stack.pop()
            if bound is not None and depth >= bound:
                if enumerate_events(self.protocol, state):
                    saturated = False
                continue
            for event in enumerate_events(self.protocol, state):
                reason = self._budget_reason(clock, stats)
                if reason:
                    result.stop_reason = reason
                    return len(visited), False
                successor = self._execute(
                    state, state_hash, event, parents, result, stats
                )
                if successor is None:
                    continue
                succ_hash = hash(successor)
                known_depth = visited.get(succ_hash)
                if known_depth is not None and known_depth <= depth + 1:
                    continue
                visited[succ_hash] = depth + 1
                parents[succ_hash] = (state_hash, event)
                if known_depth is None:
                    stats.global_states += 1
                    self._check_state(
                        successor, succ_hash, parents, initial.system, result
                    )
                    if result.bugs and self.stop_on_first_bug:
                        return len(visited), False
                stack.append((successor, succ_hash, depth + 1))
        return len(visited), saturated

    # -- shared helpers -----------------------------------------------------------

    def _execute(
        self,
        state: GlobalState,
        state_hash: int,
        event: Event,
        parents: Dict[int, Tuple[Optional[int], Optional[Event]]],
        result: CheckResult,
        stats: ExplorationStats,
    ) -> Optional[GlobalState]:
        try:
            successor = apply_event(self.protocol, state, event)
        except LocalAssertionError as exc:
            stats.transitions += 1
            trace = self._rebuild_trace(parents, state_hash) + (event,)
            result.bugs.append(
                BugReport(
                    kind="local-assertion",
                    description=str(exc),
                    violating_state=state.system,
                    trace=trace,
                    initial_state=state.system,
                )
            )
            stats.confirmed_bugs += 1
            return None
        if successor is None:
            stats.noop_executions += 1
            return None
        stats.transitions += 1
        return successor

    def _check_state(
        self,
        state: GlobalState,
        state_hash: int,
        parents: Dict[int, Tuple[Optional[int], Optional[Event]]],
        initial_system: SystemState,
        result: CheckResult,
    ) -> None:
        result.stats.invariant_checks += 1
        if self.invariant.check(state.system):
            return
        trace = self._rebuild_trace(parents, state_hash)
        result.bugs.append(
            BugReport(
                kind="invariant",
                description=self.invariant.describe_violation(state.system),
                violating_state=state.system,
                trace=trace,
                initial_state=initial_system,
            )
        )
        result.stats.confirmed_bugs += 1

    @staticmethod
    def _rebuild_trace(
        parents: Dict[int, Tuple[Optional[int], Optional[Event]]],
        state_hash: int,
    ) -> Tuple[Event, ...]:
        events: List[Event] = []
        cursor: Optional[int] = state_hash
        while cursor is not None:
            parent, event = parents[cursor]
            if event is not None:
                events.append(event)
            cursor = parent
        events.reverse()
        return tuple(events)

    def _budget_reason(
        self, clock: BudgetClock, stats: ExplorationStats
    ) -> Optional[str]:
        if stats.transitions % _BUDGET_CHECK_INTERVAL:
            # Only consult the wall clock periodically; the cheap counter
            # bounds are evaluated every time.
            budget = self.budget
            if (
                budget.max_transitions is not None
                and stats.transitions >= budget.max_transitions
            ):
                return "transition budget exhausted"
            if (
                budget.max_states is not None
                and stats.global_states >= budget.max_states
            ):
                return "state budget exhausted"
            return None
        return clock.stop_reason(stats.transitions, stats.global_states)

    def _record_depth(
        self,
        series: Optional[DepthSeries],
        depth: int,
        clock: BudgetClock,
        stats: ExplorationStats,
        retained_hash_bytes: int,
        frontier: List[GlobalState],
    ) -> None:
        if series is None:
            return
        metrics = stats.snapshot()
        # Consumed memory is a high-water mark: the visited-hash table only
        # grows, and the frontier's peak footprint is what the process had
        # to hold (Fig. 12 plots "increased memory size").
        current = retained_hash_bytes + sum(
            state.retained_bytes() for state in frontier
        )
        self._peak_memory = max(getattr(self, "_peak_memory", 0), current)
        metrics["memory_bytes"] = self._peak_memory
        series.record(depth, clock.elapsed(), metrics)
