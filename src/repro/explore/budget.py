"""Search budgets and stop criteria.

Both checkers terminate "upon exceeding some bounds, such as running time or
search depth" (Fig. 9, ``StopCriterion``).  :class:`SearchBudget` bundles the
bounds; :class:`BudgetClock` is the per-run stopwatch that evaluates them.
Online model checking (§3.3) leans on the time bound: the checker gets a few
seconds between restarts, so running out of budget is the *normal* way a run
ends there.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SearchBudget:
    """Bounds on a single checker run; ``None`` disables a bound.

    ``max_depth`` bounds the number of events in any explored sequence;
    ``max_seconds`` bounds wall-clock time; ``max_transitions`` bounds
    handler executions (a deterministic alternative to wall-clock for
    reproducible tests); ``max_states`` bounds visited states (global states
    for the global checker, node states for LMC).
    """

    max_depth: Optional[int] = None
    max_seconds: Optional[float] = None
    max_transitions: Optional[int] = None
    max_states: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_depth", "max_transitions", "max_states"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ValueError(f"max_seconds must be >= 0, got {self.max_seconds}")

    @classmethod
    def unbounded(cls) -> "SearchBudget":
        """A budget with every bound disabled (exhaustive search)."""
        return cls()

    @classmethod
    def depth(cls, max_depth: int) -> "SearchBudget":
        """Depth-only budget."""
        return cls(max_depth=max_depth)

    @classmethod
    def seconds(cls, max_seconds: float, max_depth: Optional[int] = None) -> "SearchBudget":
        """Time budget, optionally also depth-bounded (the online-MC shape)."""
        return cls(max_depth=max_depth, max_seconds=max_seconds)


class BudgetClock:
    """Evaluates a :class:`SearchBudget` against a running search."""

    def __init__(self, budget: SearchBudget, already_elapsed: float = 0.0):
        self.budget = budget
        #: ``already_elapsed`` pre-ages the clock: a resumed run
        #: (docs/CHECKPOINTS.md) continues from the checkpointed elapsed
        #: time, so ``max_seconds`` bounds total work, not work-since-resume,
        #: and the depth series stays monotonic across the restore.
        self._start = time.perf_counter() - already_elapsed

    def elapsed(self) -> float:
        """Seconds since the clock started."""
        return time.perf_counter() - self._start

    def out_of_time(self) -> bool:
        """True when the wall-clock bound is exhausted."""
        limit = self.budget.max_seconds
        return limit is not None and self.elapsed() >= limit

    def depth_allowed(self, depth: int) -> bool:
        """True when exploring at ``depth`` is within the depth bound."""
        limit = self.budget.max_depth
        return limit is None or depth <= limit

    def stop_reason(self, transitions: int, states: int) -> Optional[str]:
        """The first exceeded bound as a human-readable label, else None."""
        if self.out_of_time():
            return "time budget exhausted"
        limit = self.budget.max_transitions
        if limit is not None and transitions >= limit:
            return "transition budget exhausted"
        limit = self.budget.max_states
        if limit is not None and states >= limit:
            return "state budget exhausted"
        return None
