"""Global model checking baseline: exhaustive search over global states."""

from repro.explore.budget import BudgetClock, SearchBudget
from repro.explore.global_checker import (
    GlobalModelChecker,
    apply_event,
    enumerate_events,
)

__all__ = [
    "BudgetClock",
    "GlobalModelChecker",
    "SearchBudget",
    "apply_event",
    "enumerate_events",
]
