"""Discrete-event live-run simulator: the "running system" of Fig. 6.

Online model checking needs a live distributed system to snapshot.  This
simulator executes a protocol over a lossy network with randomised latencies
(the UDP + 30% drop environment of §5.5), firing nodes' internal actions
according to a pluggable :class:`~repro.online.driver.LiveDriver` policy
(propose-then-sleep, probabilistic fault detection, …).

Everything is driven by a single seeded :class:`random.Random`, so a live
run — and therefore every snapshot it produces — is a pure function of its
seed.  Simulated time is decoupled from wall-clock: a "1150 second" live run
(§5.5) executes in milliseconds.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.model.protocol import Protocol
from repro.model.system_state import SystemState
from repro.model.types import Action, LocalAssertionError, Message, NodeId
from repro.network.lossy import LossyNetwork
from repro.online.driver import LiveDriver


@dataclass(frozen=True)
class TraceEntry:
    """One executed live event, for debugging and tests."""

    time: float
    kind: str  # "deliver" | "action"
    description: str


class LiveRun:
    """A running distributed system that can be stepped and snapshotted."""

    def __init__(
        self,
        protocol: Protocol,
        driver: LiveDriver,
        seed: int = 0,
        drop_probability: float = 0.0,
        min_latency: float = 0.01,
        max_latency: float = 0.1,
        initial_system: Optional[SystemState] = None,
        keep_trace: bool = False,
    ):
        self.protocol = protocol
        self.driver = driver
        self.rng = random.Random(seed)
        self.network = LossyNetwork(
            self.rng,
            drop_probability=drop_probability,
            min_latency=min_latency,
            max_latency=max_latency,
        )
        if initial_system is None:
            initial_system = protocol.initial_system_state()
        self._states: Dict[NodeId, Any] = {
            node: state for node, state in initial_system.items()
        }
        self.now = 0.0
        self.events_executed = 0
        self.assertion_failures = 0
        self.keep_trace = keep_trace
        self.trace: List[TraceEntry] = []
        self._timer_queue: List[Tuple[float, int, Action]] = []
        self._tiebreak = itertools.count()
        self._scheduled: Dict[Tuple[NodeId, str, Any], float] = {}
        for node in sorted(self._states):
            self._poll_actions(node)

    # -- public API ------------------------------------------------------------

    def snapshot(self) -> SystemState:
        """The current live system state (what CrystalBall would ship to LMC)."""
        return SystemState(dict(self._states))

    def run_until(self, deadline: float) -> None:
        """Advance simulated time to ``deadline``, executing due events."""
        while True:
            next_time = self._next_event_time()
            if next_time is None or next_time > deadline:
                break
            self._step(next_time)
        self.now = max(self.now, deadline)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.run_until(self.now + duration)

    def idle(self) -> bool:
        """True when no deliveries or timers are pending."""
        return self._next_event_time() is None

    def inject_action(self, action: Action, delay: float = 0.0) -> None:
        """Schedule an application call (e.g. a driver-injected proposal).

        The action is executed through the protocol's internal handler even
        if it is not in ``enabled_actions`` — this models application calls
        that exist only in the live system, like the §5.5 proposal injector.
        """
        heapq.heappush(
            self._timer_queue, (self.now + delay, next(self._tiebreak), action)
        )

    # -- internals -----------------------------------------------------------------

    def _next_event_time(self) -> Optional[float]:
        times = []
        delivery = self.network.next_delivery_time()
        if delivery is not None:
            times.append(delivery)
        if self._timer_queue:
            times.append(self._timer_queue[0][0])
        return min(times) if times else None

    def _step(self, event_time: float) -> None:
        self.now = event_time
        message = self.network.pop_due(self.now)
        if message is not None:
            self._deliver(message)
            return
        _, _, action = heapq.heappop(self._timer_queue)
        self._fire_action(action)

    def _deliver(self, message: Message) -> None:
        node = message.dest
        try:
            result = self.protocol.handle_message(self._states[node], message)
        except LocalAssertionError:
            self.assertion_failures += 1
            return
        self._apply(node, result.state, result.sends)
        self.events_executed += 1
        if self.keep_trace:
            self.trace.append(
                TraceEntry(self.now, "deliver", message.describe())
            )

    def _fire_action(self, action: Action) -> None:
        node = action.node
        self._scheduled.pop((node, action.name, action.payload), None)
        # The state may have moved on; fire only if the protocol would still
        # offer this action (injected application calls bypass this check).
        enabled = self.protocol.enabled_actions(self._states[node])
        if action in enabled or action.name.startswith("inject"):
            try:
                result = self.protocol.handle_action(self._states[node], action)
            except LocalAssertionError:
                self.assertion_failures += 1
                return
            self._apply(node, result.state, result.sends)
            self.events_executed += 1
            if self.keep_trace:
                self.trace.append(
                    TraceEntry(self.now, "action", action.describe())
                )
        self._poll_actions(node)

    def _apply(self, node: NodeId, new_state: Any, sends: Tuple[Message, ...]) -> None:
        self._states[node] = new_state
        for message in sends:
            self.network.send(message, self.now)
        self._poll_actions(node)

    def _poll_actions(self, node: NodeId) -> None:
        """Ask the driver to schedule any enabled-but-unscheduled actions."""
        for action in self.protocol.enabled_actions(self._states[node]):
            key = (node, action.name, action.payload)
            if key in self._scheduled:
                continue
            delay = self.driver.schedule(action, self.now, self.rng)
            if delay is None:
                continue
            fire_at = self.now + delay
            self._scheduled[key] = fire_at
            heapq.heappush(
                self._timer_queue, (fire_at, next(self._tiebreak), action)
            )
