"""Online model checking: live runs, drivers, snapshots, restart loop (§3.3)."""

from repro.online.crystalball import (
    OnlineCheckResult,
    OnlineModelChecker,
    RestartRecord,
)
from repro.online.driver import (
    ImmediateDriver,
    LiveDriver,
    Rule,
    RuleDriver,
    SelectiveDriver,
    onepaxos_online_driver,
    paxos_online_driver,
)
from repro.online.injector import (
    FreshIndexInjector,
    OnePaxosTestDriver,
    PaxosTestDriver,
    scan_indexes,
)
from repro.online.simulator import LiveRun, TraceEntry

__all__ = [
    "ImmediateDriver",
    "LiveDriver",
    "LiveRun",
    "OnlineCheckResult",
    "OnlineModelChecker",
    "FreshIndexInjector",
    "OnePaxosTestDriver",
    "PaxosTestDriver",
    "RestartRecord",
    "Rule",
    "RuleDriver",
    "SelectiveDriver",
    "TraceEntry",
    "scan_indexes",
    "onepaxos_online_driver",
    "paxos_online_driver",
]
