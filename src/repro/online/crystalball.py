"""The online model checking loop (§3.3, Fig. 6): our CrystalBall substitute.

"An online model checker is restarted periodically from the live state of a
running system.  As a consequence, the model checker has a chance to explore
more relevant states at deeper levels, instead of getting stuck in the
exponential explosion problem at some very shallow depths."

:class:`OnlineModelChecker` interleaves a :class:`~repro.online.simulator.LiveRun`
with periodic checker runs: every ``check_interval`` simulated seconds the
live state is snapshotted and handed to a checker factory (typically an LMC
with a small time budget); the loop stops at the first confirmed bug or when
the simulated-time budget runs out.  The §5.5 result — "the bug was detected
after 1150 seconds" — is this loop's detection time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.model.system_state import SystemState
from repro.obs.emitter import NULL_EMITTER, TraceEmitter
from repro.online.simulator import LiveRun
from repro.reports import BugReport, CheckResult

#: Builds and runs a checker against a live snapshot.
CheckerFactory = Callable[[SystemState], CheckResult]

#: Optional hook invoked before each snapshot (driver injections etc.).
IntervalHook = Callable[[LiveRun], None]


@dataclass
class RestartRecord:
    """Summary of one checker restart."""

    sim_time: float
    wall_seconds: float
    node_states: int
    preliminary_violations: int
    found_bug: bool


@dataclass
class OnlineCheckResult:
    """Outcome of an online checking session."""

    bug: Optional[BugReport] = None
    detection_sim_time: Optional[float] = None
    restarts: int = 0
    total_checking_seconds: float = 0.0
    history: List[RestartRecord] = field(default_factory=list)

    @property
    def found_bug(self) -> bool:
        """True when some restart confirmed a bug."""
        return self.bug is not None


class OnlineModelChecker:
    """Periodic restart-from-live-state checking."""

    def __init__(
        self,
        live: LiveRun,
        checker_factory: CheckerFactory,
        check_interval: float = 60.0,
        interval_hook: Optional[IntervalHook] = None,
        emitter: Optional[TraceEmitter] = None,
        run_handle=None,
    ):
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.live = live
        self.checker_factory = checker_factory
        self.check_interval = check_interval
        self.interval_hook = interval_hook
        #: Trace sink: each checker restart becomes a ``restart`` span
        #: (nesting the checker's own spans when the factory shares the
        #: emitter), and a confirmed detection a ``detection`` event.
        self.emitter = emitter if emitter is not None else NULL_EMITTER
        #: Run-registry handle (docs/OBSERVABILITY.md "Live operations"):
        #: the online loop heartbeats once per restart — simulated time,
        #: restart count, and the last restart's checker summary.
        self.run_handle = run_handle

    def run(
        self,
        max_sim_seconds: float,
        max_restarts: Optional[int] = None,
    ) -> OnlineCheckResult:
        """Run the live system, checking every interval, until bug or budget."""
        outcome = OnlineCheckResult()
        while self.live.now < max_sim_seconds:
            if max_restarts is not None and outcome.restarts >= max_restarts:
                break
            if self.interval_hook is not None:
                self.interval_hook(self.live)
            self.live.run_for(self.check_interval)
            snapshot = self.live.snapshot()
            started = time.perf_counter()
            with self.emitter.span(
                "restart", number=outcome.restarts, sim_time=self.live.now
            ) as span:
                result = self.checker_factory(snapshot)
                span.add(
                    node_states=result.stats.node_states,
                    preliminary_violations=result.stats.preliminary_violations,
                    found_bug=result.found_bug,
                )
            wall = time.perf_counter() - started
            outcome.restarts += 1
            outcome.total_checking_seconds += wall
            if self.run_handle is not None:
                self.run_handle.heartbeat(
                    {
                        "sim_time": self.live.now,
                        "restarts": outcome.restarts,
                        "checking_seconds": outcome.total_checking_seconds,
                        "node_states": result.stats.node_states,
                        "transitions": result.stats.transitions,
                        "preliminary_violations": (
                            result.stats.preliminary_violations
                        ),
                        "found_bug": result.found_bug,
                    }
                )
            outcome.history.append(
                RestartRecord(
                    sim_time=self.live.now,
                    wall_seconds=wall,
                    node_states=result.stats.node_states,
                    preliminary_violations=result.stats.preliminary_violations,
                    found_bug=result.found_bug,
                )
            )
            if result.found_bug:
                outcome.bug = result.first_bug()
                outcome.detection_sim_time = self.live.now
                if self.emitter.enabled:
                    # The §5.5 headline number ("the bug was detected after
                    # 1150 seconds"), straight off the trace.
                    self.emitter.event(
                        "detection",
                        sim_time=self.live.now,
                        restarts=outcome.restarts,
                    )
                return outcome
        return outcome
