"""Live-run drivers: when nodes fire their internal actions.

The protocols expose *which* internal actions are enabled; a driver decides
*when* the live system executes them — the application behaviour of the
paper's online experiments:

* §5.5: "each node proposes its Id for a new index and then sleeps for a
  random time between 0 and 60 s" → a uniform-delay rule on ``propose``;
* §5.6: "the application instead of proposing a value triggers the fault
  detector with the probability of 0.1" → a probabilistic rule on
  ``suspect``.

Probabilistic firing is modelled with a geometric distribution: an action
polled every ``period`` seconds and fired with probability ``p`` per poll
fires after ``period × Geometric(p)`` seconds, so one scheduling decision
captures the whole retry loop.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.model.types import Action


class LiveDriver(ABC):
    """Decides the firing delay of an enabled internal action.

    ``schedule`` returns the delay (in simulated seconds) after which the
    action should fire, or ``None`` to never fire it.  The simulator asks
    once per (node, action) while the action stays enabled.
    """

    @abstractmethod
    def schedule(
        self, action: Action, now: float, rng: random.Random
    ) -> Optional[float]:
        """Delay before firing ``action``, or None to suppress it."""


@dataclass(frozen=True)
class Rule:
    """Scheduling policy for one action name.

    The fire delay is ``uniform(min_delay, max_delay)``; when
    ``probability < 1`` the delay additionally includes ``period`` seconds
    per failed poll, geometrically distributed.
    """

    min_delay: float = 0.0
    max_delay: float = 0.0
    probability: float = 1.0
    period: float = 1.0

    def sample_delay(self, rng: random.Random) -> Optional[float]:
        """One concrete delay drawn from this rule."""
        if self.probability <= 0.0:
            return None
        delay = rng.uniform(self.min_delay, self.max_delay)
        if self.probability < 1.0:
            # Geometric number of failed polls before the success.
            failures = math.floor(
                math.log(max(rng.random(), 1e-12))
                / math.log(1.0 - self.probability)
            )
            delay += failures * self.period
        return delay


class RuleDriver(LiveDriver):
    """Per-action-name rules with a default.

    Unlisted actions use ``default`` (immediate fire when None is not
    given); pass ``default=None`` to suppress unlisted actions entirely.
    """

    def __init__(
        self,
        rules: Dict[str, Rule],
        default: Optional[Rule] = Rule(),
    ):
        self.rules = dict(rules)
        self.default = default

    def schedule(
        self, action: Action, now: float, rng: random.Random
    ) -> Optional[float]:
        rule = self.rules.get(action.name, self.default)
        if rule is None:
            return None
        return rule.sample_delay(rng)


def paxos_online_driver(max_sleep: float = 60.0) -> RuleDriver:
    """The §5.5 application: init promptly, propose then sleep U(0, max_sleep)."""
    return RuleDriver(
        {
            "init": Rule(min_delay=0.0, max_delay=1.0),
            "propose": Rule(min_delay=0.0, max_delay=max_sleep),
            "retry": Rule(min_delay=2.0, max_delay=10.0),
        }
    )


def onepaxos_online_driver(
    suspect_probability: float = 0.1, poll_period: float = 5.0
) -> RuleDriver:
    """The §5.6 application: fault detector fires with probability 0.1."""
    return RuleDriver(
        {
            "init": Rule(min_delay=0.0, max_delay=1.0),
            "propose": Rule(min_delay=0.0, max_delay=10.0),
            "suspect": Rule(
                min_delay=0.0,
                max_delay=poll_period,
                probability=suspect_probability,
                period=poll_period,
            ),
            "retry1": Rule(min_delay=2.0, max_delay=8.0),
            "util-retry": Rule(min_delay=2.0, max_delay=8.0),
        }
    )


class ImmediateDriver(LiveDriver):
    """Fire every enabled action immediately (deterministic fast-forward)."""

    def schedule(
        self, action: Action, now: float, rng: random.Random
    ) -> Optional[float]:
        return 0.0


class SelectiveDriver(LiveDriver):
    """Fire only the listed action names, immediately; suppress the rest."""

    def __init__(self, names: Sequence[str]):
        self.names = frozenset(names)

    def schedule(
        self, action: Action, now: float, rng: random.Random
    ) -> Optional[float]:
        return 0.0 if action.name in self.names else None
