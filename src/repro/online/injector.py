"""Test drivers for the Paxos online experiments (§4.2 "Test driver", §5.5).

Two distinct drivers are at work in the paper's setup:

* **The live application** — "each node proposes its Id for a new index and
  then sleeps for a random time between 0 and 60 s".  The live app never
  contends: every proposal targets a fresh index.
  :class:`FreshIndexInjector` reproduces it as an interval hook on the live
  run.

* **The model checker's test driver** — "the test driver proposes values
  for a particular index.  The index is selected from recent chosen
  proposals, where not all the nodes have learned the proposal yet.
  Otherwise, a new index is used."  Contention — the thing that triggers the
  §5.5 bug — is *injected by the checker*, not observed live.
  :class:`PaxosTestDriver` transforms a live snapshot into the driven
  initial state the checker explores: eligible nodes get a pending proposal
  for the selected index.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Set, Tuple

from repro.model.system_state import SystemState
from repro.model.types import Action, NodeId
from repro.online.simulator import LiveRun
from repro.protocols.common import tm_keys
from repro.protocols.paxos.state import PaxosNodeState


def _chosen_indexes(state: PaxosNodeState) -> Set[int]:
    return {
        index
        for index in tm_keys(state.learners)
        if state.chosen_value(index) is not None
    }


def _known_indexes(state: PaxosNodeState) -> Set[int]:
    return (
        set(tm_keys(state.learners))
        | set(tm_keys(state.acceptors))
        | set(tm_keys(state.proposers))
        | {index for index, _value in state.pending}
    )


def scan_indexes(snapshot: SystemState) -> Tuple[Set[int], int]:
    """``(half-learned indexes, max known index)`` of a snapshot.

    An index is *half-learned* when some node has chosen a value for it but
    not all nodes have — "recent chosen proposals, where not all the nodes
    have learned the proposal yet".
    """
    chosen_somewhere: Set[int] = set()
    chosen_everywhere: Optional[Set[int]] = None
    max_index = -1
    for _node, state in snapshot.items():
        node_chosen = _chosen_indexes(state)
        chosen_somewhere |= node_chosen
        if chosen_everywhere is None:
            chosen_everywhere = set(node_chosen)
        else:
            chosen_everywhere &= node_chosen
        known = _known_indexes(state)
        if known:
            max_index = max(max_index, max(known))
    half_learned = chosen_somewhere - (chosen_everywhere or set())
    return half_learned, max_index


class FreshIndexInjector:
    """Live application behaviour: propose the node's id at a new index.

    Called as an online-checking interval hook; injects one application call
    per interval, round-robin over the nodes, always at a fresh index.
    """

    def __init__(self, value_prefix: str = "v"):
        self.value_prefix = value_prefix
        self._next_proposer = 0

    def __call__(self, live: LiveRun) -> None:
        snapshot = live.snapshot()
        node_ids = snapshot.node_ids
        node = node_ids[self._next_proposer % len(node_ids)]
        self._next_proposer += 1
        _half, max_index = scan_indexes(snapshot)
        action = Action(
            node=node,
            name="inject",
            payload=(max_index + 1, f"{self.value_prefix}{node}"),
        )
        live.inject_action(action)


class PaxosTestDriver:
    """The checker-side test driver: contend on a half-learned index.

    ``drive(snapshot)`` returns the initial state the checker should explore:
    one node that has not yet proposed at the selected index receives a
    pending proposal of its own value there — the highest-id eligible node,
    whose ballot dominates every first-round ballot, so its proposition is
    never silently rejected.  A single contender keeps the checker's state
    space at the one-extra-proposal size (§5.1) instead of the multi-proposal
    explosion of §5.2 — the "careful design of the test driver" trade-off.
    When no half-learned index exists, a fresh-index proposal is added
    instead (round-robin), so the checker always has something to exercise.
    """

    def __init__(self, value_prefix: str = "v"):
        self.value_prefix = value_prefix
        self._next_proposer = 0

    def drive(self, snapshot: SystemState) -> SystemState:
        half_learned, max_index = scan_indexes(snapshot)
        if half_learned:
            index = self._select_contended_index(snapshot, half_learned)
            eligible = [
                node
                for node, state in snapshot.items()
                if self._eligible(state, index)
            ]
            if eligible:
                contender = max(eligible)
                driven = dict(snapshot.items())
                state = driven[contender]
                driven[contender] = replace(
                    state,
                    pending=state.pending
                    + ((index, f"{self.value_prefix}{contender}"),),
                )
                return SystemState(driven)
        node_ids = snapshot.node_ids
        proposer = node_ids[self._next_proposer % len(node_ids)]
        self._next_proposer += 1
        driven = dict(snapshot.items())
        state = driven[proposer]
        driven[proposer] = replace(
            state,
            pending=state.pending
            + ((max_index + 1, f"{self.value_prefix}{proposer}"),),
        )
        return SystemState(driven)

    @staticmethod
    def _eligible(state: PaxosNodeState, index: int) -> bool:
        if state.proposer(index) is not None:
            return False
        return all(pending_index != index for pending_index, _v in state.pending)

    @staticmethod
    def _select_contended_index(snapshot: SystemState, half_learned: Set[int]) -> int:
        """Choose which half-learned index to contend on.

        "Recent chosen proposals" (§4.2): prefer the most recent index, and
        among the candidates prefer one where some acceptor has not yet
        accepted — an acceptor whose empty PrepareResponse is what makes the
        proposal races interesting.  This is the "careful design of the test
        driver" the paper says greatly impacts checking efficiency.
        """
        with_fresh_acceptor = {
            index
            for index in half_learned
            if any(
                state.acceptor(index).accepted_value is None
                for _node, state in snapshot.items()
            )
        }
        if with_fresh_acceptor:
            return max(with_fresh_acceptor)
        return max(half_learned)


class OnePaxosTestDriver:
    """Checker-side test driver for the §5.6 online experiment.

    1Paxos proposals are only issued by nodes that believe they lead, so the
    driver targets exactly the paper's scenario: a *half-chosen* data index
    (some nodes chose, others missed the Learn) is offered to a node that
    believes itself leader and has no value for it — the stale
    leader-by-initialization whose buggy cached acceptor then produces the
    divergent choice.  Without such an index, the current believed leader
    gets a fresh-index proposal, keeping the session productive.
    """

    def __init__(self, value_prefix: str = "w"):
        self.value_prefix = value_prefix

    def drive(self, snapshot: SystemState) -> SystemState:
        chosen_somewhere: Set[int] = set()
        chosen_everywhere: Optional[Set[int]] = None
        max_index = -1
        for _node, state in snapshot.items():
            node_chosen = {index for index, _v in state.chosen1}
            chosen_somewhere |= node_chosen
            if chosen_everywhere is None:
                chosen_everywhere = set(node_chosen)
            else:
                chosen_everywhere &= node_chosen
            for index, _v in state.accepted1:
                max_index = max(max_index, index)
            for index in node_chosen:
                max_index = max(max_index, index)
        half_chosen = chosen_somewhere - (chosen_everywhere or set())
        driven = dict(snapshot.items())
        self_leaders = [
            node
            for node, state in snapshot.items()
            if state.believed_leader() == node
        ]
        for index in sorted(half_chosen, reverse=True):
            for node in self_leaders:
                state = snapshot.get(node)
                if state.chosen_value(index) is None and all(
                    p_index != index for p_index, _v in state.pending
                ):
                    driven[node] = replace(
                        state,
                        pending=state.pending
                        + ((index, f"{self.value_prefix}{node}"),),
                    )
                    return SystemState(driven)
        # No half-chosen target: propose a fresh index on behalf of EVERY
        # node that believes itself leader.  After a partially observed
        # LeaderChange two such nodes coexist (the stale
        # leader-by-initialization and the utility-elected one) — driving
        # both onto the same index is exactly the contention the buggy
        # cached acceptor turns into divergent choices.
        for node in self_leaders:
            state = driven[node]
            driven[node] = replace(
                state,
                pending=state.pending
                + ((max_index + 1, f"{self.value_prefix}{node}"),),
            )
        return SystemState(driven)

