"""Shared helpers for protocol state machines.

Protocol node states must be immutable and hashable, so per-index role state
(Paxos decrees, log slots, …) is kept in *tuple maps*: sorted tuples of
``(key, value)`` pairs with functional update.  These helpers keep that idiom
terse and uniform across protocols.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

#: A sorted immutable mapping as a tuple of (key, value) pairs.
TupleMap = Tuple[Tuple[Any, Any], ...]


def tm_get(entries: TupleMap, key: Any, default: Any = None) -> Any:
    """Value stored under ``key``, or ``default``."""
    for entry_key, value in entries:
        if entry_key == key:
            return value
    return default


def tm_set(entries: TupleMap, key: Any, value: Any) -> TupleMap:
    """New tuple map with ``key`` bound to ``value`` (insert or replace)."""
    filtered = tuple(entry for entry in entries if entry[0] != key)
    return tuple(sorted(filtered + ((key, value),)))


def tm_contains(entries: TupleMap, key: Any) -> bool:
    """True when ``key`` is bound."""
    return any(entry_key == key for entry_key, _ in entries)


def tm_keys(entries: TupleMap) -> Tuple[Any, ...]:
    """All bound keys, in map order."""
    return tuple(entry_key for entry_key, _ in entries)


def majority_of(count: int) -> int:
    """Size of a strict majority quorum among ``count`` members."""
    if count <= 0:
        raise ValueError("count must be positive")
    return count // 2 + 1


def first_or_none(items: Tuple[Any, ...]) -> Optional[Any]:
    """First element or None for empty tuples."""
    return items[0] if items else None
