"""Shared helpers for protocol state machines.

Protocol node states must be immutable and hashable, so per-index role state
(Paxos decrees, log slots, …) is kept in *tuple maps*: sorted tuples of
``(key, value)`` pairs with functional update.  These helpers keep that idiom
terse and uniform across protocols.

This module also defines the **durability contract** used by the fault
scheduler (docs/FAULTS.md).  A protocol that survives crashes declares which
part of a node state is written to stable storage by implementing two
optional methods::

    def durable_state(self, node, state):  # state -> durable fragment
    def restart_state(self, node, durable):  # durable fragment -> boot state

:func:`durable_projection` and :func:`restart_state` dispatch to those
methods and default to the *all-volatile* semantics — nothing survives a
crash and a restarted node boots from its initial state — so existing
protocols need no change to run under fault schedules.

The **omission contract** works the same way.  A protocol whose nodes
react to a message that never arrives (timeouts, presumed-abort rules)
declares that reaction with one optional method::

    def handle_drop(self, state, message):  # -> HandlerResult

:func:`drop_result` dispatches to it; the default returns ``None``,
meaning the destination is *drop-oblivious* — losing a message then
reaches no node state a slower network could not already reach under the
monotonic abstraction, so the scheduler skips the drop entirely.

The **coverage contract** (docs/OBSERVABILITY.md "Live operations") works
the same way: a protocol may declare its full handler universe with two
optional methods::

    def coverage_message_types(self):  # -> tuple of payload type names
    def coverage_action_names(self):   # -> tuple of action names

:func:`declared_message_types` and :func:`declared_action_names` dispatch
to them, returning ``None`` for protocols that declare nothing — coverage
reports then show exercised handlers only, with no unexercised analysis.

The **symmetry contract** (docs/REDUCTION.md) is the third optional hook
family.  A protocol whose verdicts are invariant under renaming some of its
nodes may declare those interchangeable classes::

    def symmetry_classes(self):        # -> tuple of tuples of NodeId
    def rename_state(self, state, mapping):  # state under a node renaming

Declaring a class ``(a, b, ...)`` asserts full *equivariance*: renaming the
class members everywhere (initial states, handlers, invariant) permutes
executions without changing verdicts.  :func:`declared_symmetry_classes`
and :func:`renamed_state` dispatch to the hooks; ``rename_state`` may be
omitted when every occurrence of a node id inside the state is structurally
distinguishable from other integers, in which case the generic walker
:func:`repro.model.hashing.substitute_node_ids` is used (see its caveat).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.model.types import NodeId


def durable_projection(protocol: Any, node: NodeId, state: Any) -> Any:
    """The durable fragment of ``state`` that survives a crash of ``node``.

    Dispatches to the protocol's optional ``durable_state(node, state)``
    method.  The default is all-volatile: ``None`` — a crash loses
    everything, which is sound (it only under-approximates what stable
    storage would preserve) but explores harsher recoveries than a real
    deployment with disks.  The fragment must be immutable and
    content-hashable; crashes with equal fragments dedupe into one crashed
    ``LS_n`` entry.
    """
    hook = getattr(protocol, "durable_state", None)
    if hook is None:
        return None
    return hook(node, state)


def restart_state(protocol: Any, node: NodeId, durable: Any) -> Any:
    """The node state ``node`` boots into when restarted from ``durable``.

    Dispatches to the protocol's optional ``restart_state(node, durable)``
    method.  The default reboots from ``protocol.initial_state(node)``,
    discarding the (``None``) fragment — consistent with the all-volatile
    default of :func:`durable_projection`.
    """
    hook = getattr(protocol, "restart_state", None)
    if hook is None:
        return protocol.initial_state(node)
    return hook(node, durable)


def drop_result(protocol: Any, state: Any, message: Any) -> Optional[Any]:
    """How ``message.dest`` reacts to never receiving ``message``.

    Dispatches to the protocol's optional ``handle_drop(state, message)``
    method — the timeout/negative-acknowledgement path a real
    implementation takes when an expected message is lost.  The hook has
    the same purity/totality contract as ``handle_message`` and may raise
    :class:`~repro.model.types.LocalAssertionError`.  ``None`` (no hook)
    means the protocol is drop-oblivious and the fault scheduler mints no
    :class:`~repro.model.events.DropEvent` for it: under the monotonic
    network a silent omission adds no reachable states.
    """
    hook = getattr(protocol, "handle_drop", None)
    if hook is None:
        return None
    return hook(state, message)


def declared_message_types(protocol: Any) -> Optional[Tuple[str, ...]]:
    """Message payload type names the protocol declares as its universe.

    Dispatches to the optional ``coverage_message_types()`` method; ``None``
    (no declaration) means coverage reports cannot know what was *missed*,
    only what ran.  Names are payload ``type(...).__name__`` strings —
    exactly what the coverage tracker records.
    """
    hook = getattr(protocol, "coverage_message_types", None)
    if hook is None:
        return None
    return tuple(hook())


def declared_action_names(protocol: Any) -> Optional[Tuple[str, ...]]:
    """Internal action names the protocol declares as its universe.

    Dispatches to the optional ``coverage_action_names()`` method; same
    semantics as :func:`declared_message_types`.
    """
    hook = getattr(protocol, "coverage_action_names", None)
    if hook is None:
        return None
    return tuple(hook())


def declared_symmetry_classes(
    protocol: Any,
) -> Optional[Tuple[Tuple[NodeId, ...], ...]]:
    """Node-symmetry classes the protocol declares (docs/REDUCTION.md).

    Dispatches to the optional ``symmetry_classes()`` method.  Each class is
    a tuple of node ids the protocol asserts are interchangeable: renaming
    them consistently everywhere yields the same executions and verdicts.
    Classes with fewer than two members are dropped (a singleton admits only
    the identity renaming); ``None`` — no hook, or nothing left — means the
    symmetry reducer stays disabled even when the config knob is on.
    """
    hook = getattr(protocol, "symmetry_classes", None)
    if hook is None:
        return None
    classes = tuple(
        tuple(members) for members in hook() if len(tuple(members)) >= 2
    )
    return classes or None


def renamed_state(protocol: Any, state: Any, mapping: Any) -> Any:
    """``state`` under the node renaming ``mapping`` (a NodeId → NodeId dict).

    Dispatches to the protocol's optional ``rename_state(state, mapping)``
    method.  Protocols whose states embed node ids ambiguously (a Paxos
    ballot's proposer field is an int like any other) must implement the
    hook; states where every node id is structurally distinguishable may
    rely on the default, the generic structural walker
    :func:`repro.model.hashing.substitute_node_ids`.
    """
    hook = getattr(protocol, "rename_state", None)
    if hook is None:
        from repro.model.hashing import substitute_node_ids

        return substitute_node_ids(state, mapping)
    return hook(state, mapping)


#: A sorted immutable mapping as a tuple of (key, value) pairs.
TupleMap = Tuple[Tuple[Any, Any], ...]


def tm_get(entries: TupleMap, key: Any, default: Any = None) -> Any:
    """Value stored under ``key``, or ``default``."""
    for entry_key, value in entries:
        if entry_key == key:
            return value
    return default


def tm_set(entries: TupleMap, key: Any, value: Any) -> TupleMap:
    """New tuple map with ``key`` bound to ``value`` (insert or replace)."""
    filtered = tuple(entry for entry in entries if entry[0] != key)
    return tuple(sorted(filtered + ((key, value),)))


def tm_contains(entries: TupleMap, key: Any) -> bool:
    """True when ``key`` is bound."""
    return any(entry_key == key for entry_key, _ in entries)


def tm_keys(entries: TupleMap) -> Tuple[Any, ...]:
    """All bound keys, in map order."""
    return tuple(entry_key for entry_key, _ in entries)


def majority_of(count: int) -> int:
    """Size of a strict majority quorum among ``count`` members."""
    if count <= 0:
        raise ValueError("count must be positive")
    return count // 2 + 1


def first_or_none(items: Tuple[Any, ...]) -> Optional[Any]:
    """First element or None for empty tuples."""
    return items[0] if items else None
