"""RandTree: a tree-membership protocol with a node-local invariant.

The paper uses RandTree as its example of an invariant decomposable into
locally verifiable properties: "in RandTree distributed tree structure, one
invariant specifies that in all node states the children and siblings must
be disjoint sets" (§4.1).  Such invariants never need system-state creation
at all — LMC checks them on node states directly, the cheapest case of the
invariant-specific machinery.

The protocol here is a deterministic distillation of Mace's RandTree: nodes
join through the root; a node with spare fanout adopts the joiner, tells it
its siblings, and notifies the existing children; a full node forwards the
join request to its first child.  :class:`SiblingMixupRandTree` injects a
bookkeeping bug — the adopting parent also adds the new child to its own
sibling set — which violates the disjointness invariant locally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from repro.invariants.base import LocalInvariant
from repro.model.protocol import Protocol, ProtocolConfigError
from repro.model.types import Action, HandlerResult, Message, NodeId


@dataclass(frozen=True)
class JoinRequest:
    """A joiner (``joiner``) asks to be adopted somewhere under the root."""

    joiner: NodeId


@dataclass(frozen=True)
class Welcome:
    """Adoption notice: ``parent`` adopted the receiver; ``siblings`` are its peers."""

    parent: NodeId
    siblings: FrozenSet[NodeId]


@dataclass(frozen=True)
class SiblingNotice:
    """An existing child learns about its new sibling."""

    sibling: NodeId


@dataclass(frozen=True)
class RandTreeNodeState:
    """Local membership view: parent, children and siblings."""

    node: NodeId
    joined: bool = False
    requested: bool = False
    parent: Optional[NodeId] = None
    children: FrozenSet[NodeId] = frozenset()
    siblings: FrozenSet[NodeId] = frozenset()


class RandTreeProtocol(Protocol):
    """Join-through-the-root tree membership with bounded fanout."""

    name = "randtree"

    def __init__(self, num_nodes: int = 4, root: NodeId = 0, fanout: int = 2):
        if num_nodes < 2:
            raise ProtocolConfigError("randtree needs at least two nodes")
        if fanout < 1:
            raise ProtocolConfigError("fanout must be >= 1")
        self._node_ids = tuple(range(num_nodes))
        if root not in self._node_ids:
            raise ProtocolConfigError(f"root {root} not a node")
        self.root = root
        self.fanout = fanout

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> RandTreeNodeState:
        return RandTreeNodeState(node=node, joined=(node == self.root))

    def enabled_actions(self, state: RandTreeNodeState) -> Tuple[Action, ...]:
        if state.node != self.root and not state.requested:
            return (Action(node=state.node, name="join"),)
        return ()

    def handle_action(self, state: RandTreeNodeState, action: Action) -> HandlerResult:
        if action.name != "join" or state.requested or state.node == self.root:
            return HandlerResult(state)
        request = Message(
            dest=self.root,
            src=state.node,
            payload=JoinRequest(joiner=state.node),
        )
        return HandlerResult(replace(state, requested=True), (request,))

    def handle_message(self, state: RandTreeNodeState, message: Message) -> HandlerResult:
        payload = message.payload
        if isinstance(payload, JoinRequest):
            return self._on_join_request(state, payload)
        if isinstance(payload, Welcome):
            return self._on_welcome(state, payload)
        if isinstance(payload, SiblingNotice):
            return self._on_sibling_notice(state, payload)
        return HandlerResult(state)

    def _on_join_request(
        self, state: RandTreeNodeState, request: JoinRequest
    ) -> HandlerResult:
        joiner = request.joiner
        if joiner == state.node or joiner in state.children:
            return HandlerResult(state)
        if not state.joined:
            # Not part of the tree yet (a forwarded request raced our own
            # join): ignore; the joiner's request to the root still stands.
            return HandlerResult(state)
        if len(state.children) >= self.fanout:
            forward_to = min(state.children)
            forward = Message(dest=forward_to, src=state.node, payload=request)
            return HandlerResult(state, (forward,))
        siblings = state.children
        sends = [
            Message(
                dest=joiner,
                src=state.node,
                payload=Welcome(parent=state.node, siblings=siblings),
            )
        ]
        for child in sorted(state.children):
            sends.append(
                Message(
                    dest=child,
                    src=state.node,
                    payload=SiblingNotice(sibling=joiner),
                )
            )
        new_state = self._adopt(state, joiner)
        return HandlerResult(new_state, tuple(sends))

    def _adopt(self, state: RandTreeNodeState, joiner: NodeId) -> RandTreeNodeState:
        """The parent's bookkeeping when adopting ``joiner`` (overridden by the bug)."""
        return replace(state, children=state.children | {joiner})

    def _on_welcome(self, state: RandTreeNodeState, welcome: Welcome) -> HandlerResult:
        if state.joined:
            return HandlerResult(state)
        return HandlerResult(
            replace(
                state,
                joined=True,
                parent=welcome.parent,
                siblings=welcome.siblings,
            )
        )

    def _on_sibling_notice(
        self, state: RandTreeNodeState, notice: SiblingNotice
    ) -> HandlerResult:
        if notice.sibling == state.node or notice.sibling in state.siblings:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, siblings=state.siblings | {notice.sibling})
        )


class SiblingMixupRandTree(RandTreeProtocol):
    """RandTree with an injected bookkeeping bug.

    The adopting parent also records its new *child* in its own *sibling*
    set — children and siblings stop being disjoint on the parent, violating
    :class:`ChildrenSiblingsDisjoint` locally.
    """

    name = "randtree-sibling-mixup"

    def _adopt(self, state: RandTreeNodeState, joiner: NodeId) -> RandTreeNodeState:
        return replace(
            state,
            children=state.children | {joiner},
            siblings=state.siblings | {joiner},
        )


class ChildrenSiblingsDisjoint(LocalInvariant):
    """Every node's children and siblings are disjoint sets (§4.1)."""

    name = "randtree-children-siblings-disjoint"

    def check_local(self, node: NodeId, state: RandTreeNodeState) -> bool:
        return not (state.children & state.siblings)

    def describe_violation(self, system) -> str:  # type: ignore[override]
        overlapping = {
            node: sorted(state.children & state.siblings)
            for node, state in system.items()
            if state.children & state.siblings
        }
        return f"children/siblings overlap: {overlapping}"
