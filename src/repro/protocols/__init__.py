"""Protocols under test: every system the paper checks or mentions."""
