"""FIFO (simulated-TCP) wrapping of arbitrary protocols — the §4.3 idea.

"Although, TCP could be considered as part of the protocol stack, in
practice this is not efficient, and TCP is usually simulated in the model
checker.  To do so, LMC implementation should be also augmented to benefit
from the fact that reordered messages in a connection will eventually be
rejected by TCP and could, hence, be ignored, saving some unnecessary
handler executions in the model checker."

:class:`FifoStampedProtocol` wraps any protocol: outgoing messages are
stamped with per-``(src, dest)`` sequence numbers and the receiver tracks
per-channel delivery counters.  Two modes:

* ``reject`` — an out-of-order delivery is a no-op (the §4.3 optimisation).
  Designed for **LMC**, whose monotonic network re-offers the message to the
  later node states whose counters have caught up; under consuming (global)
  semantics a rejected message would be lost, so the global checker should
  use ``reassemble`` instead.
* ``reassemble`` — out-of-order messages are buffered in the node state and
  flushed in order, an explicit TCP reassembly queue.  Sound under both
  checkers, at the cost of extra states for the buffer contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.invariants.base import Invariant
from repro.model.hashing import canonical_bytes
from repro.model.protocol import Protocol
from repro.model.types import Action, HandlerResult, Message, NodeId
from repro.protocols.common import TupleMap, tm_get, tm_set


@dataclass(frozen=True)
class Stamped:
    """An inner payload with its per-channel sequence number."""

    seq: int
    inner: Any


@dataclass(frozen=True)
class FifoState:
    """Wrapper state: the inner state plus per-channel counters.

    ``next_seq`` maps destination node to the next outgoing sequence number;
    ``delivered`` maps source node to the count of in-order deliveries;
    ``stash`` (reassemble mode) holds out-of-order ``(src, seq, inner)``
    triples awaiting their turn.
    """

    inner: Any
    next_seq: TupleMap = ()
    delivered: TupleMap = ()
    stash: Tuple[Tuple[NodeId, int, Any], ...] = ()


class FifoStampedProtocol(Protocol):
    """Per-channel FIFO semantics layered over any protocol."""

    def __init__(self, inner: Protocol, mode: str = "reject"):
        if mode not in ("reject", "reassemble"):
            raise ValueError(f"mode must be 'reject' or 'reassemble', got {mode!r}")
        self.inner = inner
        self.mode = mode
        self.name = f"{inner.name}+fifo-{mode}"

    # -- Protocol interface ----------------------------------------------------

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self.inner.node_ids()

    def initial_state(self, node: NodeId) -> FifoState:
        return FifoState(inner=self.inner.initial_state(node))

    def enabled_actions(self, state: FifoState) -> Tuple[Action, ...]:
        return self.inner.enabled_actions(state.inner)

    def handle_action(self, state: FifoState, action: Action) -> HandlerResult:
        result = self.inner.handle_action(state.inner, action)
        return self._wrap_result(state, result)

    def handle_message(self, state: FifoState, message: Message) -> HandlerResult:
        payload = message.payload
        if not isinstance(payload, Stamped):
            # Unstamped traffic (e.g. directly injected) passes through.
            result = self.inner.handle_message(state.inner, message)
            return self._wrap_result(state, result)
        expected = tm_get(state.delivered, message.src, 0)
        if payload.seq == expected:
            return self._deliver_in_order(state, message.src, payload.inner)
        if payload.seq < expected:
            return HandlerResult(state)  # duplicate of the past: drop
        if self.mode == "reject":
            # Out of order: TCP would reject it; ignore the delivery.  LMC's
            # monotonic network re-offers the message to later node states.
            return HandlerResult(state)
        # Reassembly: stash until its turn, then flush the run it completes.
        entry = (message.src, payload.seq, payload.inner)
        if entry in state.stash:
            return HandlerResult(state)
        # Canonical stash order: payloads need not be orderable, so break
        # (src, seq) ties by canonical encoding.
        stash = tuple(
            sorted(
                state.stash + (entry,),
                key=lambda e: (e[0], e[1], canonical_bytes(e[2])),
            )
        )
        return self._flush(
            FifoState(
                inner=state.inner,
                next_seq=state.next_seq,
                delivered=state.delivered,
                stash=stash,
            )
        )

    # -- internals ---------------------------------------------------------------

    def _deliver_in_order(
        self, state: FifoState, src: NodeId, inner_payload: Any
    ) -> HandlerResult:
        result = self._deliver_core(state, src, inner_payload)
        if self.mode == "reassemble" and result.state.stash:
            flushed = self._flush(result.state)
            return HandlerResult(flushed.state, result.sends + flushed.sends)
        return result

    def _deliver_core(
        self, state: FifoState, src: NodeId, inner_payload: Any
    ) -> HandlerResult:
        """One in-order delivery to the inner protocol (no stash flushing)."""
        inner_msg = Message(dest=self._node_of(state), src=src, payload=inner_payload)
        result = self.inner.handle_message(state.inner, inner_msg)
        delivered = tm_set(
            state.delivered, src, tm_get(state.delivered, src, 0) + 1
        )
        advanced = FifoState(
            inner=result.state,
            next_seq=state.next_seq,
            delivered=delivered,
            stash=state.stash,
        )
        sends, advanced = self._stamp_sends(advanced, result.sends)
        return HandlerResult(advanced, sends)

    def _flush(self, state: FifoState) -> HandlerResult:
        """Deliver every stashed message that is now in order."""
        sends: List[Message] = []
        changed = True
        while changed:
            changed = False
            for entry in state.stash:
                src, seq, inner_payload = entry
                if seq == tm_get(state.delivered, src, 0):
                    remaining = tuple(e for e in state.stash if e != entry)
                    state = FifoState(
                        inner=state.inner,
                        next_seq=state.next_seq,
                        delivered=state.delivered,
                        stash=remaining,
                    )
                    result = self._deliver_core(state, src, inner_payload)
                    state = result.state
                    sends.extend(result.sends)
                    changed = True
                    break
        return HandlerResult(state, tuple(sends))

    def _stamp_sends(
        self, state: FifoState, sends: Tuple[Message, ...]
    ) -> Tuple[Tuple[Message, ...], FifoState]:
        stamped: List[Message] = []
        next_seq = state.next_seq
        for message in sends:
            seq = tm_get(next_seq, message.dest, 0)
            next_seq = tm_set(next_seq, message.dest, seq + 1)
            stamped.append(
                Message(
                    dest=message.dest,
                    src=message.src,
                    payload=Stamped(seq=seq, inner=message.payload),
                )
            )
        return tuple(stamped), FifoState(
            inner=state.inner,
            next_seq=next_seq,
            delivered=state.delivered,
            stash=state.stash,
        )

    def _wrap_result(self, state: FifoState, result: HandlerResult) -> HandlerResult:
        advanced = FifoState(
            inner=result.state,
            next_seq=state.next_seq,
            delivered=state.delivered,
            stash=state.stash,
        )
        sends, advanced = self._stamp_sends(advanced, result.sends)
        return HandlerResult(advanced, sends)

    @staticmethod
    def _node_of(state: FifoState) -> NodeId:
        node = getattr(state.inner, "node", None)
        if node is None:
            raise TypeError(
                "FifoStampedProtocol requires inner states to expose .node"
            )
        return node


def unwrap_system_state(system):
    """Project a wrapped system state onto the inner protocol's states.

    Lets inner-protocol invariants be evaluated on wrapped runs via
    :class:`UnwrappingInvariant`.
    """
    from repro.model.system_state import SystemState

    return SystemState({node: state.inner for node, state in system.items()})


class UnwrappingInvariant(Invariant):
    """Adapter: evaluate an inner-protocol invariant on wrapped states."""

    def __init__(self, inner_invariant: Invariant):
        self.inner = inner_invariant
        self.name = f"{inner_invariant.name}+unwrap"

    def check(self, system) -> bool:
        return self.inner.check(unwrap_system_state(system))

    def describe_violation(self, system) -> str:
        return self.inner.describe_violation(unwrap_system_state(system))
