"""Echo broadcast: a maximally chatty workload.

LMC "is most effective for the protocols that are chatty, i.e., exchange
lots of messages to service a request" and with "parallel network
activities" (§4.3) — the Accept/Learn broadcasts in Paxos being the paper's
example.  This little protocol distils that structure: an initiator pings
every node; every node answers every ping with a pong to *all* nodes; nodes
count the pongs they see.  All pings and pongs are causally independent, so
the global state space branches factorially while the per-node state spaces
stay tiny — the best case for LMC, used as the chatty end of the
chattiness-ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Tuple

from repro.invariants.base import Invariant
from repro.model.protocol import Protocol, ProtocolConfigError, broadcast
from repro.model.system_state import SystemState
from repro.model.types import Action, HandlerResult, Message, NodeId


@dataclass(frozen=True)
class Ping:
    """The initiator's broadcast request."""


@dataclass(frozen=True)
class Pong:
    """A node's reply to a ping, broadcast to everyone; ``origin`` sent it."""

    origin: NodeId


@dataclass(frozen=True)
class EchoNodeState:
    """Local state: whether we pinged/ponged, and whose pongs we saw."""

    node: NodeId
    pinged: bool = False
    ponged: bool = False
    pongs_seen: FrozenSet[NodeId] = frozenset()


class EchoProtocol(Protocol):
    """One initiator, all-to-all pongs."""

    name = "echo"

    def __init__(self, num_nodes: int = 3, initiator: NodeId = 0):
        if num_nodes < 2:
            raise ProtocolConfigError("echo needs at least two nodes")
        self._node_ids = tuple(range(num_nodes))
        if initiator not in self._node_ids:
            raise ProtocolConfigError(f"initiator {initiator} not a node")
        self.initiator = initiator

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> EchoNodeState:
        return EchoNodeState(node=node)

    def enabled_actions(self, state: EchoNodeState) -> Tuple[Action, ...]:
        if state.node == self.initiator and not state.pinged:
            return (Action(node=state.node, name="ping"),)
        return ()

    # -- symmetry contract (docs/REDUCTION.md) --------------------------------

    def symmetry_classes(self) -> Tuple[Tuple[NodeId, ...], ...]:
        """Every responder (non-initiator) is interchangeable with the others.

        Responders run identical code and the invariant reads only the
        initiator's flag against anonymous pong activity, so renaming
        responders permutes executions without changing verdicts.  Node ids
        occur only in ``node`` and ``pongs_seen`` — both structurally
        distinguishable — so the generic substitution walker renames states.
        """
        responders = tuple(
            node for node in self._node_ids if node != self.initiator
        )
        return (responders,) if len(responders) >= 2 else ()

    def handle_action(self, state: EchoNodeState, action: Action) -> HandlerResult:
        if action.name != "ping" or state.pinged:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, pinged=True),
            broadcast(state.node, self._node_ids, Ping()),
        )

    def handle_message(self, state: EchoNodeState, message: Message) -> HandlerResult:
        payload = message.payload
        if isinstance(payload, Ping):
            if state.ponged:
                return HandlerResult(state)
            return HandlerResult(
                replace(state, ponged=True),
                broadcast(state.node, self._node_ids, Pong(origin=state.node)),
            )
        if isinstance(payload, Pong):
            if payload.origin in state.pongs_seen:
                return HandlerResult(state)
            return HandlerResult(
                replace(state, pongs_seen=state.pongs_seen | {payload.origin})
            )
        return HandlerResult(state)


class PongsImplyPing(Invariant):
    """Nobody observes a pong unless the initiator has pinged.

    True of every real run; violated by Cartesian combinations in which an
    observer's state outruns the initiator's — the echo counterpart of the
    tree primer's ``----r``.
    """

    name = "pongs-imply-ping"

    def __init__(self, initiator: NodeId = 0):
        self.initiator = initiator

    def check(self, system: SystemState) -> bool:
        if system.get(self.initiator).pinged:
            return True
        return all(
            not state.pongs_seen and not state.ponged
            for _node, state in system.items()
        )

    def describe_violation(self, system: SystemState) -> str:
        observers = [
            node
            for node, state in system.items()
            if state.pongs_seen or state.ponged
        ]
        return (
            f"pong activity at nodes {observers} although initiator "
            f"{self.initiator} has not pinged"
        )
