"""The 1Paxos protocol (§5.6), correct and with the initialization bug.

Structure (following [15] as summarised by the paper):

* **Data plane** — the global leader sends ``Propose1`` straight to the
  active acceptor; the single acceptor's acceptance is the decision, which
  it announces to everyone with ``Learn1``.  A re-proposal for a decided
  index is answered by re-sending the ``Learn1`` (the duplicate-message
  source of §4.2).
* **Control plane** — PaxosUtility, a full Paxos instance whose decrees are
  configuration entries (``leader=N`` / ``acceptor=N``).  A node whose fault
  detector fires proposes a LeaderChange naming itself; Paxos arbitrates
  concurrent attempts.
* **Initialization** — "the leader is set to the first node of the members
  and the acceptor is set to the second".  The buggy build reproduces the
  postfix increment mistake ``acceptor = *(members.begin()++)``: the cached
  acceptor ends up being the *first* member — the leader itself — so a node
  that is leader by initialization (and therefore, per the protocol, does
  not consult PaxosUtility) proposes to itself, accepts its own proposal,
  and "learns" a value the rest of the system never saw.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.model.protocol import Protocol, ProtocolConfigError, broadcast
from repro.model.types import Action, HandlerResult, Message, NodeId
from repro.protocols.onepaxos.messages import (
    Learn1,
    Propose1,
    Util,
    Value,
    leader_entry,
)
from repro.protocols.onepaxos.state import OnePaxosNodeState
from repro.protocols.paxos.protocol import PaxosProtocol
from repro.protocols.paxos.state import PaxosNodeState

#: A driver entry: ``(proposer node, decree index, value)`` — issued by the
#: node only while it believes itself leader.
Proposal = Tuple[NodeId, int, Value]


class OnePaxosProtocol(Protocol):
    """1Paxos over ``num_nodes`` nodes with a scripted driver.

    ``fault_suspects`` lists nodes whose fault detector will fire once (the
    §5.6 driver "triggers the fault detector with the probability of 0.1";
    which nodes end up firing is scripted here, and the online simulator
    decides when).  ``buggy_init`` selects the postfix-``++`` build.
    """

    name = "onepaxos"

    def __init__(
        self,
        num_nodes: int = 3,
        proposals: Sequence[Proposal] = (),
        fault_suspects: Tuple[NodeId, ...] = (),
        buggy_init: bool = False,
        require_init: bool = True,
        retransmit: bool = False,
        utility_retransmit: Optional[bool] = None,
    ):
        if num_nodes < 3:
            raise ProtocolConfigError("1Paxos needs at least three nodes")
        self._node_ids = tuple(range(num_nodes))
        self.buggy_init = buggy_init
        self.require_init = require_init
        #: Enable stateless retransmission of outstanding data-plane
        #: ``Propose1`` messages.  Required for live runs over lossy
        #: networks.
        self.retransmit = retransmit
        #: Retransmission of the embedded utility Paxos (``util-retry``
        #: actions).  Defaults to the data-plane setting; the §5.6 online
        #: experiment turns it off — configuration changes there are
        #: fire-and-forget, which is precisely how a node can miss a
        #: LeaderChange and keep believing it leads.
        self.utility_retransmit = (
            retransmit if utility_retransmit is None else utility_retransmit
        )
        self.proposals = tuple(proposals)
        self.fault_suspects = tuple(fault_suspects)
        #: members.begin(): the intended initial leader.
        self.initial_leader: NodeId = self._node_ids[0]
        #: ++members.begin(): the intended (true) initial active acceptor.
        self.initial_acceptor: NodeId = self._node_ids[1]
        # The utility layer: plain Paxos over the same membership, driven
        # programmatically (no scripted driver proposals of its own).
        self.utility = PaxosProtocol(
            num_nodes=num_nodes,
            proposals=(),
            require_init=False,
            retransmit=self.utility_retransmit,
        )
        for node, _index, _value in self.proposals:
            if node not in self._node_ids:
                raise ProtocolConfigError(f"proposal by unknown node {node}")
        for node in self.fault_suspects:
            if node not in self._node_ids:
                raise ProtocolConfigError(f"unknown fault suspect {node}")

    @property
    def name_with_variant(self) -> str:
        """Protocol name including the build variant."""
        return f"{self.name}{'-buggy' if self.buggy_init else ''}"

    # -- Protocol interface -----------------------------------------------------

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> OnePaxosNodeState:
        cached_acceptor = (
            # acceptor = *(members.begin()++): the iterator is incremented
            # *after* dereferencing, so the acceptor is the first member —
            # the same node as the leader.
            self.initial_leader
            if self.buggy_init
            # acceptor = *(++members.begin()): the intended second member.
            else self.initial_acceptor
        )
        return OnePaxosNodeState(
            node=node,
            initialized=not self.require_init,
            pending=tuple(
                (index, value)
                for who, index, value in self.proposals
                if who == node
            ),
            suspect_armed=node in self.fault_suspects,
            cached_leader=self.initial_leader,
            cached_acceptor=cached_acceptor,
            utility=self.utility.initial_state(node),
        )

    def enabled_actions(self, state: OnePaxosNodeState) -> Tuple[Action, ...]:
        if not state.initialized:
            return (Action(node=state.node, name="init"),)
        actions = []
        if state.pending and state.believed_leader() == state.node:
            index, value = state.pending[0]
            actions.append(
                Action(node=state.node, name="propose", payload=(index, value))
            )
        if state.suspect_armed and state.believed_leader() != state.node:
            actions.append(Action(node=state.node, name="suspect"))
        if self.retransmit:
            for index, _value in state.proposed1:
                if state.chosen_value(index) is None:
                    actions.append(
                        Action(node=state.node, name="retry1", payload=index)
                    )
        if self.utility_retransmit:
            for inner_action in self.utility.enabled_actions(state.utility):
                if inner_action.name == "retry":
                    actions.append(
                        Action(
                            node=state.node,
                            name="util-retry",
                            payload=inner_action.payload,
                        )
                    )
        return tuple(actions)

    def handle_action(self, state: OnePaxosNodeState, action: Action) -> HandlerResult:
        if action.name == "init":
            if state.initialized:
                return HandlerResult(state)
            return HandlerResult(replace(state, initialized=True))
        if action.name == "propose":
            return self._propose(state, action.payload)
        if action.name == "suspect":
            return self._suspect(state)
        if action.name == "retry1":
            return self._retry1(state, action.payload)
        if action.name == "util-retry":
            result = self.utility.handle_action(
                state.utility,
                Action(node=state.node, name="retry", payload=action.payload),
            )
            if result.state == state.utility and not result.sends:
                return HandlerResult(state)
            return HandlerResult(
                replace(state, utility=result.state),
                self._wrap_sends(result.sends),
            )
        return HandlerResult(state)

    def _retry1(self, state: OnePaxosNodeState, payload: object) -> HandlerResult:
        """Re-send an outstanding data-plane proposal (stateless)."""
        index = payload  # type: ignore[assignment]
        value = None
        for proposed_index, proposed_value in state.proposed1:
            if proposed_index == index:
                value = proposed_value
                break
        if (
            not self.retransmit
            or value is None
            or state.chosen_value(index) is not None
        ):
            return HandlerResult(state)
        acceptor = state.acceptor_for_proposing(self.initial_acceptor)
        send = Message(
            dest=acceptor,
            src=state.node,
            payload=Propose1(index=index, value=value),
        )
        return HandlerResult(state, (send,))

    def handle_message(self, state: OnePaxosNodeState, message: Message) -> HandlerResult:
        payload = message.payload
        if isinstance(payload, Util):
            return self._on_utility(state, message, payload)
        if isinstance(payload, Propose1):
            return self._on_propose1(state, payload)
        if isinstance(payload, Learn1):
            return self._on_learn1(state, payload)
        return HandlerResult(state)

    # -- data plane ----------------------------------------------------------------

    def _propose(self, state: OnePaxosNodeState, payload: object) -> HandlerResult:
        index, value = payload  # type: ignore[misc]
        if not state.pending or state.pending[0] != (index, value):
            return HandlerResult(state)
        if state.believed_leader() != state.node:
            return HandlerResult(state)
        acceptor = state.acceptor_for_proposing(self.initial_acceptor)
        new_state = replace(state, pending=state.pending[1:])
        if self.retransmit:
            from repro.protocols.common import tm_set

            new_state = replace(
                new_state, proposed1=tm_set(new_state.proposed1, index, value)
            )
        send = Message(
            dest=acceptor,
            src=state.node,
            payload=Propose1(index=index, value=value),
        )
        return HandlerResult(new_state, (send,))

    def _on_propose1(self, state: OnePaxosNodeState, msg: Propose1) -> HandlerResult:
        existing = state.accepted_value(msg.index)
        if existing is not None:
            # Already decided: remind everyone (idempotent re-announcement;
            # the duplicate-message limit of §4.2 curbs the flood).
            return HandlerResult(
                state,
                broadcast(
                    state.node,
                    self._node_ids,
                    Learn1(index=msg.index, value=existing),
                ),
            )
        new_state = state.with_accepted(msg.index, msg.value)
        return HandlerResult(
            new_state,
            broadcast(
                state.node,
                self._node_ids,
                Learn1(index=msg.index, value=msg.value),
            ),
        )

    def _on_learn1(self, state: OnePaxosNodeState, msg: Learn1) -> HandlerResult:
        if state.chosen_value(msg.index) is not None:
            return HandlerResult(state)
        new_state = state.with_chosen(msg.index, msg.value)
        # Retire the outstanding proposal for this index, if any: the decree
        # is decided, so the proposer stops insisting.
        remaining = tuple(
            entry for entry in new_state.proposed1 if entry[0] != msg.index
        )
        if remaining != new_state.proposed1:
            new_state = replace(new_state, proposed1=remaining)
        return HandlerResult(new_state)

    # -- control plane (PaxosUtility over Paxos) -------------------------------------

    def _suspect(self, state: OnePaxosNodeState) -> HandlerResult:
        if not state.suspect_armed or state.believed_leader() == state.node:
            return HandlerResult(state)
        disarmed = replace(state, suspect_armed=False)
        return self._utility_propose(
            disarmed, state.next_utility_index(), leader_entry(state.node)
        )

    def _utility_propose(
        self, state: OnePaxosNodeState, index: int, value: Value
    ) -> HandlerResult:
        """Drive the inner Paxos node to propose ``value`` at ``index``."""
        inner = state.utility
        queued = replace(inner, pending=((index, value),) + inner.pending)
        result = self.utility.handle_action(
            queued,
            Action(node=state.node, name="propose", payload=(index, value)),
        )
        return HandlerResult(
            replace(state, utility=result.state),
            self._wrap_sends(result.sends),
        )

    def _on_utility(
        self, state: OnePaxosNodeState, message: Message, envelope: Util
    ) -> HandlerResult:
        inner_message = Message(
            dest=message.dest, src=message.src, payload=envelope.inner
        )
        result = self.utility.handle_message(state.utility, inner_message)
        if result.state == state.utility and not result.sends:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, utility=result.state),
            self._wrap_sends(result.sends),
        )

    @staticmethod
    def _wrap_sends(sends: Tuple[Message, ...]) -> Tuple[Message, ...]:
        return tuple(
            Message(dest=m.dest, src=m.src, payload=Util(inner=m.payload))
            for m in sends
        )
