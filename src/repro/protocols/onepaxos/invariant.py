"""Safety invariants for 1Paxos.

The invariant installed in §5.6 is the Paxos invariant itself: no two nodes
choose different values for the same index — here over the 1Paxos data-plane
decisions (:class:`OnePaxosAgreement`).  :class:`SingleActiveRoles` adds the
configuration sanity property the paper motivates 1Paxos's design with ("it
is necessary that the acceptor and leader roles to be assigned to two
separate nodes") — a direct check that flags the buggy initialization on the
very first proposing state.
"""

from __future__ import annotations

from typing import Optional

from repro.invariants.base import DecomposableInvariant, LocalInvariant
from repro.model.system_state import SystemState
from repro.model.types import NodeId
from repro.protocols.onepaxos.messages import Value
from repro.protocols.onepaxos.state import OnePaxosNodeState


class OnePaxosAgreement(DecomposableInvariant):
    """No two nodes choose different values for decree ``index``."""

    def __init__(self, index: int = 0):
        self.index = index
        self.name = f"onepaxos-agreement[{index}]"

    def check(self, system: SystemState) -> bool:
        chosen = {
            state.chosen_value(self.index)
            for _node, state in system.items()
            if state.chosen_value(self.index) is not None
        }
        return len(chosen) <= 1

    def describe_violation(self, system: SystemState) -> str:
        choices = {
            node: state.chosen_value(self.index)
            for node, state in system.items()
            if state.chosen_value(self.index) is not None
        }
        return (
            f"1Paxos agreement violated at index {self.index}: "
            f"nodes chose {choices}"
        )

    def local_projection(
        self, node: NodeId, state: OnePaxosNodeState
    ) -> Optional[Value]:
        return state.chosen_value(self.index)


class OnePaxosAgreementAll(DecomposableInvariant):
    """No two nodes choose different values for *any* 1Paxos decree index.

    The multi-index form used by the online experiment, where the test
    driver creates contention at whatever index the session makes
    interesting.  Projections are the chosen ``(index, value)`` pairs, with
    a pairwise custom conflict (two nodes disagreeing on some index).
    """

    name = "onepaxos-agreement[*]"

    def check(self, system: SystemState) -> bool:
        per_index = {}
        for _node, state in system.items():
            for index, value in state.chosen1:
                per_index.setdefault(index, set()).add(value)
        return all(len(values) <= 1 for values in per_index.values())

    def describe_violation(self, system: SystemState) -> str:
        per_index = {}
        for node, state in system.items():
            for index, value in state.chosen1:
                per_index.setdefault(index, {})[node] = value
        conflicting = {
            index: choices
            for index, choices in per_index.items()
            if len(set(choices.values())) > 1
        }
        return f"1Paxos agreement violated: {conflicting}"

    def local_projection(self, node: NodeId, state: OnePaxosNodeState):
        chosen = frozenset(state.chosen1)
        return chosen or None

    def projections_conflict(self, projections) -> bool:
        per_index = {}
        for chosen in projections.values():
            for index, value in chosen:
                per_index.setdefault(index, set()).add(value)
        return any(len(values) > 1 for values in per_index.values())


class SingleActiveRoles(LocalInvariant):
    """A node never addresses *itself* as the active acceptor when leading.

    1Paxos requires the leader and acceptor roles on separate nodes; a node
    about to propose to itself is exactly the buggy-initialization symptom.
    The check is per-node (a :class:`LocalInvariant`), so LMC evaluates it
    without creating system states.
    """

    name = "onepaxos-distinct-roles"

    def __init__(self, true_initial_acceptor: NodeId = 1):
        self.true_initial_acceptor = true_initial_acceptor

    def check_local(self, node: NodeId, state: OnePaxosNodeState) -> bool:
        if state.believed_leader() != node or not state.pending:
            return True
        return state.acceptor_for_proposing(self.true_initial_acceptor) != node
