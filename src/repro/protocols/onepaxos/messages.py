"""1Paxos wire messages.

1Paxos [15] is "an efficient variation of Multi-Paxos that uses only one
acceptor": the leader sends its proposal straight to the active acceptor
(**Propose1**); acceptance by the single acceptor *is* choice, announced to
everyone with **Learn1**.  Configuration — who is the global leader and who
the active acceptor — lives in a separate consensus service, PaxosUtility,
which this reproduction implements (as the paper did) with Paxos itself;
utility traffic travels in the :class:`Util` envelope wrapping ordinary
Paxos payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.model.types import NodeId

#: Data-plane values, matching the Paxos value type.
Value = str


@dataclass(frozen=True)
class Propose1:
    """Leader → active acceptor: propose ``value`` for decree ``index``."""

    index: int
    value: Value


@dataclass(frozen=True)
class Learn1:
    """Acceptor → everyone: ``value`` is chosen for ``index``.

    With a single active acceptor, acceptance is choice; re-proposals for an
    already-decided index are answered by re-sending this message (the
    "Chosen message ... sent over and over" of §4.2).
    """

    index: int
    value: Value


@dataclass(frozen=True)
class Util:
    """Envelope for PaxosUtility traffic: wraps an inner Paxos payload."""

    inner: Any


def leader_entry(node: NodeId) -> Value:
    """The utility log value recording a LeaderChange to ``node``."""
    return f"leader={node}"


def acceptor_entry(node: NodeId) -> Value:
    """The utility log value recording an AcceptorChange to ``node``."""
    return f"acceptor={node}"


def parse_entry(value: Value) -> tuple:
    """Parse a utility log value into ``(kind, node)``.

    Unknown values parse as ``("unknown", -1)`` — the configuration scan
    simply skips them, so garbage in the utility log cannot crash a node.
    """
    for kind in ("leader", "acceptor"):
        prefix = kind + "="
        if value.startswith(prefix):
            suffix = value[len(prefix):]
            if suffix.isdigit():
                return (kind, int(suffix))
    return ("unknown", -1)
