"""The §5.6 live snapshot for the 1Paxos experiment.

The paper's narrative, translated to our node numbering (N1, N2, N3 of the
paper = nodes 0, 1, 2):

"During the live run, node N3 [2] attempts to be the leader by inserting a
LeaderChange entry into the PaxosUtility.  At this moment, it obtains from
the PaxosUtility the correct value of the active acceptor, which is N2 [1].
After N3 becomes leader, it proposes value v3 for index ki, which is
accepted by the acceptor, i.e., N2.  N2 then broadcasts a Learn message,
which is received by N3 as well as itself.  At this point the live system
state, in which all nodes except N1 [0] have chosen value v3 for the index
ki, is taken to be used by LMC."

Node 0 missed everything (message losses) and still has a pending proposal
of its own — the node whose buggy cached acceptor (itself) produces the
divergent choice LMC then uncovers.
"""

from __future__ import annotations

from dataclasses import replace

from repro.model.system_state import SystemState
from repro.protocols.onepaxos.messages import leader_entry
from repro.protocols.onepaxos.protocol import OnePaxosProtocol
from repro.protocols.paxos.messages import Ballot
from repro.protocols.paxos.state import (
    AcceptorSlot,
    LearnerSlot,
    PromiseInfo,
    ProposerSlot,
)


def scenario_protocol(buggy: bool) -> OnePaxosProtocol:
    """Protocol configuration for the §5.6 snapshot.

    Node 0 has a pending data proposal (it still believes it is the leader
    from initialization); no further fault suspects are armed — the
    LeaderChange to node 2 already happened before the snapshot.
    """
    return OnePaxosProtocol(
        num_nodes=3,
        proposals=((0, 0, "v0"),),
        fault_suspects=(),
        buggy_init=buggy,
        require_init=False,
    )


def post_leaderchange_state(protocol: OnePaxosProtocol) -> SystemState:
    """The live snapshot described in the module docstring.

    The PaxosUtility sub-states record the chosen ``leader=2`` entry at
    utility index 0 on nodes 1 and 2 (node 0 missed the Learn quorum); the
    data plane records ``v2`` chosen at index 0 on nodes 1 and 2, accepted
    by the active acceptor node 1.
    """
    entry = leader_entry(2)
    ballot = Ballot(1, 2)
    accepted = AcceptorSlot(
        promised=ballot, accepted_ballot=ballot, accepted_value=entry
    )
    learner = LearnerSlot(
        learns=frozenset({(1, ballot, entry), (2, ballot, entry)}),
        chosen=entry,
    )

    base0 = protocol.initial_state(0)
    base1 = protocol.initial_state(1)
    base2 = protocol.initial_state(2)

    # Node 0: saw nothing; still leader-by-initialization with its pending
    # proposal and the (possibly buggy) cached acceptor.
    node0 = replace(base0, initialized=True)

    # Node 1 (the true active acceptor): utility entry chosen; accepted and
    # chose the data value v2.
    utility1 = base1.utility.with_acceptor(0, accepted).with_learner(0, learner)
    node1 = replace(base1, initialized=True, utility=utility1)
    node1 = node1.with_accepted(0, "v2").with_chosen(0, "v2")

    # Node 2 (the new leader): proposed the LeaderChange, saw it chosen,
    # proposed v2 and chose it.
    responses = (
        PromiseInfo(src=1, accepted_ballot=None, accepted_value=None),
        PromiseInfo(src=2, accepted_ballot=None, accepted_value=None),
    )
    proposer2 = ProposerSlot(
        ballot=ballot, value=entry, phase="accepting", responses=responses
    )
    utility2 = (
        base2.utility.with_proposer(0, proposer2)
        .with_acceptor(0, accepted)
        .with_learner(0, learner)
    )
    node2 = replace(base2, initialized=True, utility=utility2)
    node2 = node2.with_chosen(0, "v2")

    return SystemState({0: node0, 1: node1, 2: node2})
