"""Immutable per-node 1Paxos state, with the embedded PaxosUtility layer.

This is the "multi-layer service" the paper's prototype needed whole-stack
(de)serialization for (§4.2): the node state *contains* the node's state in
the lower-layer Paxos instance that implements PaxosUtility.  Because both
layers are frozen dataclasses, content hashing, predecessor replay and the
monotonic network all work across layers for free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.model.types import NodeId
from repro.protocols.common import TupleMap, tm_get, tm_keys, tm_set
from repro.protocols.onepaxos.messages import Value, parse_entry
from repro.protocols.paxos.state import PaxosNodeState


@dataclass(frozen=True)
class OnePaxosNodeState:
    """Complete local state of a 1Paxos node.

    ``cached_leader``/``cached_acceptor`` are the values written by the
    initialization function — the home of the §5.6 postfix-``++`` bug (the
    buggy build caches the *first* member as acceptor, i.e. the leader
    itself).  ``utility`` is the node's state in the PaxosUtility instance;
    the node's *believed* configuration is derived from the utility log,
    falling back to the cached values exactly the way the paper describes.
    """

    node: NodeId
    initialized: bool = False
    pending: Tuple[Tuple[int, Value], ...] = ()
    suspect_armed: bool = False
    cached_leader: NodeId = 0
    cached_acceptor: NodeId = 0
    accepted1: TupleMap = ()  # acceptor role: index -> value
    chosen1: TupleMap = ()  # learner role: index -> value
    #: Data-plane proposals issued but not yet observed chosen — the basis
    #: of retransmission over lossy networks (retired on the local Learn1).
    proposed1: TupleMap = ()
    utility: PaxosNodeState = PaxosNodeState(node=-1)

    # -- data plane accessors ----------------------------------------------

    def accepted_value(self, index: int) -> Optional[Value]:
        """Value this node's acceptor role accepted for ``index``."""
        return tm_get(self.accepted1, index)

    def chosen_value(self, index: int) -> Optional[Value]:
        """Value this node learned as chosen for ``index``."""
        return tm_get(self.chosen1, index)

    def with_accepted(self, index: int, value: Value) -> "OnePaxosNodeState":
        """Copy with the acceptor slot of ``index`` filled."""
        return replace(self, accepted1=tm_set(self.accepted1, index, value))

    def with_chosen(self, index: int, value: Value) -> "OnePaxosNodeState":
        """Copy with the learner slot of ``index`` filled."""
        return replace(self, chosen1=tm_set(self.chosen1, index, value))

    # -- configuration view ---------------------------------------------------

    def utility_entries(self) -> Tuple[Tuple[int, Value], ...]:
        """Chosen utility log entries this node knows, by ascending index."""
        entries = []
        for index in tm_keys(self.utility.learners):
            value = self.utility.chosen_value(index)
            if value is not None:
                entries.append((index, value))
        return tuple(sorted(entries))

    def believed_leader(self) -> NodeId:
        """Who this node believes is the global leader.

        The last chosen LeaderChange in its utility view, else the cached
        initialization value.
        """
        leader = self.cached_leader
        for _index, value in self.utility_entries():
            kind, node = parse_entry(value)
            if kind == "leader":
                leader = node
        return leader

    def leader_via_utility(self) -> bool:
        """True when this node's leadership view comes from the utility log.

        A node that became leader through a chosen LeaderChange "refers to
        PaxosUtility to get the acceptor Id"; a node that is leader only by
        initialization does not (§5.6) — that distinction is what lets the
        buggy cached acceptor reach the data path.
        """
        return any(
            parse_entry(value)[0] == "leader"
            for _index, value in self.utility_entries()
        )

    def acceptor_for_proposing(self, true_initial_acceptor: NodeId) -> NodeId:
        """The acceptor this node would address when proposing as leader.

        Consult the utility when leadership itself came from the utility;
        otherwise trust the locally cached initialization value — the buggy
        code path.  ``true_initial_acceptor`` is the configuration the
        utility service was bootstrapped with (always correct: the bug is in
        node-local initialization, not in the utility).
        """
        if self.leader_via_utility():
            acceptor = true_initial_acceptor
            for _index, value in self.utility_entries():
                kind, node = parse_entry(value)
                if kind == "acceptor":
                    acceptor = node
            return acceptor
        return self.cached_acceptor

    def next_utility_index(self) -> int:
        """The utility log index this node would propose a config change at."""
        entries = self.utility_entries()
        if not entries:
            return 0
        return entries[-1][0] + 1
