"""1Paxos: the single-acceptor Multi-Paxos variant of §5.6, with PaxosUtility."""

from repro.protocols.onepaxos.invariant import (
    OnePaxosAgreement,
    OnePaxosAgreementAll,
    SingleActiveRoles,
)
from repro.protocols.onepaxos.messages import (
    Learn1,
    Propose1,
    Util,
    Value,
    acceptor_entry,
    leader_entry,
    parse_entry,
)
from repro.protocols.onepaxos.protocol import OnePaxosProtocol
from repro.protocols.onepaxos.state import OnePaxosNodeState

__all__ = [
    "Learn1",
    "OnePaxosAgreement",
    "OnePaxosAgreementAll",
    "OnePaxosNodeState",
    "OnePaxosProtocol",
    "Propose1",
    "SingleActiveRoles",
    "Util",
    "Value",
    "acceptor_entry",
    "leader_entry",
    "parse_entry",
]
