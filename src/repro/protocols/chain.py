"""A forwarding chain: the §4.3 counter-example workload.

"We could not expect much from LMC in a chain system in which each node
simply forwards the input message to the next."  Every message depends on
the previous one, so there is no parallel network activity for LMC to
exploit: the global state space is itself linear, and eliminating the
network saves almost nothing.  The chattiness ablation bench runs LMC and
B-DFS on this protocol to show exactly that.

Node 0 starts a token (internal action); node ``i`` stamps itself and
forwards to ``i+1``; the last node keeps the token.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.invariants.base import Invariant
from repro.model.protocol import Protocol, ProtocolConfigError
from repro.model.system_state import SystemState
from repro.model.types import Action, HandlerResult, Message, NodeId


@dataclass(frozen=True)
class Token:
    """The forwarded token; ``hops`` counts nodes traversed so far."""

    hops: int


@dataclass(frozen=True)
class ChainNodeState:
    """Local state: whether this node has seen the token, and its hop stamp."""

    node: NodeId
    seen: bool = False
    hops_when_seen: Optional[int] = None


class ChainProtocol(Protocol):
    """Token forwarding along nodes ``0 .. num_nodes-1``."""

    name = "chain"

    def __init__(self, num_nodes: int = 5):
        if num_nodes < 2:
            raise ProtocolConfigError("chain needs at least two nodes")
        self._node_ids = tuple(range(num_nodes))

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> ChainNodeState:
        return ChainNodeState(node=node)

    def enabled_actions(self, state: ChainNodeState) -> Tuple[Action, ...]:
        if state.node == 0 and not state.seen:
            return (Action(node=0, name="start"),)
        return ()

    def handle_action(self, state: ChainNodeState, action: Action) -> HandlerResult:
        if action.name != "start" or state.seen:
            return HandlerResult(state)
        new_state = replace(state, seen=True, hops_when_seen=0)
        return HandlerResult(new_state, self._forward(0, hops=1))

    def handle_message(self, state: ChainNodeState, message: Message) -> HandlerResult:
        if not isinstance(message.payload, Token) or state.seen:
            return HandlerResult(state)
        token = message.payload
        new_state = replace(state, seen=True, hops_when_seen=token.hops)
        return HandlerResult(
            new_state, self._forward(state.node, hops=token.hops + 1)
        )

    def _forward(self, node: NodeId, hops: int) -> Tuple[Message, ...]:
        nxt = node + 1
        if nxt >= len(self._node_ids):
            return ()
        return (Message(dest=nxt, src=node, payload=Token(hops=hops)),)


class ChainOrder(Invariant):
    """A node may only have seen the token if its predecessor has.

    Holds in every real run; LMC's Cartesian combinations violate it freely
    (downstream-seen with upstream-unseen), making the chain a stress test
    for soundness rejection of invalid states.
    """

    name = "chain-order"

    def check(self, system: SystemState) -> bool:
        previous_seen = True
        for _node, state in system.items():
            if state.seen and not previous_seen:
                return False
            previous_seen = state.seen
        return True

    def describe_violation(self, system: SystemState) -> str:
        seen = [node for node, state in system.items() if state.seen]
        return f"chain order violated: seen set {seen} has a gap"
