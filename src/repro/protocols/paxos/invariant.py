"""The Paxos safety invariant, in LMC-ready decomposable form.

"The Paxos invariant (also known as the Paxos safety property) stipulates
that no two nodes will choose different values for the same index" (§5).

:class:`PaxosAgreement` covers one decree index with the default conflict
notion (two distinct non-``None`` projections), which is what unlocks the
LMC-OPT pruning of §4.2: "we map the node states to the values that are
chosen in them ... we thus select only the node states that at least two of
them are mapped to different values".  :class:`PaxosAgreementAll` covers all
indexes at once with a custom conflict (used by tests; OPT then degrades to
generate-and-filter).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.invariants.base import DecomposableInvariant
from repro.model.system_state import SystemState
from repro.model.types import NodeId
from repro.protocols.common import tm_keys
from repro.protocols.paxos.messages import Value
from repro.protocols.paxos.state import PaxosNodeState


class PaxosAgreement(DecomposableInvariant):
    """No two nodes choose different values for decree ``index``."""

    def __init__(self, index: int = 0):
        self.index = index
        self.name = f"paxos-agreement[{index}]"

    def check(self, system: SystemState) -> bool:
        chosen = {
            state.chosen_value(self.index)
            for _node, state in system.items()
            if state.chosen_value(self.index) is not None
        }
        return len(chosen) <= 1

    def describe_violation(self, system: SystemState) -> str:
        choices = {
            node: state.chosen_value(self.index)
            for node, state in system.items()
            if state.chosen_value(self.index) is not None
        }
        return (
            f"Paxos agreement violated at index {self.index}: "
            f"nodes chose {choices}"
        )

    def local_projection(
        self, node: NodeId, state: PaxosNodeState
    ) -> Optional[Value]:
        return state.chosen_value(self.index)


class PaxosAgreementAll(DecomposableInvariant):
    """No two nodes choose different values for *any* decree index."""

    name = "paxos-agreement[*]"

    def check(self, system: SystemState) -> bool:
        per_index: Dict[int, set] = {}
        for _node, state in system.items():
            for index in tm_keys(state.learners):
                value = state.chosen_value(index)
                if value is not None:
                    per_index.setdefault(index, set()).add(value)
        return all(len(values) <= 1 for values in per_index.values())

    def describe_violation(self, system: SystemState) -> str:
        per_index: Dict[int, Dict[NodeId, Value]] = {}
        for node, state in system.items():
            for index in tm_keys(state.learners):
                value = state.chosen_value(index)
                if value is not None:
                    per_index.setdefault(index, {})[node] = value
        conflicting = {
            index: choices
            for index, choices in per_index.items()
            if len(set(choices.values())) > 1
        }
        return f"Paxos agreement violated: {conflicting}"

    def local_projection(
        self, node: NodeId, state: PaxosNodeState
    ) -> Optional[FrozenSet[Tuple[int, Value]]]:
        chosen = frozenset(
            (index, state.chosen_value(index))
            for index in tm_keys(state.learners)
            if state.chosen_value(index) is not None
        )
        return chosen or None

    def projections_conflict(self, projections: Dict[NodeId, object]) -> bool:
        per_index: Dict[int, set] = {}
        for chosen in projections.values():
            for index, value in chosen:  # type: ignore[union-attr]
                per_index.setdefault(index, set()).add(value)
        return any(len(values) > 1 for values in per_index.values())
