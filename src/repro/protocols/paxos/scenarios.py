"""Crafted live states for the §5.5 experiment.

The online run that caught the injected bug was snapshotted in this state:
"for index ki, node N1 has proposed value v1, nodes N1 and N2 have accepted
this proposal, but due to message losses only N1 has learned it."  LMC was
then started from that snapshot and found the violation in seconds.

With our node numbering (N1, N2, N3 of the paper = nodes 0, 1, 2):

* node 0 proposed ``v0`` with ballot (1, 0) and completed its proposal;
  nodes 0 and 1 accepted it; only node 0 received a Learn quorum and chose;
* node 1 still has a pending proposal ``v1`` for the same index — the
  contender whose proposition triggers the bug;
* node 2 neither promised nor accepted anything (its messages were lost).

:func:`partial_choice_state` builds exactly that snapshot; tests assert it
is reachable by a real message-loss run of the correct protocol.
"""

from __future__ import annotations

from dataclasses import replace

from repro.model.system_state import SystemState
from repro.protocols.paxos.messages import Ballot
from repro.protocols.paxos.protocol import PaxosProtocol
from repro.protocols.paxos.state import (
    AcceptorSlot,
    LearnerSlot,
    PaxosNodeState,
    PromiseInfo,
    ProposerSlot,
)


def partial_choice_state(
    index: int = 0,
    first_value: str = "v0",
    contender_value: str = "v1",
) -> SystemState:
    """The §5.5 live snapshot over three nodes (see module docstring)."""
    ballot = Ballot(1, 0)
    accepted = AcceptorSlot(
        promised=ballot, accepted_ballot=ballot, accepted_value=first_value
    )
    responses = (
        PromiseInfo(src=0, accepted_ballot=None, accepted_value=None),
        PromiseInfo(src=1, accepted_ballot=None, accepted_value=None),
    )
    proposer_done = ProposerSlot(
        ballot=ballot, value=first_value, phase="done", responses=responses
    )
    learner_chose = LearnerSlot(
        learns=frozenset(
            {(0, ballot, first_value), (1, ballot, first_value)}
        ),
        chosen=first_value,
    )

    node0 = PaxosNodeState(node=0, initialized=True).with_proposer(
        index, proposer_done
    )
    node0 = node0.with_acceptor(index, accepted).with_learner(index, learner_chose)

    node1 = PaxosNodeState(
        node=1, initialized=True, pending=((index, contender_value),)
    ).with_acceptor(index, accepted)

    node2 = PaxosNodeState(node=2, initialized=True)

    return SystemState({0: node0, 1: node1, 2: node2})


def scenario_protocol(buggy: bool) -> PaxosProtocol:
    """The protocol configuration matching :func:`partial_choice_state`.

    The snapshot already contains node 1's pending proposal, so the protocol
    itself declares no driver proposals; ``require_init`` is off because the
    snapshot is of an initialized, running system.
    """
    from repro.protocols.paxos.protocol import BuggyPaxosProtocol

    cls = BuggyPaxosProtocol if buggy else PaxosProtocol
    return cls(num_nodes=3, proposals=(), require_init=False)
