"""Immutable per-node Paxos state: the three roles of §5.

"In usual implementations of Paxos, each node implements three roles:
proposer, acceptor, and learner."  Each role keeps a slot per decree index,
stored in tuple maps (sorted ``(index, slot)`` tuples) so the whole node
state stays hashable and cheap to content-hash.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from repro.model.types import NodeId
from repro.protocols.common import TupleMap, tm_get, tm_set
from repro.protocols.paxos.messages import Ballot, Value


@dataclass(frozen=True)
class PromiseInfo:
    """One PrepareResponse as remembered by the proposer, in arrival order."""

    src: NodeId
    accepted_ballot: Optional[Ballot]
    accepted_value: Optional[Value]


@dataclass(frozen=True)
class ProposerSlot:
    """Proposer-side state of one decree.

    ``phase`` walks ``preparing -> accepting``; ``responses`` keeps the
    PrepareResponses in arrival order — order matters because the injected
    §5.5 bug reads the *last* response.
    """

    ballot: Ballot
    value: Value
    phase: str = "preparing"
    responses: Tuple[PromiseInfo, ...] = ()

    def has_response_from(self, src: NodeId) -> bool:
        """True when a response from ``src`` was already recorded."""
        return any(info.src == src for info in self.responses)


@dataclass(frozen=True)
class AcceptorSlot:
    """Acceptor-side state of one decree: promise and accepted proposal."""

    promised: Optional[Ballot] = None
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Optional[Value] = None


@dataclass(frozen=True)
class LearnerSlot:
    """Learner-side state of one decree.

    ``learns`` collects ``(acceptor, ballot, value)`` notifications; a value
    is chosen when a majority of distinct acceptors reported the same
    ``(ballot, value)``.
    """

    learns: FrozenSet[Tuple[NodeId, Ballot, Value]] = frozenset()
    chosen: Optional[Value] = None

    def supporters(self, ballot: Ballot, value: Value) -> FrozenSet[NodeId]:
        """Acceptors that reported accepting ``(ballot, value)``."""
        return frozenset(
            src for src, b, v in self.learns if b == ballot and v == value
        )


@dataclass(frozen=True)
class PaxosNodeState:
    """Complete local state of one Paxos node.

    ``pending`` is the test driver's queue of ``(index, value)`` proposals
    this node still has to issue (§4.2 "Test driver"); ``initialized``
    models the explicit initialization event the paper counts in its
    22-event decomposition of the single-proposal space.
    """

    node: NodeId
    initialized: bool = False
    pending: Tuple[Tuple[int, Value], ...] = ()
    proposers: TupleMap = ()
    acceptors: TupleMap = ()
    learners: TupleMap = ()

    # -- slot accessors -----------------------------------------------------

    def proposer(self, index: int) -> Optional[ProposerSlot]:
        """Proposer slot for ``index``, if a proposal was issued."""
        return tm_get(self.proposers, index)

    def acceptor(self, index: int) -> AcceptorSlot:
        """Acceptor slot for ``index`` (default empty slot)."""
        return tm_get(self.acceptors, index, AcceptorSlot())

    def learner(self, index: int) -> LearnerSlot:
        """Learner slot for ``index`` (default empty slot)."""
        return tm_get(self.learners, index, LearnerSlot())

    def chosen_value(self, index: int) -> Optional[Value]:
        """The value this node's learner chose for ``index``, if any."""
        return self.learner(index).chosen

    # -- functional updates ----------------------------------------------------

    def with_proposer(self, index: int, slot: ProposerSlot) -> "PaxosNodeState":
        """Copy with the proposer slot of ``index`` replaced."""
        return replace(self, proposers=tm_set(self.proposers, index, slot))

    def with_acceptor(self, index: int, slot: AcceptorSlot) -> "PaxosNodeState":
        """Copy with the acceptor slot of ``index`` replaced."""
        return replace(self, acceptors=tm_set(self.acceptors, index, slot))

    def with_learner(self, index: int, slot: LearnerSlot) -> "PaxosNodeState":
        """Copy with the learner slot of ``index`` replaced."""
        return replace(self, learners=tm_set(self.learners, index, slot))
