"""The Paxos protocol under test, correct and with the §5.5 injected bug.

Every node plays all three roles.  The test driver is folded into the node
state as a queue of pending proposals (§4.2 "Test driver"): a node with a
non-empty queue has a ``propose`` internal action enabled, exactly like the
application issuing propose requests in the paper's setup.

The injected bug reproduces the WiDS-checker-reported defect verbatim:
"once the leader receives the PrepareResponse message from a majority of
nodes, it creates the Accept request by using the submitted value from the
last PrepareResponse message instead of the PrepareResponse message with
highest round number" (§5.5).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.model.protocol import Protocol, ProtocolConfigError, broadcast
from repro.model.types import Action, HandlerResult, Message, NodeId
from repro.protocols.common import TupleMap, majority_of
from repro.protocols.paxos.messages import (
    Accept,
    Ballot,
    Learn,
    Prepare,
    PrepareResponse,
    Value,
)
from repro.protocols.paxos.state import (
    AcceptorSlot,
    LearnerSlot,
    PaxosNodeState,
    PromiseInfo,
    ProposerSlot,
)

#: A driver entry: ``(proposer node, decree index, value)``.
Proposal = Tuple[NodeId, int, Value]


class PaxosProtocol(Protocol):
    """Multi-decree Paxos over ``num_nodes`` nodes with a scripted driver.

    ``proposals`` lists the driver's propositions.  The benchmark spaces of
    §5 are ``proposals=((0, 0, "v0"),)`` (single proposal, 22-event space)
    and ``proposals=((0, 0, "v0"), (1, 0, "v1"))`` (two proposers, 41-event
    space).  ``require_init`` adds the per-node initialization events the
    paper counts; the handlers themselves do not depend on it.
    """

    name = "paxos"

    def __init__(
        self,
        num_nodes: int = 3,
        proposals: Sequence[Proposal] = ((0, 0, "v0"),),
        require_init: bool = True,
        retransmit: bool = False,
    ):
        if num_nodes < 2:
            raise ProtocolConfigError("Paxos needs at least two nodes")
        #: Enable the stateless ``retry`` action: an in-flight proposer slot
        #: may re-broadcast its current phase message ("the proposer that
        #: insists", §4.2).  The handler leaves the node state unchanged, so
        #: retries cost LMC nothing beyond network growth — live runs fire
        #: them periodically, and a checker restarted from a snapshot uses a
        #: single retry to regenerate messages that were in flight (and thus
        #: lost) at snapshot time.  Do not combine with the global checker:
        #: its network multiset grows without bound under retransmission.
        self.retransmit = retransmit
        self.num_nodes_config = num_nodes
        self._node_ids = tuple(range(num_nodes))
        self.majority = majority_of(num_nodes)
        self.require_init = require_init
        self.proposals = tuple(proposals)
        for node, _index, _value in self.proposals:
            if node not in self._node_ids:
                raise ProtocolConfigError(f"proposal by unknown node {node}")

    # -- Protocol interface ---------------------------------------------------

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> PaxosNodeState:
        pending = tuple(
            (index, value) for who, index, value in self.proposals if who == node
        )
        return PaxosNodeState(
            node=node,
            initialized=not self.require_init,
            pending=pending,
        )

    # -- durability contract (docs/FAULTS.md) ---------------------------------

    def durable_state(self, node: NodeId, state: PaxosNodeState) -> TupleMap:
        """Acceptor slots survive a crash; everything else is volatile.

        Paxos safety rests on acceptors never forgetting their promises and
        accepted proposals — real implementations fsync the acceptor ledger
        before answering (Lamport's "each acceptor remembers ... in stable
        storage").  Proposer slots, learner tallies, the driver queue and the
        init flag are volatile: losing them can stall a proposal but never
        un-choose a value.
        """
        return state.acceptors

    def restart_state(self, node: NodeId, durable: TupleMap) -> PaxosNodeState:
        """Boot from the initial state with the acceptor ledger recovered.

        The restarted node re-runs initialization and re-issues any scripted
        proposals (the driver queue is part of the initial state), exactly
        like a process coming back up with only its disk.
        """
        return replace(self.initial_state(node), acceptors=durable or ())

    # -- symmetry contract (docs/REDUCTION.md) --------------------------------

    def symmetry_classes(self) -> Tuple[Tuple[NodeId, ...], ...]:
        """Passive nodes — those with no scripted proposal — are interchangeable.

        A Paxos node's only asymmetries are its id (inside ballots, promise
        sources and learn sources) and its driver queue; nodes the driver
        never scripts run identical acceptor/learner code, so renaming them
        everywhere permutes executions verbatim.  The agreement invariant
        reads chosen values only, so verdicts are renaming-invariant.
        """
        proposers = {node for node, _index, _value in self.proposals}
        passive = tuple(node for node in self._node_ids if node not in proposers)
        return (passive,) if len(passive) >= 2 else ()

    def rename_state(self, state: PaxosNodeState, mapping) -> PaxosNodeState:
        """Rewrite exactly the node-id positions of a Paxos state.

        Decree indexes and ballot rounds are plain ints too, so the generic
        substitution walker would corrupt them; this hook renames only
        ``state.node``, ballot proposers, promise sources and learn sources.
        """

        def node(n: NodeId) -> NodeId:
            return mapping.get(n, n)

        def ballot(b: Optional[Ballot]) -> Optional[Ballot]:
            if b is None or b.proposer not in mapping:
                return b
            return Ballot(b.round, mapping[b.proposer])

        proposers = tuple(
            (
                index,
                replace(
                    slot,
                    ballot=ballot(slot.ballot),
                    responses=tuple(
                        replace(
                            info,
                            src=node(info.src),
                            accepted_ballot=ballot(info.accepted_ballot),
                        )
                        for info in slot.responses
                    ),
                ),
            )
            for index, slot in state.proposers
        )
        acceptors = tuple(
            (
                index,
                replace(
                    slot,
                    promised=ballot(slot.promised),
                    accepted_ballot=ballot(slot.accepted_ballot),
                ),
            )
            for index, slot in state.acceptors
        )
        learners = tuple(
            (
                index,
                replace(
                    slot,
                    learns=frozenset(
                        (node(src), ballot(b), value)
                        for src, b, value in slot.learns
                    ),
                ),
            )
            for index, slot in state.learners
        )
        return replace(
            state,
            node=node(state.node),
            proposers=proposers,
            acceptors=acceptors,
            learners=learners,
        )

    # -- coverage contract (docs/OBSERVABILITY.md "Live operations") ----------

    def coverage_message_types(self) -> Tuple[str, ...]:
        """The full message-handler universe, for coverage accounting."""
        return ("Prepare", "PrepareResponse", "Accept", "Learn")

    def coverage_action_names(self) -> Tuple[str, ...]:
        """The explorable internal-action universe.

        ``inject`` is deliberately absent: it is a live-run driver call the
        checker never explores (see :meth:`_inject`), so listing it would
        flag a false gap in every coverage report.  ``retry`` appears only
        when retransmission is configured on.
        """
        names = ("init", "propose")
        if self.retransmit:
            names += ("retry",)
        return names

    def enabled_actions(self, state: PaxosNodeState) -> Tuple[Action, ...]:
        if not state.initialized:
            return (Action(node=state.node, name="init"),)
        actions = []
        if state.pending:
            index, value = state.pending[0]
            actions.append(
                Action(node=state.node, name="propose", payload=(index, value))
            )
        if self.retransmit:
            for index, slot in state.proposers:
                if slot.phase in ("preparing", "accepting"):
                    actions.append(
                        Action(node=state.node, name="retry", payload=index)
                    )
        return tuple(actions)

    def handle_action(self, state: PaxosNodeState, action: Action) -> HandlerResult:
        if action.name == "init":
            if state.initialized:
                return HandlerResult(state)
            return HandlerResult(replace(state, initialized=True))
        if action.name == "propose":
            return self._propose(state, action.payload)
        if action.name == "inject":
            return self._inject(state, action.payload)
        if action.name == "retry":
            return self._retry(state, action.payload)
        return HandlerResult(state)

    def _retry(self, state: PaxosNodeState, payload: object) -> HandlerResult:
        """Retransmit the current phase message of one proposer slot.

        Stateless: the node state is unchanged (see ``retransmit``); only
        the network sees the re-broadcast.
        """
        index = payload  # type: ignore[assignment]
        slot = state.proposer(index)
        if (
            not self.retransmit
            or slot is None
            or slot.phase not in ("preparing", "accepting")
        ):
            return HandlerResult(state)
        if slot.phase == "preparing":
            payload_msg: object = Prepare(index=index, ballot=slot.ballot)
        else:
            payload_msg = Accept(index=index, ballot=slot.ballot, value=slot.value)
        return HandlerResult(
            state,
            broadcast(state.node, self._node_ids, payload_msg),
        )

    def _inject(self, state: PaxosNodeState, payload: object) -> HandlerResult:
        """Application call enqueueing a driver proposal (live runs only).

        Never listed in ``enabled_actions``: the online test driver injects
        it into the live system (§4.2 "Test driver"), but the model checker
        does not explore injections — it explores the pending queue the
        injections leave behind.
        """
        index, value = payload  # type: ignore[misc]
        if (index, value) in state.pending or state.proposer(index) is not None:
            return HandlerResult(state)
        return HandlerResult(replace(state, pending=state.pending + ((index, value),)))

    def handle_message(self, state: PaxosNodeState, message: Message) -> HandlerResult:
        payload = message.payload
        if isinstance(payload, Prepare):
            return self._on_prepare(state, message.src, payload)
        if isinstance(payload, PrepareResponse):
            return self._on_prepare_response(state, message.src, payload)
        if isinstance(payload, Accept):
            return self._on_accept(state, payload)
        if isinstance(payload, Learn):
            return self._on_learn(state, message.src, payload)
        return HandlerResult(state)

    # -- proposer --------------------------------------------------------------

    def _propose(self, state: PaxosNodeState, payload: object) -> HandlerResult:
        index, value = payload  # type: ignore[misc]
        if not state.pending or state.pending[0] != (index, value):
            return HandlerResult(state)
        if state.proposer(index) is not None:
            # Already proposing for this index: drop the driver entry.
            return HandlerResult(replace(state, pending=state.pending[1:]))
        ballot = Ballot(1, state.node)
        slot = ProposerSlot(ballot=ballot, value=value)
        new_state = replace(
            state.with_proposer(index, slot), pending=state.pending[1:]
        )
        sends = broadcast(
            state.node, self._node_ids, Prepare(index=index, ballot=ballot)
        )
        return HandlerResult(new_state, sends)

    def _on_prepare_response(
        self, state: PaxosNodeState, src: NodeId, msg: PrepareResponse
    ) -> HandlerResult:
        slot = state.proposer(msg.index)
        if slot is None or slot.ballot != msg.ballot or slot.phase != "preparing":
            return HandlerResult(state)
        if slot.has_response_from(src):
            return HandlerResult(state)
        info = PromiseInfo(
            src=src,
            accepted_ballot=msg.accepted_ballot,
            accepted_value=msg.accepted_value,
        )
        responses = slot.responses + (info,)
        if len(responses) < self.majority:
            return HandlerResult(
                state.with_proposer(msg.index, replace(slot, responses=responses))
            )
        value = self._select_value(replace(slot, responses=responses))
        new_slot = replace(
            slot, responses=responses, phase="accepting", value=value
        )
        sends = broadcast(
            state.node,
            self._node_ids,
            Accept(index=msg.index, ballot=slot.ballot, value=value),
        )
        return HandlerResult(state.with_proposer(msg.index, new_slot), sends)

    def _select_value(self, slot: ProposerSlot) -> Value:
        """Pick the Accept value from a quorum of responses (correct rule).

        The value of the response with the **highest accepted ballot** must
        be adopted; only if no acceptor reported an accepted value may the
        proposer use its own.
        """
        best: Optional[PromiseInfo] = None
        for info in slot.responses:
            if info.accepted_ballot is None:
                continue
            if best is None or info.accepted_ballot > best.accepted_ballot:
                best = info
        if best is not None and best.accepted_value is not None:
            return best.accepted_value
        return slot.value

    # -- acceptor ---------------------------------------------------------------

    def _on_prepare(
        self, state: PaxosNodeState, src: NodeId, msg: Prepare
    ) -> HandlerResult:
        slot = state.acceptor(msg.index)
        if slot.promised is not None and msg.ballot < slot.promised:
            return HandlerResult(state)
        new_slot = replace(slot, promised=msg.ballot)
        response = Message(
            dest=src,
            src=state.node,
            payload=PrepareResponse(
                index=msg.index,
                ballot=msg.ballot,
                accepted_ballot=slot.accepted_ballot,
                accepted_value=slot.accepted_value,
            ),
        )
        return HandlerResult(state.with_acceptor(msg.index, new_slot), (response,))

    def _on_accept(self, state: PaxosNodeState, msg: Accept) -> HandlerResult:
        slot = state.acceptor(msg.index)
        if slot.promised is not None and msg.ballot < slot.promised:
            return HandlerResult(state)
        if slot.accepted_ballot == msg.ballot and slot.accepted_value == msg.value:
            # Duplicate Accept (a proposer retry): re-announce the choice so
            # learners that missed the first Learn can still converge — the
            # "Chosen message ... sent over and over" behaviour of §4.2.
            return HandlerResult(
                state,
                broadcast(
                    state.node,
                    self._node_ids,
                    Learn(index=msg.index, ballot=msg.ballot, value=msg.value),
                ),
            )
        new_slot = AcceptorSlot(
            promised=msg.ballot,
            accepted_ballot=msg.ballot,
            accepted_value=msg.value,
        )
        sends = broadcast(
            state.node,
            self._node_ids,
            Learn(index=msg.index, ballot=msg.ballot, value=msg.value),
        )
        return HandlerResult(state.with_acceptor(msg.index, new_slot), sends)

    # -- learner ------------------------------------------------------------------

    def _on_learn(
        self, state: PaxosNodeState, src: NodeId, msg: Learn
    ) -> HandlerResult:
        slot = state.learner(msg.index)
        entry = (src, msg.ballot, msg.value)
        if entry in slot.learns:
            return HandlerResult(state)
        learns = slot.learns | {entry}
        chosen = slot.chosen
        if chosen is None:
            supporters = frozenset(
                s for s, b, v in learns if b == msg.ballot and v == msg.value
            )
            if len(supporters) >= self.majority:
                chosen = msg.value
        new_state = state.with_learner(
            msg.index, LearnerSlot(learns=learns, chosen=chosen)
        )
        if chosen is not None:
            # The decree is decided: retire any in-flight proposer slot for
            # it so the proposer stops insisting (no further retransmits).
            proposer_slot = new_state.proposer(msg.index)
            if proposer_slot is not None and proposer_slot.phase != "done":
                new_state = new_state.with_proposer(
                    msg.index, replace(proposer_slot, phase="done")
                )
        return HandlerResult(new_state)


class BuggyPaxosProtocol(PaxosProtocol):
    """Paxos with the §5.5 injected value-selection bug.

    The proposer adopts the accepted value of the *last received*
    PrepareResponse; if that response reports no accepted value the proposer
    (incorrectly) falls back to its own value even when an earlier response
    did carry an accepted value — exactly the defect of [10] the paper
    re-finds.
    """

    name = "paxos-buggy"

    def _select_value(self, slot: ProposerSlot) -> Value:
        last = slot.responses[-1]
        if last.accepted_value is not None:
            return last.accepted_value
        return slot.value
