"""Paxos: the paper's complex distributed testbed (§5)."""

from repro.protocols.paxos.invariant import PaxosAgreement, PaxosAgreementAll
from repro.protocols.paxos.messages import (
    Accept,
    Ballot,
    Learn,
    Prepare,
    PrepareResponse,
    Value,
)
from repro.protocols.paxos.protocol import BuggyPaxosProtocol, PaxosProtocol
from repro.protocols.paxos.state import (
    AcceptorSlot,
    LearnerSlot,
    PaxosNodeState,
    PromiseInfo,
    ProposerSlot,
)

__all__ = [
    "Accept",
    "AcceptorSlot",
    "Ballot",
    "BuggyPaxosProtocol",
    "Learn",
    "LearnerSlot",
    "PaxosAgreement",
    "PaxosAgreementAll",
    "PaxosNodeState",
    "PaxosProtocol",
    "Prepare",
    "PrepareResponse",
    "PromiseInfo",
    "ProposerSlot",
    "Value",
]
