"""Paxos wire messages and ballots.

The message vocabulary follows §5's description of the checked
implementation: a proposition broadcasts **Prepare**; acceptors answer with
**PrepareResponse** (carrying any previously accepted ballot/value); on a
majority of responses the proposer broadcasts **Accept**; each acceptor that
accepts broadcasts **Learn** to the learners; a value is chosen by a learner
on Learn messages from a majority of acceptors.

Ballots are ``(round, proposer)`` pairs ordered lexicographically, which
makes concurrent proposals from different nodes totally ordered without any
coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.types import NodeId

#: Values in these experiments are short strings (e.g. a node's own id
#: rendered as ``"v1"``); any immutable hashable value works.
Value = str


@dataclass(frozen=True, order=True)
class Ballot:
    """A proposal number: unique and totally ordered across proposers."""

    round: int
    proposer: NodeId

    def next_round(self, proposer: NodeId) -> "Ballot":
        """The smallest ballot of ``proposer`` larger than this one."""
        return Ballot(self.round + 1, proposer)


@dataclass(frozen=True)
class Prepare:
    """Phase-1a: ask acceptors to promise ballot ``ballot`` for ``index``."""

    index: int
    ballot: Ballot


@dataclass(frozen=True)
class PrepareResponse:
    """Phase-1b: an acceptor's promise for ``ballot``.

    ``accepted_ballot``/``accepted_value`` report the acceptor's previously
    accepted proposal for this index, if any — the information the proposer
    must use (highest accepted ballot wins) and which the §5.5 injected bug
    misuses (it takes the value of the *last received* response instead).
    """

    index: int
    ballot: Ballot
    accepted_ballot: Optional[Ballot]
    accepted_value: Optional[Value]


@dataclass(frozen=True)
class Accept:
    """Phase-2a: ask acceptors to accept ``value`` at ``ballot``."""

    index: int
    ballot: Ballot
    value: Value


@dataclass(frozen=True)
class Learn:
    """An acceptor's notification that it accepted ``value`` at ``ballot``."""

    index: int
    ballot: Ballot
    value: Value
