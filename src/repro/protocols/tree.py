"""The §2 primer: a simple distributed tree forwarding algorithm (Fig. 2).

Node ``origin`` initiates a message destined for node ``target`` and flips
its state to *sent*; every node that receives the message forwards it to its
children; ``target`` flips its state to *received*.  The paper uses this
five-node system to contrast the 12 global states of Fig. 3 with the 4
temporary system states of Fig. 4 — and to exhibit the invalid combination
``----r`` (received before sent) that soundness verification must reject.

``track_forwarding`` selects between two fidelity modes:

* ``True`` (default) — interior nodes record that they forwarded.  Every
  message generation then appears in some node's predecessor sequence, so
  soundness verification is exact.
* ``False`` — interior nodes are stateless, exactly like the paper's figure
  (only ``s`` and ``r`` are visible).  Forwarding events then only create
  self-referencing predecessor links, which the predecessor closure ignores
  (§4.2) — a faithful, runnable demonstration of the prototype's
  self-reference incompleteness that the test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.invariants.base import DecomposableInvariant
from repro.model.protocol import Protocol, ProtocolConfigError
from repro.model.system_state import SystemState
from repro.model.types import Action, HandlerResult, Message, NodeId

#: The five-node topology of Fig. 2: node 0 forwards to 1 and 2; node 2
#: forwards to 3 and 4.
DEFAULT_CHILDREN: Dict[NodeId, Tuple[NodeId, ...]] = {0: (1, 2), 2: (3, 4)}


@dataclass(frozen=True)
class Payload:
    """The forwarded message body; ``final_target`` names the addressee."""

    final_target: NodeId


@dataclass(frozen=True)
class TreeNodeState:
    """Local state of a tree node.

    ``sent`` is only ever True on the origin, ``received`` only on the
    target; ``forwarded`` is used by interior nodes when the protocol runs in
    ``track_forwarding`` mode.
    """

    node: NodeId
    sent: bool = False
    received: bool = False
    forwarded: bool = False

    def glyph(self) -> str:
        """The single-character rendering of the paper's figures."""
        if self.sent:
            return "s"
        if self.received:
            return "r"
        if self.forwarded:
            return "f"
        return "-"


class TreeProtocol(Protocol):
    """The Fig. 2 forwarding tree."""

    name = "tree"

    def __init__(
        self,
        children: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = None,
        origin: NodeId = 0,
        target: NodeId = 4,
        track_forwarding: bool = True,
    ):
        self.children = dict(DEFAULT_CHILDREN if children is None else children)
        self.origin = origin
        self.target = target
        self.track_forwarding = track_forwarding
        nodes = set(self.children)
        for kids in self.children.values():
            nodes.update(kids)
        nodes.add(origin)
        nodes.add(target)
        self._node_ids = tuple(sorted(nodes))
        if origin == target:
            raise ProtocolConfigError("origin and target must differ")

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> TreeNodeState:
        return TreeNodeState(node=node)

    def enabled_actions(self, state: TreeNodeState) -> Tuple[Action, ...]:
        if state.node == self.origin and not state.sent:
            return (Action(node=state.node, name="send"),)
        return ()

    def handle_action(self, state: TreeNodeState, action: Action) -> HandlerResult:
        if action.name == "send" and state.node == self.origin and not state.sent:
            return HandlerResult(
                replace(state, sent=True),
                self._forwards(state.node),
            )
        return HandlerResult(state)

    def handle_message(self, state: TreeNodeState, message: Message) -> HandlerResult:
        if not isinstance(message.payload, Payload):
            return HandlerResult(state)
        if state.node == self.target:
            if state.received:
                return HandlerResult(state)
            return HandlerResult(replace(state, received=True))
        if state.forwarded:
            return HandlerResult(state)
        new_state = (
            replace(state, forwarded=True) if self.track_forwarding else state
        )
        return HandlerResult(new_state, self._forwards(state.node))

    # -- symmetry contract (docs/REDUCTION.md) --------------------------------

    def symmetry_classes(self) -> Tuple[Tuple[NodeId, ...], ...]:
        """Sibling leaves — same parent, neither origin nor target — commute.

        Topology is part of the protocol, so a renaming is a symmetry only
        when it maps the ``children`` relation onto itself: leaves are
        interchangeable exactly when they hang off the *same* parent and
        neither is the distinguished origin or target.  The Fig. 2 default
        topology has no such pair (leaf 1's sibling is interior, leaf 3's
        sibling is the target), so this hook declares nothing there — wider
        fan-outs (several plain leaves under one parent) do yield classes.
        A ``TreeNodeState`` is all booleans beside ``node``, so the generic
        substitution walker serves as ``rename_state``.
        """
        classes = []
        special = {self.origin, self.target}
        for _parent, kids in sorted(self.children.items()):
            plain_leaves = tuple(
                kid
                for kid in kids
                if kid not in self.children and kid not in special
            )
            if len(plain_leaves) >= 2:
                classes.append(plain_leaves)
        return tuple(classes)

    def _forwards(self, node: NodeId) -> Tuple[Message, ...]:
        return tuple(
            Message(dest=child, src=node, payload=Payload(final_target=self.target))
            for child in self.children.get(node, ())
        )

    def render(self, system: SystemState) -> str:
        """Concatenated per-node glyphs, e.g. ``s---r`` (paper notation)."""
        return "".join(system.get(node).glyph() for node in self._node_ids)


class ReceivedImpliesSent(DecomposableInvariant):
    """The target may be *received* only once the origin is *sent*.

    Holds in every real run (the message cannot outrun its own send), but is
    violated by LMC's invalid Cartesian combination ``----r`` — the primer's
    demonstration that preliminary violations need soundness verification.
    """

    name = "received-implies-sent"

    def __init__(self, origin: NodeId = 0, target: NodeId = 4):
        self.origin = origin
        self.target = target

    def check(self, system: SystemState) -> bool:
        target_state: TreeNodeState = system.get(self.target)
        origin_state: TreeNodeState = system.get(self.origin)
        return not target_state.received or origin_state.sent

    def local_projection(self, node: NodeId, state: TreeNodeState) -> Optional[str]:
        if node == self.target and state.received:
            return "received"
        if node == self.origin and not state.sent:
            return "unsent"
        return None

    def projections_conflict(self, projections: Dict[NodeId, object]) -> bool:
        return (
            projections.get(self.target) == "received"
            and projections.get(self.origin) == "unsent"
        )
