"""A sequenced packet stream: the workload where FIFO-aware checking shines.

Node 0 emits ``length`` numbered packets to node 1, which records them in
arrival order.  Over a datagram network every arrival order is possible, so
the receiver's state space contains every permutation prefix — factorial
growth that exists *only* because of reordering.  Wrapped in
:class:`~repro.protocols.fifo_wrapper.FifoStampedProtocol` (mode ``reject``),
out-of-order deliveries are ignored and the receiver walks a single chain of
``length + 1`` states: the §4.3 saving, measurable and large.

``InOrderDelivery`` is an invariant that holds exactly when the transport is
FIFO — true under the wrapper, violated (by real runs!) over raw datagrams —
used by tests to show both checkers observe genuine reordering.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.invariants.base import LocalInvariant
from repro.model.protocol import Protocol, ProtocolConfigError
from repro.model.types import Action, HandlerResult, Message, NodeId


@dataclass(frozen=True)
class Packet:
    """One numbered payload of the stream."""

    number: int


@dataclass(frozen=True)
class StreamNodeState:
    """Sender progress and receiver arrival log."""

    node: NodeId
    sent: int = 0
    received: Tuple[int, ...] = ()


class StreamProtocol(Protocol):
    """Node 0 streams ``length`` packets to node 1."""

    name = "stream"

    def __init__(self, length: int = 3):
        if length < 1:
            raise ProtocolConfigError("stream length must be >= 1")
        self.length = length

    def node_ids(self) -> Tuple[NodeId, ...]:
        return (0, 1)

    def initial_state(self, node: NodeId) -> StreamNodeState:
        return StreamNodeState(node=node)

    def enabled_actions(self, state: StreamNodeState) -> Tuple[Action, ...]:
        if state.node == 0 and state.sent < self.length:
            return (Action(node=0, name="emit", payload=state.sent),)
        return ()

    def handle_action(self, state: StreamNodeState, action: Action) -> HandlerResult:
        if (
            action.name != "emit"
            or state.node != 0
            or action.payload != state.sent
            or state.sent >= self.length
        ):
            return HandlerResult(state)
        packet = Message(dest=1, src=0, payload=Packet(number=state.sent))
        return HandlerResult(replace(state, sent=state.sent + 1), (packet,))

    def handle_message(self, state: StreamNodeState, message: Message) -> HandlerResult:
        if not isinstance(message.payload, Packet) or state.node != 1:
            return HandlerResult(state)
        number = message.payload.number
        if number in state.received:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, received=state.received + (number,))
        )


class InOrderDelivery(LocalInvariant):
    """The receiver's arrival log is the natural order 0, 1, 2, …

    Genuinely violated over raw datagrams (arrival order is arbitrary);
    guaranteed under the FIFO wrapper — making it the litmus test for the
    §4.3 simulated-TCP semantics.
    """

    name = "stream-in-order"

    def check_local(self, node: NodeId, state: StreamNodeState) -> bool:
        if node != 1:
            return True
        return state.received == tuple(range(len(state.received)))
