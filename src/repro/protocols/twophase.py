"""Two-phase commit: an additional agreement workload with a known bad twin.

Not from the paper's evaluation, but squarely in its problem domain: a
coordinator collects votes and broadcasts a decision; the safety invariant
is agreement (no node commits while another aborts), which decomposes into
exactly the projection shape LMC-OPT exploits.  The deliberately broken
:class:`EagerCommitCoordinator` decides *commit* as soon as the first yes
vote arrives — a bug both checkers must find, giving the test suite a second
independently implemented bug besides the Paxos ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Tuple

from repro.invariants.base import DecomposableInvariant
from repro.model.protocol import Protocol, ProtocolConfigError, broadcast
from repro.model.system_state import SystemState
from repro.model.types import Action, HandlerResult, Message, NodeId


@dataclass(frozen=True)
class VoteRequest:
    """Coordinator asks participants to vote."""


@dataclass(frozen=True)
class Vote:
    """A participant's vote."""

    voter: NodeId
    yes: bool


@dataclass(frozen=True)
class Decision:
    """The coordinator's broadcast decision."""

    commit: bool


@dataclass(frozen=True)
class TwoPhaseNodeState:
    """Local state of a 2PC node (coordinator and participant roles)."""

    node: NodeId
    started: bool = False
    voted: bool = False
    my_vote: Optional[bool] = None
    votes: FrozenSet[Tuple[NodeId, bool]] = frozenset()
    decided: Optional[bool] = None  # True commit / False abort / None open

    def yes_votes(self) -> FrozenSet[NodeId]:
        """Voters that voted yes."""
        return frozenset(voter for voter, yes in self.votes if yes)


class TwoPhaseCommit(Protocol):
    """Standard presumed-nothing 2PC over ``num_nodes`` nodes.

    ``no_voters`` lists participants scripted to vote no (the driver's
    failure injection); everyone else votes yes.  Node 0 coordinates and
    also votes.
    """

    name = "two-phase-commit"

    def __init__(self, num_nodes: int = 3, no_voters: Tuple[NodeId, ...] = ()):
        if num_nodes < 2:
            raise ProtocolConfigError("2PC needs at least two nodes")
        self._node_ids = tuple(range(num_nodes))
        self.coordinator: NodeId = 0
        self.no_voters = tuple(no_voters)
        for voter in self.no_voters:
            if voter not in self._node_ids:
                raise ProtocolConfigError(f"unknown no-voter {voter}")

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def initial_state(self, node: NodeId) -> TwoPhaseNodeState:
        return TwoPhaseNodeState(node=node)

    def enabled_actions(self, state: TwoPhaseNodeState) -> Tuple[Action, ...]:
        if state.node == self.coordinator and not state.started:
            return (Action(node=state.node, name="begin"),)
        return ()

    # -- durability contract (docs/FAULTS.md) ---------------------------------

    def durable_state(self, node: NodeId, state: TwoPhaseNodeState) -> Optional[bool]:
        """The decision record is forced to the log; everything else is volatile.

        Classic 2PC writes the commit/abort record before announcing it —
        the TM's decision (and a participant's learned outcome) survives a
        crash.  Votes need no log here because voting is deterministic: a
        restarted participant re-votes identically when re-asked.
        """
        return state.decided

    def restart_state(self, node: NodeId, durable: Optional[bool]) -> TwoPhaseNodeState:
        """Boot from the initial state with the decision record recovered."""
        return replace(self.initial_state(node), decided=durable)

    # -- symmetry contract (docs/REDUCTION.md) --------------------------------

    def symmetry_classes(self) -> Tuple[Tuple[NodeId, ...], ...]:
        """Participants scripted with the same vote are interchangeable.

        The coordinator is structurally distinguished (it tallies and
        decides), so it joins no class; among the other participants the
        script is the only asymmetry, splitting them into a yes-voter class
        and a no-voter class.  No ``rename_state`` is needed: a 2PC state
        holds node ids only in ``node`` and the vote sources, both
        structurally distinguishable ints, so the generic substitution
        walker renames it correctly.
        """
        yes = tuple(
            node
            for node in self._node_ids
            if node != self.coordinator and node not in self.no_voters
        )
        no = tuple(
            node
            for node in self._node_ids
            if node != self.coordinator and node in self.no_voters
        )
        return tuple(cls for cls in (yes, no) if len(cls) >= 2)

    def handle_action(self, state: TwoPhaseNodeState, action: Action) -> HandlerResult:
        if action.name != "begin" or state.started:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, started=True),
            broadcast(state.node, self._node_ids, VoteRequest()),
        )

    def handle_message(self, state: TwoPhaseNodeState, message: Message) -> HandlerResult:
        payload = message.payload
        if isinstance(payload, VoteRequest):
            return self._on_vote_request(state)
        if isinstance(payload, Vote):
            return self._on_vote(state, payload)
        if isinstance(payload, Decision):
            return self._on_decision(state, payload)
        return HandlerResult(state)

    def _on_vote_request(self, state: TwoPhaseNodeState) -> HandlerResult:
        if state.voted:
            return HandlerResult(state)
        yes = state.node not in self.no_voters
        vote = Message(
            dest=self.coordinator,
            src=state.node,
            payload=Vote(voter=state.node, yes=yes),
        )
        return HandlerResult(replace(state, voted=True, my_vote=yes), (vote,))

    def _on_vote(self, state: TwoPhaseNodeState, vote: Vote) -> HandlerResult:
        if state.node != self.coordinator or state.decided is not None:
            return HandlerResult(state)
        if (vote.voter, vote.yes) in state.votes:
            return HandlerResult(state)
        votes = state.votes | {(vote.voter, vote.yes)}
        new_state = replace(state, votes=votes)
        decision = self._decide(new_state)
        if decision is None:
            return HandlerResult(new_state)
        new_state = replace(new_state, decided=decision)
        return HandlerResult(
            new_state,
            broadcast(
                state.node, self._node_ids, Decision(commit=decision)
            ),
        )

    def _decide(self, state: TwoPhaseNodeState) -> Optional[bool]:
        """Commit on unanimous yes, abort on any no, else keep waiting."""
        if any(not yes for _voter, yes in state.votes):
            return False
        if len(state.votes) == len(self._node_ids):
            return True
        return None

    def _on_decision(self, state: TwoPhaseNodeState, decision: Decision) -> HandlerResult:
        if state.decided is not None:
            return HandlerResult(state)
        return HandlerResult(replace(state, decided=decision.commit))


class EagerCommitCoordinator(TwoPhaseCommit):
    """2PC with an injected atomicity bug: commit on the *first* yes vote.

    With at least one scripted no-voter, some interleavings commit at the
    coordinator (first vote was a yes) while the no vote later flips nothing
    — but other participants that received the abort path disagree; the
    :class:`Atomicity` invariant catches it.
    """

    name = "two-phase-commit-eager"

    def _decide(self, state: TwoPhaseNodeState) -> Optional[bool]:
        if any(yes for _voter, yes in state.votes):
            return True
        if any(not yes for _voter, yes in state.votes):
            return False
        return None


class TimeoutTwoPhaseCommit(TwoPhaseCommit):
    """2PC with presumed-abort timeouts: a lost decision aborts the waiter.

    Realistic 2PC participants do not block forever on the decision — a
    participant that voted and never hears the outcome times out and
    presumes abort.  Declaring that reaction as a ``handle_drop`` omission
    hook (docs/FAULTS.md) makes the checker explore loss of each decision
    message: with unanimous yes votes the coordinator durably commits, the
    timed-out participant aborts, and :class:`Atomicity` is violated — a
    bug reachable *only* under a drop or partition schedule, never in
    loss-free exploration.
    """

    name = "two-phase-commit-timeout"

    def handle_drop(
        self, state: TwoPhaseNodeState, message: Message
    ) -> HandlerResult:
        payload = message.payload
        if (
            isinstance(payload, Decision)
            and state.voted
            and state.decided is None
        ):
            return HandlerResult(replace(state, decided=False))
        return HandlerResult(state)


class Atomicity(DecomposableInvariant):
    """No node commits while another aborts."""

    name = "2pc-atomicity"

    def check(self, system: SystemState) -> bool:
        outcomes = {
            state.decided
            for _node, state in system.items()
            if state.decided is not None
        }
        return len(outcomes) <= 1

    def describe_violation(self, system: SystemState) -> str:
        outcomes: Dict[NodeId, bool] = {
            node: state.decided
            for node, state in system.items()
            if state.decided is not None
        }
        return f"2PC atomicity violated: decisions {outcomes}"

    def local_projection(
        self, node: NodeId, state: TwoPhaseNodeState
    ) -> Optional[bool]:
        return state.decided


class CommitValidity(DecomposableInvariant):
    """A commit decision requires that nobody voted no.

    This is the invariant the :class:`EagerCommitCoordinator` bug violates:
    the coordinator commits after the first yes vote even when another
    participant voted no.  The conflict is custom ("committed" together with
    "voted-no"), so LMC-OPT uses generate-and-filter for it.
    """

    name = "2pc-commit-validity"

    def check(self, system: SystemState) -> bool:
        committed = any(
            state.decided is True for _node, state in system.items()
        )
        if not committed:
            return True
        return all(
            state.my_vote is not False for _node, state in system.items()
        )

    def describe_violation(self, system: SystemState) -> str:
        committed = [
            node for node, state in system.items() if state.decided is True
        ]
        no_voters = [
            node for node, state in system.items() if state.my_vote is False
        ]
        return (
            f"2PC commit validity violated: nodes {committed} committed "
            f"although nodes {no_voters} voted no"
        )

    def local_projection(
        self, node: NodeId, state: TwoPhaseNodeState
    ) -> Optional[str]:
        committed = state.decided is True
        voted_no = state.my_vote is False
        if committed and voted_no:
            return "committed+voted-no"
        if committed:
            return "committed"
        if voted_no:
            return "voted-no"
        return None

    def projections_conflict(self, projections: Dict[NodeId, object]) -> bool:
        values = set(projections.values())
        if "committed+voted-no" in values:
            return True
        return "committed" in values and "voted-no" in values
