"""Ring leader election (Chang-Roberts flavour) with an injected bug.

Another chatty workload in the paper's problem domain: nodes on a
unidirectional ring elect the maximum id by circulating tokens.  A node
receiving its own id back has seen its token survive a full round — it is
the leader.  Tokens smaller than the receiver's id are swallowed (and wake
the receiver's own candidacy); larger tokens are forwarded.

:class:`GreedyRingElection` injects a classic confusion: a node declares
itself leader when the arriving token is *the largest it has seen* rather
than exactly its own — every node the winning token passes then crowns
itself, so several leaders coexist.  :class:`AtMostOneLeader` (projections:
the node id of a self-declared leader) catches it; with the correct build
both checkers prove uniqueness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.invariants.base import DecomposableInvariant
from repro.model.protocol import Protocol, ProtocolConfigError
from repro.model.system_state import SystemState
from repro.model.types import Action, HandlerResult, Message, NodeId


@dataclass(frozen=True)
class ElectionToken:
    """A circulating candidacy: the id of its originator."""

    uid: int


@dataclass(frozen=True)
class RingNodeState:
    """Per-node election state."""

    node: NodeId
    started: bool = False
    leader: bool = False
    max_seen: int = -1


class RingElection(Protocol):
    """Maximum-id election on the ring ``0 -> 1 -> … -> n-1 -> 0``."""

    name = "ring-election"

    def __init__(self, num_nodes: int = 4, initiators: Tuple[NodeId, ...] = (0,)):
        if num_nodes < 2:
            raise ProtocolConfigError("ring needs at least two nodes")
        self._node_ids = tuple(range(num_nodes))
        self.initiators = tuple(initiators)
        for node in self.initiators:
            if node not in self._node_ids:
                raise ProtocolConfigError(f"unknown initiator {node}")

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._node_ids

    def successor(self, node: NodeId) -> NodeId:
        """The clockwise neighbour."""
        return (node + 1) % len(self._node_ids)

    def initial_state(self, node: NodeId) -> RingNodeState:
        return RingNodeState(node=node, max_seen=node)

    def enabled_actions(self, state: RingNodeState) -> Tuple[Action, ...]:
        if state.node in self.initiators and not state.started:
            return (Action(node=state.node, name="elect"),)
        return ()

    def handle_action(self, state: RingNodeState, action: Action) -> HandlerResult:
        if action.name != "elect" or state.started:
            return HandlerResult(state)
        return HandlerResult(
            replace(state, started=True),
            (self._forward(state.node, ElectionToken(uid=state.node)),)
        )

    def handle_message(self, state: RingNodeState, message: Message) -> HandlerResult:
        if not isinstance(message.payload, ElectionToken):
            return HandlerResult(state)
        token: ElectionToken = message.payload
        new_state = replace(state, max_seen=max(state.max_seen, token.uid))
        if self._wins(state, token):
            crowned = replace(new_state, leader=True)
            # A foreign token that (buggily) crowned a bystander still
            # travels on — which is how the greedy variant produces several
            # leaders; a node's own token (the correct case) never satisfies
            # ``uid > node`` and stops here.
            if token.uid > state.node:
                return HandlerResult(
                    crowned, (self._forward(state.node, token),)
                )
            return HandlerResult(crowned)
        if token.uid > state.node:
            return HandlerResult(
                new_state, (self._forward(state.node, token),)
            )
        # A smaller token dies here; it wakes this node's own candidacy so
        # the maximum still gets elected with any single initiator.
        if not state.started:
            return HandlerResult(
                replace(new_state, started=True),
                (self._forward(state.node, ElectionToken(uid=state.node)),),
            )
        return HandlerResult(new_state)

    def _wins(self, state: RingNodeState, token: ElectionToken) -> bool:
        """Correct rule: only your own token coming home elects you."""
        return token.uid == state.node

    def _forward(self, node: NodeId, token: ElectionToken) -> Message:
        return Message(dest=self.successor(node), src=node, payload=token)


class GreedyRingElection(RingElection):
    """Ring election with the injected max-confusion bug.

    A node declares itself leader whenever the arriving token is at least
    everything it has seen — mistaking "I am on the winning token's path"
    for "my token survived the round".
    """

    name = "ring-election-greedy"

    def _wins(self, state: RingNodeState, token: ElectionToken) -> bool:
        return token.uid >= state.max_seen


class AtMostOneLeader(DecomposableInvariant):
    """No two nodes may both consider themselves elected."""

    name = "ring-at-most-one-leader"

    def check(self, system: SystemState) -> bool:
        leaders = [node for node, state in system.items() if state.leader]
        return len(leaders) <= 1

    def describe_violation(self, system: SystemState) -> str:
        leaders = [node for node, state in system.items() if state.leader]
        return f"multiple ring leaders elected: {leaders}"

    def local_projection(
        self, node: NodeId, state: RingNodeState
    ) -> Optional[NodeId]:
        return node if state.leader else None
