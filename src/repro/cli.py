"""Command-line interface: run checkers on named workloads.

Examples::

    python -m repro list
    python -m repro check paxos --algorithm lmc-opt
    python -m repro check paxos --algorithm bdfs --max-seconds 60
    python -m repro check 2pc --buggy --algorithm lmc-gen
    python -m repro scenario s55 --buggy
    python -m repro scenario s56
    python -m repro trace paxos                    # traced run, JSONL out
    python -m repro check paxos --trace-out t.jsonl --metrics-interval 0.5
    python -m repro trace-report t.jsonl           # Fig. 13 / §5.4 tables
    python -m repro check paxos --coverage --metrics-interval 0.5
    python -m repro runs                           # list registered runs
    python -m repro status                         # latest run, live depth/ETA
    python -m repro coverage                       # handler coverage report
    python -m repro serve-status --port 8765       # read-only HTTP endpoint

See docs/OBSERVABILITY.md for the trace record schema and the "Live
operations" section for the run registry.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.checker import LocalModelChecker
from repro.core.checkpoint import Checkpointer, CheckpointError, load_checkpoint
from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.invariants.base import Invariant
from repro.model.protocol import Protocol
from repro.obs.coverage import CoverageTracker, render_coverage
from repro.obs.emitter import NULL_EMITTER, JsonlEmitter, TraceEmitter
from repro.obs.progress import format_eta
from repro.obs.registry import RunHandle, RunRecord, RunRegistry
from repro.reports import CheckResult
from repro.stats.reporting import format_phase_breakdown, format_table

#: protocol name -> (builder(nodes, buggy) -> (protocol, invariant), doc)
WorkloadBuilder = Callable[[int, bool], Tuple[Protocol, Invariant]]


def _paxos(nodes: int, buggy: bool):
    from repro.protocols.paxos import (
        BuggyPaxosProtocol,
        PaxosAgreement,
        PaxosProtocol,
    )

    cls = BuggyPaxosProtocol if buggy else PaxosProtocol
    return cls(num_nodes=nodes, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


def _tree(nodes: int, buggy: bool):
    from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol

    del nodes, buggy
    return TreeProtocol(), ReceivedImpliesSent()


def _chain(nodes: int, buggy: bool):
    from repro.protocols.chain import ChainOrder, ChainProtocol

    del buggy
    return ChainProtocol(max(nodes, 2)), ChainOrder()


def _echo(nodes: int, buggy: bool):
    from repro.protocols.echo import EchoProtocol, PongsImplyPing

    del buggy
    return EchoProtocol(max(nodes, 2)), PongsImplyPing()


def _twophase(nodes: int, buggy: bool):
    from repro.protocols.twophase import (
        CommitValidity,
        EagerCommitCoordinator,
        TwoPhaseCommit,
    )

    cls = EagerCommitCoordinator if buggy else TwoPhaseCommit
    return cls(max(nodes, 2), no_voters=(max(nodes, 2) - 1,)), CommitValidity()


def _twophase_timeout(nodes: int, buggy: bool):
    from repro.protocols.twophase import Atomicity, TimeoutTwoPhaseCommit

    del buggy
    return TimeoutTwoPhaseCommit(max(nodes, 2)), Atomicity()


def _ring(nodes: int, buggy: bool):
    from repro.protocols.ring import (
        AtMostOneLeader,
        GreedyRingElection,
        RingElection,
    )

    cls = GreedyRingElection if buggy else RingElection
    return cls(max(nodes, 2), initiators=(0,)), AtMostOneLeader()


def _stream(nodes: int, buggy: bool):
    from repro.protocols.stream import InOrderDelivery, StreamProtocol

    del nodes, buggy
    return StreamProtocol(3), InOrderDelivery()


def _randtree(nodes: int, buggy: bool):
    from repro.protocols.randtree import (
        ChildrenSiblingsDisjoint,
        RandTreeProtocol,
        SiblingMixupRandTree,
    )

    cls = SiblingMixupRandTree if buggy else RandTreeProtocol
    return cls(max(nodes, 2)), ChildrenSiblingsDisjoint()


WORKLOADS: Dict[str, Tuple[WorkloadBuilder, str]] = {
    "paxos": (_paxos, "3-role Paxos, one proposal (--buggy: §5.5 bug)"),
    "tree": (_tree, "the §2 forwarding-tree primer"),
    "chain": (_chain, "sequential token chain (§4.3 counter-example)"),
    "echo": (_echo, "all-to-all echo broadcast (maximally chatty)"),
    "2pc": (_twophase, "two-phase commit (--buggy: eager commit)"),
    "2pc-timeout": (
        _twophase_timeout,
        "2PC with presumed-abort timeouts (atomicity breaks under --drop-faults)",
    ),
    "randtree": (_randtree, "RandTree membership (--buggy: sibling mixup)"),
    "ring": (_ring, "ring leader election (--buggy: greedy crowning)"),
    "stream": (_stream, "sequenced datagram stream (in-order invariant fails)"),
}


def parse_partition_spec(spec: str) -> Tuple[int, Optional[int], tuple, tuple]:
    """Parse one ``--partition START:END:SRCS:DESTS`` window.

    ``END`` may be empty or ``-`` for a permanent partition; ``SRCS`` and
    ``DESTS`` are comma-separated node ids.  Example: ``2:4:0:1,2`` blocks
    messages from node 0 to nodes 1 and 2 during rounds 2-4.
    """
    parts = spec.split(":")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"partition spec {spec!r} is not START:END:SRCS:DESTS"
        )
    try:
        start = int(parts[0])
        end = None if parts[1] in ("", "-") else int(parts[1])
        srcs = tuple(int(item) for item in parts[2].split(",") if item != "")
        dests = tuple(int(item) for item in parts[3].split(",") if item != "")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"partition spec {spec!r} contains a non-integer field"
        ) from None
    if not srcs or not dests:
        raise argparse.ArgumentTypeError(
            f"partition spec {spec!r} needs at least one src and one dest"
        )
    return (start, end, srcs, dests)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local model checking without the network (NSDI'11)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads and scenarios")

    def add_trace_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace-out",
            metavar="PATH",
            default=None,
            help="stream a structured JSONL trace to PATH "
            "(see docs/OBSERVABILITY.md)",
        )
        command.add_argument(
            "--metrics-interval",
            type=float,
            default=None,
            metavar="SECONDS",
            help="also emit trace metric samples every SECONDS of wall time "
            "(default: only when the explored depth grows)",
        )

    def add_registry_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--no-registry",
            dest="registry",
            action="store_false",
            help="do not register this run under the runs root "
            "(no heartbeats, invisible to `repro runs`)",
        )
        command.add_argument(
            "--registry-root",
            metavar="PATH",
            default=None,
            help="runs root directory (default: $REPRO_RUNS_ROOT or .lmc/runs)",
        )
        command.add_argument(
            "--coverage",
            action="store_true",
            help="record per-handler/per-invariant coverage counters "
            "(reported by `repro coverage`; see docs/OBSERVABILITY.md)",
        )

    def add_reader_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--registry-root",
            metavar="PATH",
            default=None,
            help="runs root directory (default: $REPRO_RUNS_ROOT or .lmc/runs)",
        )

    def add_check_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument("workload", choices=sorted(WORKLOADS))
        command.add_argument(
            "--algorithm",
            choices=("bdfs", "lmc-gen", "lmc-opt", "lmc-parallel"),
            default="lmc-opt",
        )
        command.add_argument("--nodes", type=int, default=3)
        command.add_argument("--buggy", action="store_true")
        command.add_argument("--max-seconds", type=float, default=None)
        command.add_argument("--max-depth", type=int, default=None)
        command.add_argument("--workers", type=int, default=0)
        command.add_argument(
            "--explore-workers",
            type=int,
            default=0,
            metavar="N",
            help="shard each exploration round's frontier across N pool "
            "workers (LMC algorithms only; 0 explores serially, -1 uses "
            "all CPUs; results are identical either way — see "
            "docs/PERFORMANCE.md)",
        )
        command.add_argument(
            "--faults",
            action="store_true",
            help="explore crash/restart fault schedules (LMC algorithms "
            "only; see docs/FAULTS.md)",
        )
        command.add_argument(
            "--max-crashes-per-node",
            type=int,
            default=1,
            metavar="N",
            help="crashes allowed on any single node's discovery path "
            "(default 1; implies --faults semantics only when --faults is set)",
        )
        command.add_argument(
            "--max-total-crashes",
            type=int,
            default=None,
            metavar="N",
            help="global cap on crash events across the run "
            "(default: only the per-node bound)",
        )
        command.add_argument(
            "--drop-faults",
            action="store_true",
            help="explore message-loss schedules against protocols that "
            "declare a handle_drop omission hook (LMC algorithms only; "
            "see docs/FAULTS.md)",
        )
        command.add_argument(
            "--max-drops",
            type=int,
            default=None,
            metavar="N",
            help="global cap on effective drop events across the run "
            "(default: unbounded)",
        )
        command.add_argument(
            "--duplicate-faults",
            action="store_true",
            help="explore at-least-once redelivery of every sent message "
            "(LMC algorithms only; see docs/FAULTS.md)",
        )
        command.add_argument(
            "--duplicate-limit",
            type=int,
            default=None,
            metavar="N",
            help="how many copies of one message value the monotonic "
            "network may admit (default 1; raise alongside "
            "--duplicate-faults to deepen redelivery exploration)",
        )
        command.add_argument(
            "--partition",
            dest="partitions",
            action="append",
            type=parse_partition_spec,
            default=None,
            metavar="START:END:SRCS:DESTS",
            help="block deliveries from SRCS to DESTS during rounds "
            "START..END (END empty or '-' means forever; repeatable; "
            "see docs/FAULTS.md)",
        )
        command.add_argument(
            "--symmetry-reduction",
            action="store_true",
            help="canonicalise system-state combinations to orbit "
            "representatives under the protocol-declared node-symmetry "
            "group (LMC algorithms only; see docs/REDUCTION.md)",
        )
        command.add_argument(
            "--por",
            action="store_true",
            help="prune non-canonical orderings of commuting deliveries "
            "from the predecessor DAG (LMC algorithms only; see "
            "docs/REDUCTION.md)",
        )
        command.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="N",
            help="write a durable checker checkpoint every N exploration "
            "rounds (lmc-gen/lmc-opt only; a final snapshot and a "
            "SIGTERM snapshot are always written once checkpointing is "
            "on — see docs/CHECKPOINTS.md)",
        )
        command.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help="checkpoint file path (default: <run dir>/checkpoint.json "
            "when the run is registered; implies checkpointing on)",
        )
        command.add_argument(
            "--extend-from",
            metavar="PATH",
            default=None,
            help="extend a completed depth-bounded run from its checkpoint: "
            "explore only the frontier the new --max-depth unblocks "
            "(see docs/CHECKPOINTS.md)",
        )

    check = sub.add_parser("check", help="model check a named workload")
    add_check_flags(check)
    add_trace_flags(check)
    add_registry_flags(check)

    trace = sub.add_parser(
        "trace",
        help="model check a workload with tracing on (check + default "
        "--trace-out <workload>.trace.jsonl)",
    )
    add_check_flags(trace)
    add_trace_flags(trace)
    add_registry_flags(trace)

    scenario = sub.add_parser(
        "scenario", help="run a paper experiment from its live snapshot"
    )
    scenario.add_argument("name", choices=("s55", "s56"))
    scenario.add_argument("--buggy", action="store_true", default=None)
    scenario.add_argument("--correct", dest="buggy", action="store_false")
    scenario.add_argument(
        "--symmetry-reduction",
        action="store_true",
        help="canonicalise system-state combinations to orbit "
        "representatives (the group is restricted to the snapshot's "
        "stabilizer; see docs/REDUCTION.md)",
    )
    scenario.add_argument(
        "--por",
        action="store_true",
        help="prune non-canonical orderings of commuting deliveries "
        "(see docs/REDUCTION.md)",
    )
    add_trace_flags(scenario)
    add_registry_flags(scenario)

    report = sub.add_parser(
        "trace-report",
        help="render a captured trace file into Fig. 13 / §5.4 tables",
    )
    report.add_argument("trace_file", metavar="TRACE.jsonl")

    runs = sub.add_parser(
        "runs", help="list registered runs (live and finished)"
    )
    runs.add_argument(
        "--gc",
        action="store_true",
        help="before listing, delete finished runs' leftover checkpoints "
        "(in-flight and killed runs keep theirs — they are resume points)",
    )
    add_reader_flags(runs)

    resume = sub.add_parser(
        "resume",
        help="continue a checkpointed run where it stopped "
        "(see docs/CHECKPOINTS.md)",
    )
    resume.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="run id (default: latest run with a checkpoint)",
    )
    resume.add_argument(
        "--from",
        dest="resume_path",
        metavar="PATH",
        default=None,
        help="checkpoint file (default: the run's checkpoint.json)",
    )
    resume.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="replace the original wall-clock budget (the other bounds "
        "must match the checkpoint and are taken from the original "
        "command line)",
    )
    add_reader_flags(resume)

    status = sub.add_parser(
        "status",
        help="show one run's latest heartbeat: depth, counters, progress/ETA",
    )
    status.add_argument(
        "run_id", nargs="?", default=None, help="run id (default: latest run)"
    )
    add_reader_flags(status)

    coverage = sub.add_parser(
        "coverage",
        help="report handler/invariant/fault coverage recorded by --coverage",
    )
    coverage.add_argument(
        "run_id", nargs="?", default=None, help="run id (default: latest run)"
    )
    add_reader_flags(coverage)

    serve = sub.add_parser(
        "serve-status",
        help="serve the run registry as read-only JSON over HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    add_reader_flags(serve)

    return parser


def _make_emitter(args: argparse.Namespace) -> TraceEmitter:
    """Build the trace sink the flags ask for (the null emitter otherwise).

    ``repro trace`` defaults ``--trace-out`` to ``<workload>.trace.jsonl``;
    the chosen path is written back onto ``args`` so ``main`` can report it.
    """
    path = getattr(args, "trace_out", None)
    if path is None and args.command == "trace":
        path = f"{args.workload}.trace.jsonl"
        args.trace_out = path
    return JsonlEmitter(path) if path else NULL_EMITTER


def _make_run_context(
    args: argparse.Namespace, argv: Optional[list]
) -> Tuple[Optional[RunHandle], Optional[CoverageTracker]]:
    """Register the run and build its coverage tracker, per the flags.

    Registration failures (an unwritable runs root) degrade to a warning:
    observability must never take the checker down with it.
    """
    coverage = CoverageTracker() if getattr(args, "coverage", False) else None
    if not getattr(args, "registry", True):
        return None, coverage
    extra: Dict[str, Any] = {}
    if getattr(args, "resumed_from", None):
        extra["resumed_from"] = args.resumed_from
    try:
        handle = RunRegistry(getattr(args, "registry_root", None)).register(
            command=args.command,
            workload=getattr(args, "workload", None) or getattr(args, "name", None),
            algorithm=getattr(args, "algorithm", None),
            argv=list(argv) if argv is not None else sys.argv[1:],
            **extra,
        )
    except OSError as exc:
        print(f"warning: cannot register run: {exc}", file=sys.stderr)
        return None, coverage
    handle.advertise_cadence(getattr(args, "metrics_interval", None))
    return handle, coverage


def run_check(
    args: argparse.Namespace,
    emitter: TraceEmitter = NULL_EMITTER,
    run_handle: Optional[RunHandle] = None,
    coverage: Optional[CoverageTracker] = None,
) -> CheckResult:
    """Run the ``check``/``trace`` subcommands: a named workload, one algorithm.

    The emitter and metrics cadence thread into the LMC checkers; the B-DFS
    baseline takes no per-phase instrumentation (its trace still carries
    the final counter snapshot ``main`` emits).
    """
    builder, _doc = WORKLOADS[args.workload]
    protocol, invariant = builder(args.nodes, args.buggy)
    budget = SearchBudget(max_depth=args.max_depth, max_seconds=args.max_seconds)
    interval = getattr(args, "metrics_interval", None)
    fault_overrides = {}
    if getattr(args, "faults", False):
        fault_overrides = dict(
            fault_events_enabled=True,
            max_crashes_per_node=args.max_crashes_per_node,
            max_total_crashes=args.max_total_crashes,
        )
    if getattr(args, "drop_faults", False):
        fault_overrides["drop_faults"] = True
        if args.max_drops is not None:
            fault_overrides["max_drops"] = args.max_drops
    if getattr(args, "duplicate_faults", False):
        fault_overrides["duplicate_faults"] = True
    if getattr(args, "duplicate_limit", None) is not None:
        fault_overrides["duplicate_limit"] = args.duplicate_limit
    if getattr(args, "partitions", None):
        fault_overrides["partition_schedules"] = tuple(args.partitions)
    if getattr(args, "symmetry_reduction", False):
        fault_overrides["symmetry_reduction"] = True
    if getattr(args, "por", False):
        fault_overrides["por_pruning"] = True
    explore_workers = getattr(args, "explore_workers", 0)
    if explore_workers:
        # -1 (or any negative) = all CPUs, matching --workers' "0 or None"
        # idiom while keeping this flag's 0 meaning "serial".
        fault_overrides["explore_workers"] = (
            None if explore_workers < 0 else explore_workers
        )
    # Checkpointing (docs/CHECKPOINTS.md): any of the three flags turns the
    # snapshot layer on; the file defaults into the registry run directory
    # so `repro resume <run_id>` finds it without extra bookkeeping.
    checkpoint_path = getattr(args, "checkpoint", None)
    checkpoint_every = getattr(args, "checkpoint_every", None)
    extend_from = getattr(args, "extend_from", None)
    resume_from = getattr(args, "resume_from", None)
    checkpointer = None
    if checkpoint_path or checkpoint_every or extend_from or resume_from:
        if args.algorithm not in ("lmc-gen", "lmc-opt"):
            raise CheckpointError(
                "checkpoints require --algorithm lmc-gen or lmc-opt"
            )
        if checkpoint_path is None:
            checkpoint_path = (
                os.path.join(run_handle.directory, "checkpoint.json")
                if run_handle is not None
                else f"{args.workload}.checkpoint.json"
            )
        checkpointer = Checkpointer(checkpoint_path, every_rounds=checkpoint_every)
    if args.algorithm == "bdfs":
        # The fault scheduler is an LMC feature (docs/FAULTS.md); B-DFS
        # explores the paper's original event vocabulary — it registers
        # and finishes in the registry but emits no heartbeats.
        return GlobalModelChecker(protocol, invariant, budget=budget).run()
    if args.algorithm == "lmc-parallel":
        checker: Any = ParallelLocalModelChecker(
            protocol,
            invariant,
            budget=budget,
            config=LMCConfig.optimized(**fault_overrides),
            workers=args.workers or None,
            emitter=emitter,
            metrics_interval=interval,
            run_handle=run_handle,
            coverage=coverage,
        )
    else:
        config = (
            LMCConfig.optimized(**fault_overrides)
            if args.algorithm == "lmc-opt"
            else LMCConfig.general(**fault_overrides)
        )
        checker = LocalModelChecker(
            protocol,
            invariant,
            budget=budget,
            config=config,
            emitter=emitter,
            metrics_interval=interval,
            run_handle=run_handle,
            coverage=coverage,
            checkpointer=checkpointer,
        )
    if resume_from:
        result = checker.resume(load_checkpoint(resume_from))
    elif extend_from:
        result = checker.extend_depth(load_checkpoint(extend_from))
    else:
        result = checker.run()
    if run_handle is not None and coverage is not None:
        run_handle.write_coverage(checker.coverage_report())
    return result


def run_scenario(
    args: argparse.Namespace,
    emitter: TraceEmitter = NULL_EMITTER,
    run_handle: Optional[RunHandle] = None,
    coverage: Optional[CoverageTracker] = None,
) -> CheckResult:
    """Run a §5.5/§5.6 scenario from its live snapshot (optionally traced)."""
    buggy = True if args.buggy is None else args.buggy
    interval = getattr(args, "metrics_interval", None)
    if args.name == "s55":
        from repro.protocols.paxos import PaxosAgreement
        from repro.protocols.paxos.scenarios import (
            partial_choice_state,
            scenario_protocol,
        )

        protocol = scenario_protocol(buggy)
        invariant: Invariant = PaxosAgreement(0)
        initial = partial_choice_state()
    else:
        from repro.protocols.onepaxos import OnePaxosAgreement
        from repro.protocols.onepaxos.scenarios import (
            post_leaderchange_state,
            scenario_protocol as onepaxos_scenario,
        )

        protocol = onepaxos_scenario(buggy)
        invariant = OnePaxosAgreement(0)
        initial = post_leaderchange_state(protocol)
    overrides = {}
    if getattr(args, "symmetry_reduction", False):
        overrides["symmetry_reduction"] = True
    if getattr(args, "por", False):
        overrides["por_pruning"] = True
    checker = LocalModelChecker(
        protocol,
        invariant,
        config=LMCConfig.optimized(**overrides),
        emitter=emitter,
        metrics_interval=interval,
        run_handle=run_handle,
        coverage=coverage,
    )
    result = checker.run(initial)
    if run_handle is not None and coverage is not None:
        run_handle.write_coverage(checker.coverage_report())
    return result


def _prepare_resume(
    args: argparse.Namespace,
) -> Optional[Tuple[argparse.Namespace, list]]:
    """Turn ``repro resume <run_id>`` into the original check invocation.

    The registry's ``meta.json`` stores the run's argv; reparsing it
    rebuilds the exact workload, configuration and budget the checkpoint
    fingerprints.  Returns the rebuilt args (with ``resume_from`` set for
    :func:`run_check`) and the original argv (recorded on the new run so
    *it* can be resumed in turn), or None after printing an error.
    """
    registry = RunRegistry(getattr(args, "registry_root", None))
    if args.run_id:
        record = registry.load(args.run_id)
        if record is None:
            print(f"error: no run {args.run_id} under {registry.root}", file=sys.stderr)
            return None
    else:
        record = next(
            (r for r in reversed(registry.list_runs()) if r.has_checkpoint()),
            None,
        )
        if record is None:
            print(
                f"error: no checkpointed runs under {registry.root}",
                file=sys.stderr,
            )
            return None
    path = args.resume_path or record.checkpoint_path
    if not os.path.isfile(path):
        print(
            f"error: run {record.run_id} has no checkpoint at {path} "
            "(was it started with --checkpoint-every / --checkpoint?)",
            file=sys.stderr,
        )
        return None
    saved_argv = record.meta.get("argv")
    if not saved_argv:
        print(
            f"error: run {record.run_id} recorded no argv; "
            "resume it manually with `repro check ... --extend-from`-style flags",
            file=sys.stderr,
        )
        return None
    saved_args = build_parser().parse_args(saved_argv)
    if saved_args.command not in ("check", "trace"):
        print(
            f"error: run {record.run_id} ran `{saved_args.command}`, "
            "which is not resumable",
            file=sys.stderr,
        )
        return None
    if args.max_seconds is not None:
        saved_args.max_seconds = args.max_seconds
    if getattr(args, "registry_root", None) is not None:
        saved_args.registry_root = args.registry_root
    saved_args.resume_from = path
    saved_args.resumed_from = record.run_id
    saved_args.extend_from = None
    return saved_args, list(saved_argv)


def _load_run(args: argparse.Namespace) -> Tuple[RunRegistry, Optional[RunRecord]]:
    """Resolve the run a reader command addresses (explicit id or latest)."""
    registry = RunRegistry(getattr(args, "registry_root", None))
    run_id = getattr(args, "run_id", None)
    record = registry.load(run_id) if run_id else registry.latest()
    return registry, record


def run_runs(args: argparse.Namespace) -> int:
    """``repro runs``: one row per registered run, newest last."""
    registry = RunRegistry(args.registry_root)
    if getattr(args, "gc", False):
        pruned = registry.gc_checkpoints()
        for path in pruned:
            print(f"pruned {path}")
        print(f"pruned {len(pruned)} stale checkpoint(s)")
    records = registry.list_runs()
    if not records:
        print(f"no runs registered under {registry.root}")
        return 0
    rows = []
    for record in records:
        heartbeat = record.heartbeat or {}
        progress = heartbeat.get("progress") or {}
        rows.append(
            (
                record.run_id,
                record.meta.get("command") or "-",
                record.meta.get("workload") or "-",
                record.meta.get("algorithm") or heartbeat.get("algorithm") or "-",
                record.status(),
                heartbeat.get("depth", "-"),
                int(heartbeat["transitions"])
                if "transitions" in heartbeat
                else "-",
                # A finished run's last in-flight ETA is no longer meaningful.
                format_eta(progress.get("eta_s")) if record.result is None else "-",
            )
        )
    print(
        format_table(
            [
                "run",
                "command",
                "workload",
                "algorithm",
                "status",
                "depth",
                "transitions",
                "eta",
            ],
            rows,
        )
    )
    return 0


def render_status(record: RunRecord) -> str:
    """The ``repro status`` detail view of one run."""
    heartbeat = record.heartbeat or {}
    meta = record.meta
    lines = [
        f"run           : {record.run_id}",
        f"status        : {record.status()}",
        f"command       : {meta.get('command') or '-'}"
        + (f" {meta.get('workload')}" if meta.get("workload") else ""),
        f"algorithm     : {meta.get('algorithm') or heartbeat.get('algorithm') or '-'}",
        f"started       : {meta.get('started') or '-'} (pid {meta.get('pid')})",
    ]
    age = record.heartbeat_age_s()
    if age is not None:
        lines.append(f"heartbeat     : {age:.1f}s ago")
    if heartbeat:
        lines.append(
            "depth         : "
            f"{heartbeat.get('depth', '-')}"
            f" (round {heartbeat.get('round', '-')},"
            f" frontier {heartbeat.get('frontier', '-')})"
        )
        if "transitions" in heartbeat:
            lines.append(f"transitions   : {int(heartbeat['transitions'])}")
        if "node_states" in heartbeat:
            lines.append(f"node states   : {int(heartbeat['node_states'])}")
        if "rss_bytes" in heartbeat:
            lines.append(
                f"rss           : {heartbeat['rss_bytes'] / (1024 * 1024):.1f} MiB"
            )
        if "elapsed_s" in heartbeat:
            lines.append(f"elapsed       : {heartbeat['elapsed_s']:.1f}s")
        checkpoint = heartbeat.get("checkpoint")
        if isinstance(checkpoint, dict):
            lines.append(
                f"last checkpoint: round {checkpoint.get('round', '-')} "
                f"({checkpoint.get('writes', '-')} writes, "
                f"{checkpoint.get('path', '-')})"
            )
    # Progress/ETA describe an in-flight run; once a result exists the
    # estimate is history, not a forecast.
    progress = (heartbeat.get("progress") or {}) if record.result is None else {}
    if progress:
        fraction = progress.get("fraction_done")
        factor = progress.get("growth_factor")
        rate = progress.get("rate_per_s")
        lines.append(
            "progress      : "
            + (f"{fraction * 100.0:.1f}% of est. work" if fraction is not None else "-")
            + (
                f" (depth {progress.get('depth')}/{progress.get('max_depth')})"
                if progress.get("max_depth") is not None
                else " (no depth bound)"
            )
        )
        if factor is not None:
            lines.append(f"growth        : x{factor:.2f} work per depth")
        if rate is not None:
            lines.append(f"rate          : {rate:.0f} transitions/s")
        lines.append(f"eta           : {format_eta(progress.get('eta_s'))}")
    if record.result is not None:
        result = record.result
        lines.append(
            "result        : "
            + " ".join(
                f"{key}={result[key]}"
                for key in sorted(result)
                if key not in ("run_id", "wall_ts")
            )
        )
    return "\n".join(lines)


def run_status(args: argparse.Namespace) -> int:
    """``repro status [RUN_ID]``: the latest heartbeat, cross-process."""
    registry, record = _load_run(args)
    if record is None:
        target = args.run_id or "latest run"
        print(f"error: no {target} under {registry.root}", file=sys.stderr)
        return 2
    print(render_status(record))
    return 0


def run_coverage(args: argparse.Namespace) -> int:
    """``repro coverage [RUN_ID]``: the recorded handler-coverage report."""
    registry, record = _load_run(args)
    if record is None:
        target = args.run_id or "latest run"
        print(f"error: no {target} under {registry.root}", file=sys.stderr)
        return 2
    coverage = record.coverage()
    if coverage is None:
        print(
            f"error: run {record.run_id} recorded no coverage "
            "(re-run with --coverage)",
            file=sys.stderr,
        )
        return 2
    print(f"run           : {record.run_id}")
    print(render_coverage(coverage))
    return 0


def run_serve_status(args: argparse.Namespace) -> int:
    """``repro serve-status``: read-only JSON over HTTP until interrupted."""
    from repro.obs.statusd import serve_forever

    registry = RunRegistry(args.registry_root)

    def announce(address: Tuple[str, int]) -> None:
        print(f"serving run registry {registry.root}")
        print(f"  http://{address[0]}:{address[1]}/runs")

    try:
        serve_forever(registry, host=args.host, port=args.port, ready=announce)
    except OSError as exc:
        print(f"error: cannot serve status: {exc}", file=sys.stderr)
        return 2
    return 0


def run_trace_report(args: argparse.Namespace) -> int:
    """Render a captured trace file back into the paper's tables."""
    from repro.obs.report import TraceSummary

    try:
        summary = TraceSummary.from_file(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summary.render())
    return 0


def print_result(result: CheckResult) -> None:
    print(f"algorithm     : {result.algorithm}")
    print(f"completed     : {result.completed} ({result.stop_reason})")
    stats = result.stats
    print(f"transitions   : {stats.transitions}")
    if stats.global_states:
        print(f"global states : {stats.global_states}")
    if stats.node_states:
        print(f"node states   : {stats.node_states}")
        print(f"system states : {stats.system_states_created}")
        print(f"preliminary   : {stats.preliminary_violations}")
        print(f"soundness     : {stats.soundness_calls}")
    breakdown = format_phase_breakdown(stats.phase_seconds)
    if breakdown:
        print()
        print(breakdown)
        print()
    print(f"bugs          : {len(result.bugs)}")
    for bug in result.bugs:
        print()
        print(bug.summary())


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("workloads:")
        for name, (_builder, doc) in sorted(WORKLOADS.items()):
            print(f"  {name:10s} {doc}")
        print("scenarios:")
        print("  s55        §5.5 injected Paxos bug from the live snapshot")
        print("  s56        §5.6 1Paxos initialization bug from the snapshot")
        return 0
    if args.command == "trace-report":
        return run_trace_report(args)
    if args.command == "runs":
        return run_runs(args)
    if args.command == "status":
        return run_status(args)
    if args.command == "coverage":
        return run_coverage(args)
    if args.command == "serve-status":
        return run_serve_status(args)
    if args.command == "resume":
        prepared = _prepare_resume(args)
        if prepared is None:
            return 2
        args, argv = prepared
    try:
        emitter = _make_emitter(args)
    except OSError as exc:
        print(f"error: cannot open trace output: {exc}", file=sys.stderr)
        return 2
    run_handle, coverage = _make_run_context(args, argv)
    try:
        emitter.event(
            "run_start",
            command=args.command,
            workload=getattr(args, "workload", None) or getattr(args, "name", None),
            algorithm=getattr(args, "algorithm", None),
            max_depth=getattr(args, "max_depth", None),
            run_id=run_handle.run_id if run_handle is not None else None,
        )
        if args.command in ("check", "trace"):
            result = run_check(args, emitter, run_handle, coverage)
        else:
            result = run_scenario(args, emitter, run_handle, coverage)
        # End-of-run bookkeeping: the merged final counters (which, for a
        # parallel run, only exist after the fan-out) and a closing event,
        # so trace-report always has an authoritative last metric record.
        emitter.metric(**result.stats.snapshot())
        emitter.event(
            "run_end",
            algorithm=result.algorithm,
            completed=result.completed,
            stop_reason=result.stop_reason,
            bugs=len(result.bugs),
        )
    except CheckpointError as exc:
        if run_handle is not None:
            run_handle.finish(status="failed", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BaseException as exc:
        if run_handle is not None:
            run_handle.finish(status="failed", error=repr(exc))
        raise
    finally:
        emitter.close()
    if run_handle is not None:
        run_handle.finish(
            status="finished",
            algorithm=result.algorithm,
            completed=result.completed,
            stop_reason=result.stop_reason,
            bugs=len(result.bugs),
            transitions=result.stats.transitions,
        )
    print_result(result)
    if getattr(args, "trace_out", None):
        print(f"\ntrace written : {args.trace_out}")
    if run_handle is not None:
        print(f"run id        : {run_handle.run_id}")
    return 1 if result.found_bug else 0


if __name__ == "__main__":
    sys.exit(main())
