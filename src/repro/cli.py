"""Command-line interface: run checkers on named workloads.

Examples::

    python -m repro list
    python -m repro check paxos --algorithm lmc-opt
    python -m repro check paxos --algorithm bdfs --max-seconds 60
    python -m repro check 2pc --buggy --algorithm lmc-gen
    python -m repro scenario s55 --buggy
    python -m repro scenario s56
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.invariants.base import Invariant
from repro.model.protocol import Protocol
from repro.reports import CheckResult

#: protocol name -> (builder(nodes, buggy) -> (protocol, invariant), doc)
WorkloadBuilder = Callable[[int, bool], Tuple[Protocol, Invariant]]


def _paxos(nodes: int, buggy: bool):
    from repro.protocols.paxos import (
        BuggyPaxosProtocol,
        PaxosAgreement,
        PaxosProtocol,
    )

    cls = BuggyPaxosProtocol if buggy else PaxosProtocol
    return cls(num_nodes=nodes, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


def _tree(nodes: int, buggy: bool):
    from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol

    del nodes, buggy
    return TreeProtocol(), ReceivedImpliesSent()


def _chain(nodes: int, buggy: bool):
    from repro.protocols.chain import ChainOrder, ChainProtocol

    del buggy
    return ChainProtocol(max(nodes, 2)), ChainOrder()


def _echo(nodes: int, buggy: bool):
    from repro.protocols.echo import EchoProtocol, PongsImplyPing

    del buggy
    return EchoProtocol(max(nodes, 2)), PongsImplyPing()


def _twophase(nodes: int, buggy: bool):
    from repro.protocols.twophase import (
        CommitValidity,
        EagerCommitCoordinator,
        TwoPhaseCommit,
    )

    cls = EagerCommitCoordinator if buggy else TwoPhaseCommit
    return cls(max(nodes, 2), no_voters=(max(nodes, 2) - 1,)), CommitValidity()


def _ring(nodes: int, buggy: bool):
    from repro.protocols.ring import (
        AtMostOneLeader,
        GreedyRingElection,
        RingElection,
    )

    cls = GreedyRingElection if buggy else RingElection
    return cls(max(nodes, 2), initiators=(0,)), AtMostOneLeader()


def _stream(nodes: int, buggy: bool):
    from repro.protocols.stream import InOrderDelivery, StreamProtocol

    del nodes, buggy
    return StreamProtocol(3), InOrderDelivery()


def _randtree(nodes: int, buggy: bool):
    from repro.protocols.randtree import (
        ChildrenSiblingsDisjoint,
        RandTreeProtocol,
        SiblingMixupRandTree,
    )

    cls = SiblingMixupRandTree if buggy else RandTreeProtocol
    return cls(max(nodes, 2)), ChildrenSiblingsDisjoint()


WORKLOADS: Dict[str, Tuple[WorkloadBuilder, str]] = {
    "paxos": (_paxos, "3-role Paxos, one proposal (--buggy: §5.5 bug)"),
    "tree": (_tree, "the §2 forwarding-tree primer"),
    "chain": (_chain, "sequential token chain (§4.3 counter-example)"),
    "echo": (_echo, "all-to-all echo broadcast (maximally chatty)"),
    "2pc": (_twophase, "two-phase commit (--buggy: eager commit)"),
    "randtree": (_randtree, "RandTree membership (--buggy: sibling mixup)"),
    "ring": (_ring, "ring leader election (--buggy: greedy crowning)"),
    "stream": (_stream, "sequenced datagram stream (in-order invariant fails)"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local model checking without the network (NSDI'11)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads and scenarios")

    check = sub.add_parser("check", help="model check a named workload")
    check.add_argument("workload", choices=sorted(WORKLOADS))
    check.add_argument(
        "--algorithm",
        choices=("bdfs", "lmc-gen", "lmc-opt", "lmc-parallel"),
        default="lmc-opt",
    )
    check.add_argument("--nodes", type=int, default=3)
    check.add_argument("--buggy", action="store_true")
    check.add_argument("--max-seconds", type=float, default=None)
    check.add_argument("--max-depth", type=int, default=None)
    check.add_argument("--workers", type=int, default=0)

    scenario = sub.add_parser(
        "scenario", help="run a paper experiment from its live snapshot"
    )
    scenario.add_argument("name", choices=("s55", "s56"))
    scenario.add_argument("--buggy", action="store_true", default=None)
    scenario.add_argument("--correct", dest="buggy", action="store_false")

    return parser


def run_check(args: argparse.Namespace) -> CheckResult:
    builder, _doc = WORKLOADS[args.workload]
    protocol, invariant = builder(args.nodes, args.buggy)
    budget = SearchBudget(max_depth=args.max_depth, max_seconds=args.max_seconds)
    if args.algorithm == "bdfs":
        return GlobalModelChecker(protocol, invariant, budget=budget).run()
    if args.algorithm == "lmc-parallel":
        return ParallelLocalModelChecker(
            protocol,
            invariant,
            budget=budget,
            config=LMCConfig.optimized(),
            workers=args.workers or None,
        ).run()
    config = (
        LMCConfig.optimized()
        if args.algorithm == "lmc-opt"
        else LMCConfig.general()
    )
    return LocalModelChecker(protocol, invariant, budget=budget, config=config).run()


def run_scenario(args: argparse.Namespace) -> CheckResult:
    buggy = True if args.buggy is None else args.buggy
    if args.name == "s55":
        from repro.protocols.paxos import PaxosAgreement
        from repro.protocols.paxos.scenarios import (
            partial_choice_state,
            scenario_protocol,
        )

        protocol = scenario_protocol(buggy)
        return LocalModelChecker(
            protocol, PaxosAgreement(0), config=LMCConfig.optimized()
        ).run(partial_choice_state())
    from repro.protocols.onepaxos import OnePaxosAgreement
    from repro.protocols.onepaxos.scenarios import (
        post_leaderchange_state,
        scenario_protocol as onepaxos_scenario,
    )

    protocol = onepaxos_scenario(buggy)
    return LocalModelChecker(
        protocol, OnePaxosAgreement(0), config=LMCConfig.optimized()
    ).run(post_leaderchange_state(protocol))


def print_result(result: CheckResult) -> None:
    print(f"algorithm     : {result.algorithm}")
    print(f"completed     : {result.completed} ({result.stop_reason})")
    stats = result.stats
    print(f"transitions   : {stats.transitions}")
    if stats.global_states:
        print(f"global states : {stats.global_states}")
    if stats.node_states:
        print(f"node states   : {stats.node_states}")
        print(f"system states : {stats.system_states_created}")
        print(f"preliminary   : {stats.preliminary_violations}")
        print(f"soundness     : {stats.soundness_calls}")
    print(f"bugs          : {len(result.bugs)}")
    for bug in result.bugs:
        print()
        print(bug.summary())


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("workloads:")
        for name, (_builder, doc) in sorted(WORKLOADS.items()):
            print(f"  {name:10s} {doc}")
        print("scenarios:")
        print("  s55        §5.5 injected Paxos bug from the live snapshot")
        print("  s56        §5.6 1Paxos initialization bug from the snapshot")
        return 0
    if args.command == "check":
        result = run_check(args)
    else:
        result = run_scenario(args)
    print_result(result)
    return 1 if result.found_bug else 0


if __name__ == "__main__":
    sys.exit(main())
