"""Command-line interface: run checkers on named workloads.

Examples::

    python -m repro list
    python -m repro check paxos --algorithm lmc-opt
    python -m repro check paxos --algorithm bdfs --max-seconds 60
    python -m repro check 2pc --buggy --algorithm lmc-gen
    python -m repro scenario s55 --buggy
    python -m repro scenario s56
    python -m repro trace paxos                    # traced run, JSONL out
    python -m repro check paxos --trace-out t.jsonl --metrics-interval 0.5
    python -m repro trace-report t.jsonl           # Fig. 13 / §5.4 tables

See docs/OBSERVABILITY.md for the trace record schema.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.core.checker import LocalModelChecker
from repro.core.config import LMCConfig
from repro.core.parallel import ParallelLocalModelChecker
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.invariants.base import Invariant
from repro.model.protocol import Protocol
from repro.obs.emitter import NULL_EMITTER, JsonlEmitter, TraceEmitter
from repro.reports import CheckResult
from repro.stats.reporting import format_phase_breakdown

#: protocol name -> (builder(nodes, buggy) -> (protocol, invariant), doc)
WorkloadBuilder = Callable[[int, bool], Tuple[Protocol, Invariant]]


def _paxos(nodes: int, buggy: bool):
    from repro.protocols.paxos import (
        BuggyPaxosProtocol,
        PaxosAgreement,
        PaxosProtocol,
    )

    cls = BuggyPaxosProtocol if buggy else PaxosProtocol
    return cls(num_nodes=nodes, proposals=((0, 0, "v0"),)), PaxosAgreement(0)


def _tree(nodes: int, buggy: bool):
    from repro.protocols.tree import ReceivedImpliesSent, TreeProtocol

    del nodes, buggy
    return TreeProtocol(), ReceivedImpliesSent()


def _chain(nodes: int, buggy: bool):
    from repro.protocols.chain import ChainOrder, ChainProtocol

    del buggy
    return ChainProtocol(max(nodes, 2)), ChainOrder()


def _echo(nodes: int, buggy: bool):
    from repro.protocols.echo import EchoProtocol, PongsImplyPing

    del buggy
    return EchoProtocol(max(nodes, 2)), PongsImplyPing()


def _twophase(nodes: int, buggy: bool):
    from repro.protocols.twophase import (
        CommitValidity,
        EagerCommitCoordinator,
        TwoPhaseCommit,
    )

    cls = EagerCommitCoordinator if buggy else TwoPhaseCommit
    return cls(max(nodes, 2), no_voters=(max(nodes, 2) - 1,)), CommitValidity()


def _ring(nodes: int, buggy: bool):
    from repro.protocols.ring import (
        AtMostOneLeader,
        GreedyRingElection,
        RingElection,
    )

    cls = GreedyRingElection if buggy else RingElection
    return cls(max(nodes, 2), initiators=(0,)), AtMostOneLeader()


def _stream(nodes: int, buggy: bool):
    from repro.protocols.stream import InOrderDelivery, StreamProtocol

    del nodes, buggy
    return StreamProtocol(3), InOrderDelivery()


def _randtree(nodes: int, buggy: bool):
    from repro.protocols.randtree import (
        ChildrenSiblingsDisjoint,
        RandTreeProtocol,
        SiblingMixupRandTree,
    )

    cls = SiblingMixupRandTree if buggy else RandTreeProtocol
    return cls(max(nodes, 2)), ChildrenSiblingsDisjoint()


WORKLOADS: Dict[str, Tuple[WorkloadBuilder, str]] = {
    "paxos": (_paxos, "3-role Paxos, one proposal (--buggy: §5.5 bug)"),
    "tree": (_tree, "the §2 forwarding-tree primer"),
    "chain": (_chain, "sequential token chain (§4.3 counter-example)"),
    "echo": (_echo, "all-to-all echo broadcast (maximally chatty)"),
    "2pc": (_twophase, "two-phase commit (--buggy: eager commit)"),
    "randtree": (_randtree, "RandTree membership (--buggy: sibling mixup)"),
    "ring": (_ring, "ring leader election (--buggy: greedy crowning)"),
    "stream": (_stream, "sequenced datagram stream (in-order invariant fails)"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local model checking without the network (NSDI'11)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads and scenarios")

    def add_trace_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace-out",
            metavar="PATH",
            default=None,
            help="stream a structured JSONL trace to PATH "
            "(see docs/OBSERVABILITY.md)",
        )
        command.add_argument(
            "--metrics-interval",
            type=float,
            default=None,
            metavar="SECONDS",
            help="also emit trace metric samples every SECONDS of wall time "
            "(default: only when the explored depth grows)",
        )

    def add_check_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument("workload", choices=sorted(WORKLOADS))
        command.add_argument(
            "--algorithm",
            choices=("bdfs", "lmc-gen", "lmc-opt", "lmc-parallel"),
            default="lmc-opt",
        )
        command.add_argument("--nodes", type=int, default=3)
        command.add_argument("--buggy", action="store_true")
        command.add_argument("--max-seconds", type=float, default=None)
        command.add_argument("--max-depth", type=int, default=None)
        command.add_argument("--workers", type=int, default=0)
        command.add_argument(
            "--explore-workers",
            type=int,
            default=0,
            metavar="N",
            help="shard each exploration round's frontier across N pool "
            "workers (LMC algorithms only; 0 explores serially, -1 uses "
            "all CPUs; results are identical either way — see "
            "docs/PERFORMANCE.md)",
        )
        command.add_argument(
            "--faults",
            action="store_true",
            help="explore crash/restart fault schedules (LMC algorithms "
            "only; see docs/FAULTS.md)",
        )
        command.add_argument(
            "--max-crashes-per-node",
            type=int,
            default=1,
            metavar="N",
            help="crashes allowed on any single node's discovery path "
            "(default 1; implies --faults semantics only when --faults is set)",
        )
        command.add_argument(
            "--max-total-crashes",
            type=int,
            default=None,
            metavar="N",
            help="global cap on crash events across the run "
            "(default: only the per-node bound)",
        )

    check = sub.add_parser("check", help="model check a named workload")
    add_check_flags(check)
    add_trace_flags(check)

    trace = sub.add_parser(
        "trace",
        help="model check a workload with tracing on (check + default "
        "--trace-out <workload>.trace.jsonl)",
    )
    add_check_flags(trace)
    add_trace_flags(trace)

    scenario = sub.add_parser(
        "scenario", help="run a paper experiment from its live snapshot"
    )
    scenario.add_argument("name", choices=("s55", "s56"))
    scenario.add_argument("--buggy", action="store_true", default=None)
    scenario.add_argument("--correct", dest="buggy", action="store_false")
    add_trace_flags(scenario)

    report = sub.add_parser(
        "trace-report",
        help="render a captured trace file into Fig. 13 / §5.4 tables",
    )
    report.add_argument("trace_file", metavar="TRACE.jsonl")

    return parser


def _make_emitter(args: argparse.Namespace) -> TraceEmitter:
    """Build the trace sink the flags ask for (the null emitter otherwise).

    ``repro trace`` defaults ``--trace-out`` to ``<workload>.trace.jsonl``;
    the chosen path is written back onto ``args`` so ``main`` can report it.
    """
    path = getattr(args, "trace_out", None)
    if path is None and args.command == "trace":
        path = f"{args.workload}.trace.jsonl"
        args.trace_out = path
    return JsonlEmitter(path) if path else NULL_EMITTER


def run_check(
    args: argparse.Namespace, emitter: TraceEmitter = NULL_EMITTER
) -> CheckResult:
    """Run the ``check``/``trace`` subcommands: a named workload, one algorithm.

    The emitter and metrics cadence thread into the LMC checkers; the B-DFS
    baseline takes no per-phase instrumentation (its trace still carries
    the final counter snapshot ``main`` emits).
    """
    builder, _doc = WORKLOADS[args.workload]
    protocol, invariant = builder(args.nodes, args.buggy)
    budget = SearchBudget(max_depth=args.max_depth, max_seconds=args.max_seconds)
    interval = getattr(args, "metrics_interval", None)
    fault_overrides = {}
    if getattr(args, "faults", False):
        fault_overrides = dict(
            fault_events_enabled=True,
            max_crashes_per_node=args.max_crashes_per_node,
            max_total_crashes=args.max_total_crashes,
        )
    explore_workers = getattr(args, "explore_workers", 0)
    if explore_workers:
        # -1 (or any negative) = all CPUs, matching --workers' "0 or None"
        # idiom while keeping this flag's 0 meaning "serial".
        fault_overrides["explore_workers"] = (
            None if explore_workers < 0 else explore_workers
        )
    if args.algorithm == "bdfs":
        # The fault scheduler is an LMC feature (docs/FAULTS.md); B-DFS
        # explores the paper's original event vocabulary.
        return GlobalModelChecker(protocol, invariant, budget=budget).run()
    if args.algorithm == "lmc-parallel":
        return ParallelLocalModelChecker(
            protocol,
            invariant,
            budget=budget,
            config=LMCConfig.optimized(**fault_overrides),
            workers=args.workers or None,
            emitter=emitter,
            metrics_interval=interval,
        ).run()
    config = (
        LMCConfig.optimized(**fault_overrides)
        if args.algorithm == "lmc-opt"
        else LMCConfig.general(**fault_overrides)
    )
    return LocalModelChecker(
        protocol,
        invariant,
        budget=budget,
        config=config,
        emitter=emitter,
        metrics_interval=interval,
    ).run()


def run_scenario(
    args: argparse.Namespace, emitter: TraceEmitter = NULL_EMITTER
) -> CheckResult:
    """Run a §5.5/§5.6 scenario from its live snapshot (optionally traced)."""
    buggy = True if args.buggy is None else args.buggy
    interval = getattr(args, "metrics_interval", None)
    if args.name == "s55":
        from repro.protocols.paxos import PaxosAgreement
        from repro.protocols.paxos.scenarios import (
            partial_choice_state,
            scenario_protocol,
        )

        protocol = scenario_protocol(buggy)
        return LocalModelChecker(
            protocol,
            PaxosAgreement(0),
            config=LMCConfig.optimized(),
            emitter=emitter,
            metrics_interval=interval,
        ).run(partial_choice_state())
    from repro.protocols.onepaxos import OnePaxosAgreement
    from repro.protocols.onepaxos.scenarios import (
        post_leaderchange_state,
        scenario_protocol as onepaxos_scenario,
    )

    protocol = onepaxos_scenario(buggy)
    return LocalModelChecker(
        protocol,
        OnePaxosAgreement(0),
        config=LMCConfig.optimized(),
        emitter=emitter,
        metrics_interval=interval,
    ).run(post_leaderchange_state(protocol))


def run_trace_report(args: argparse.Namespace) -> int:
    """Render a captured trace file back into the paper's tables."""
    from repro.obs.report import TraceSummary

    try:
        summary = TraceSummary.from_file(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summary.render())
    return 0


def print_result(result: CheckResult) -> None:
    print(f"algorithm     : {result.algorithm}")
    print(f"completed     : {result.completed} ({result.stop_reason})")
    stats = result.stats
    print(f"transitions   : {stats.transitions}")
    if stats.global_states:
        print(f"global states : {stats.global_states}")
    if stats.node_states:
        print(f"node states   : {stats.node_states}")
        print(f"system states : {stats.system_states_created}")
        print(f"preliminary   : {stats.preliminary_violations}")
        print(f"soundness     : {stats.soundness_calls}")
    breakdown = format_phase_breakdown(stats.phase_seconds)
    if breakdown:
        print()
        print(breakdown)
        print()
    print(f"bugs          : {len(result.bugs)}")
    for bug in result.bugs:
        print()
        print(bug.summary())


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("workloads:")
        for name, (_builder, doc) in sorted(WORKLOADS.items()):
            print(f"  {name:10s} {doc}")
        print("scenarios:")
        print("  s55        §5.5 injected Paxos bug from the live snapshot")
        print("  s56        §5.6 1Paxos initialization bug from the snapshot")
        return 0
    if args.command == "trace-report":
        return run_trace_report(args)
    try:
        emitter = _make_emitter(args)
    except OSError as exc:
        print(f"error: cannot open trace output: {exc}", file=sys.stderr)
        return 2
    try:
        if args.command in ("check", "trace"):
            result = run_check(args, emitter)
        else:
            result = run_scenario(args, emitter)
        # End-of-run bookkeeping: the merged final counters (which, for a
        # parallel run, only exist after the fan-out) and a closing event,
        # so trace-report always has an authoritative last metric record.
        emitter.metric(**result.stats.snapshot())
        emitter.event(
            "run_end",
            algorithm=result.algorithm,
            completed=result.completed,
            stop_reason=result.stop_reason,
            bugs=len(result.bugs),
        )
    finally:
        emitter.close()
    print_result(result)
    if getattr(args, "trace_out", None):
        print(f"\ntrace written : {args.trace_out}")
    return 1 if result.found_bug else 0


if __name__ == "__main__":
    sys.exit(main())
