"""Graphviz (DOT) export of exploration structures.

Debugging a model checker means looking at graphs: the per-node predecessor
DAG LMC builds (which sequences can reach a state? why did soundness reject
a combination?) and the witness trace of a confirmed bug (who sent what to
whom, in the found total order).  This module renders both as plain DOT
text — no graphviz dependency, just strings you can pipe into ``dot -Tsvg``
or paste into an online renderer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.records import LocalStateSpace, NodeStateRecord
from repro.model.events import (
    DeliveryEvent,
    DropEvent,
    DuplicateEvent,
    InternalEvent,
)
from repro.reports import BugReport


def _escape(text: str, limit: int = 60) -> str:
    flattened = text.replace("\\", "\\\\").replace('"', '\\"')
    if len(flattened) > limit:
        flattened = flattened[: limit - 1] + "…"
    return flattened


def predecessor_dag(
    space: LocalStateSpace,
    node: Optional[int] = None,
    describe_state=repr,
) -> str:
    """DOT rendering of the predecessor structure of ``LS`` (one or all nodes).

    Nodes of the graph are visited node states (seed states doubled-boxed,
    discarded states grayed); edges are predecessor links labelled with the
    event that produced them.  Self-referencing links — ignored by soundness
    verification — are drawn dashed.
    """
    node_ids = [node] if node is not None else list(space.node_ids)
    lines: List[str] = [
        "digraph predecessors {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    for node_id in node_ids:
        lines.append(f"  subgraph cluster_{node_id} {{")
        lines.append(f'    label="node {node_id}";')
        for record in space.store(node_id):
            name = f"n{node_id}_{record.index}"
            label = _escape(describe_state(record.state))
            attrs = [f'label="{record.index}: {label}"']
            if record.seed:
                attrs.append("peripheries=2")
            if record.discarded:
                attrs.append('style=filled, fillcolor="gray85"')
            lines.append(f"    {name} [{', '.join(attrs)}];")
        lines.append("  }")
    for node_id in node_ids:
        store = space.store(node_id)
        index_by_hash: Dict[int, int] = {
            record.hash: record.index for record in store
        }
        for record in store:
            for link in record.predecessors:
                if link.prev_hash is None:
                    continue
                prev_index = index_by_hash.get(link.prev_hash)
                if prev_index is None:
                    continue
                label = _escape(link.event.describe(), limit=40)
                style = (
                    ", style=dashed" if link.prev_hash == record.hash else ""
                )
                lines.append(
                    f'  n{node_id}_{prev_index} -> n{node_id}_{record.index} '
                    f'[label="{label}", fontsize=8{style}];'
                )
    lines.append("}")
    return "\n".join(lines)


def witness_sequence_diagram(bug: BugReport) -> str:
    """DOT rendering of a bug's witness trace as a message-flow graph.

    Each executed event becomes a numbered graph node placed in its
    process's column; message sends connect the sender's event to the
    delivery event.  The result reads like a sequence diagram of the fatal
    interleaving.
    """
    lines: List[str] = [
        "digraph witness {",
        "  rankdir=TB;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    nodes_seen = sorted(
        {event.node for event in bug.trace}
        | {node for node, _state in bug.initial_state.items()}
    )
    for node in nodes_seen:
        lines.append(f"  subgraph cluster_p{node} {{")
        lines.append(f'    label="process {node}";')
        previous = None
        for index, event in enumerate(bug.trace, 1):
            if event.node != node:
                continue
            name = f"e{index}"
            if isinstance(event, InternalEvent):
                label = f"{index}. {event.action.name}"
            elif isinstance(event, DeliveryEvent):
                label = f"{index}. recv {type(event.message.payload).__name__}"
            elif isinstance(event, DropEvent):
                label = f"{index}. drop {type(event.message.payload).__name__}"
            elif isinstance(event, DuplicateEvent):
                label = (
                    f"{index}. redeliver {type(event.message.payload).__name__}"
                )
            else:
                # Fault events (docs/FAULTS.md): crash/restart markers.
                label = f"{index}. {event.describe()}"
            lines.append(f'    {name} [label="{_escape(label)}"];')
            if previous is not None:
                lines.append(f"    {previous} -> {name} [style=dotted];")
            previous = name
        lines.append("  }")
    # message edges: a delivery is connected to the most recent earlier
    # event on the sender's column (the event that plausibly sent it)
    for index, event in enumerate(bug.trace, 1):
        if not isinstance(event, DeliveryEvent):
            continue
        sender = event.message.src
        for earlier in range(index - 1, 0, -1):
            candidate = bug.trace[earlier - 1]
            if candidate.node == sender:
                payload = type(event.message.payload).__name__
                lines.append(
                    f'  e{earlier} -> e{index} '
                    f'[label="{_escape(payload, 24)}", color=blue, fontsize=8];'
                )
                break
    lines.append("}")
    return "\n".join(lines)
