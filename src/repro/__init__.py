"""repro — Local Model Checking of networked systems without the network.

A complete reproduction of Guerraoui & Yabandeh, "Model Checking a Networked
System Without the Network" (NSDI 2011): the LMC algorithm (general and
invariant-optimised), the global model checking baseline it is measured
against, the protocols under test (Paxos, 1Paxos, the primer tree, and
friends), and the online (CrystalBall-style) checking loop that restarts the
checker from live snapshots.

Quickstart::

    from repro import LocalModelChecker, LMCConfig
    from repro.protocols.tree import TreeProtocol, ReceivedImpliesSent

    protocol = TreeProtocol()
    checker = LocalModelChecker(protocol, ReceivedImpliesSent())
    result = checker.run()
    assert result.completed and not result.found_bug
"""

from repro.core.checker import LocalModelChecker
from repro.core.parallel import ParallelLocalModelChecker
from repro.core.config import LMCConfig
from repro.explore.budget import SearchBudget
from repro.explore.global_checker import GlobalModelChecker
from repro.obs import (
    JsonlEmitter,
    MemoryEmitter,
    NullEmitter,
    TraceEmitter,
    TraceSummary,
)
from repro.replay import ReplayOutcome, replay_trace, validate_bug
from repro.reports import BugReport, CheckResult

__version__ = "1.1.0"

__all__ = [
    "BugReport",
    "CheckResult",
    "GlobalModelChecker",
    "JsonlEmitter",
    "LMCConfig",
    "LocalModelChecker",
    "MemoryEmitter",
    "NullEmitter",
    "ParallelLocalModelChecker",
    "ReplayOutcome",
    "SearchBudget",
    "TraceEmitter",
    "TraceSummary",
    "replay_trace",
    "validate_bug",
    "__version__",
]
