"""The protocol interface: node behaviour as pure handler functions.

A protocol supplies the paper's two handler relations as pure functions over
immutable node states:

* ``handle_message(state, message)`` — the message handler ``H_M``:
  ``((s1, m), (s2, c))`` becomes ``handle_message(s1, m) == (s2, c)``;
* ``handle_action(state, action)`` — the internal handler ``H_A`` for timers
  and application calls, with ``enabled_actions(state)`` enumerating which
  internal actions are enabled in a given node state (the paper: "the value
  of node state LS_ns determines which of the local events are enabled").

Determinism note (§4.1, footnote 3): each event must deterministically lead
to the same node state, because LMC re-executes event sequences during
soundness verification.  Handlers must therefore be pure; any nondeterminism
(e.g. a random backoff choice) must be folded into the event payload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Tuple

from repro.model.events import (
    CrashEvent,
    DeliveryEvent,
    DropEvent,
    DuplicateEvent,
    Event,
    InternalEvent,
    RestartEvent,
)
from repro.model.system_state import SystemState
from repro.model.types import Action, CrashedState, HandlerResult, Message, NodeId


class Protocol(ABC):
    """Behaviour of a distributed system: every node runs this state machine.

    Concrete protocols are *configured* instances (e.g. ``Paxos(num_nodes=3)``)
    whose methods are pure functions of their arguments.  The same instance is
    shared by live runs, the global checker and LMC.
    """

    #: Short machine-readable protocol name used in reports and benchmarks.
    name: str = "protocol"

    @abstractmethod
    def node_ids(self) -> Tuple[NodeId, ...]:
        """The finite set ``N`` of node identifiers, ascending."""

    @abstractmethod
    def initial_state(self, node: NodeId) -> Any:
        """The initial local state of ``node``."""

    @abstractmethod
    def handle_message(self, state: Any, message: Message) -> HandlerResult:
        """Execute the message handler ``H_M`` on ``state``.

        Must be pure and total: a message the node does not care about in
        this state returns ``HandlerResult(state)`` (a no-op).  May raise
        :class:`~repro.model.types.LocalAssertionError` for node-local
        assertion failures (§4.2 "Local assertions").
        """

    @abstractmethod
    def enabled_actions(self, state: Any) -> Tuple[Action, ...]:
        """Internal actions (timers, application calls) enabled in ``state``."""

    @abstractmethod
    def handle_action(self, state: Any, action: Action) -> HandlerResult:
        """Execute the internal handler ``H_A`` on ``state``.

        Same purity/totality contract as :meth:`handle_message`.
        """

    # -- provided conveniences -------------------------------------------------

    def initial_system_state(self) -> SystemState:
        """The system state in which every node is in its initial state."""
        return SystemState({node: self.initial_state(node) for node in self.node_ids()})

    def execute(self, state: Any, event: Event) -> HandlerResult:
        """Dispatch an event to the matching handler.

        Fault events (docs/FAULTS.md) are handled here rather than by the
        protocol: a crash projects ``state`` onto the protocol's durable
        fragment and wraps it in :class:`~repro.model.types.CrashedState`; a
        restart boots the node from that fragment.  Neither sends messages.

        Raises :class:`ValueError` when the event does not target the node
        whose state was supplied — that is always a checker bug, not a
        protocol bug.
        """
        if isinstance(event, DeliveryEvent):
            return self.handle_message(state, event.message)
        if isinstance(event, InternalEvent):
            return self.handle_action(state, event.action)
        if isinstance(event, CrashEvent):
            # Imported lazily: the durability dispatch helpers live in the
            # protocols layer, which imports this module at load time.
            from repro.protocols.common import durable_projection

            durable = durable_projection(self, event.node, state)
            return HandlerResult(CrashedState(node=event.node, durable=durable))
        if isinstance(event, RestartEvent):
            from repro.protocols.common import restart_state

            if not isinstance(state, CrashedState):
                raise ValueError(
                    f"restart of node {event.node} which is not crashed: {state!r}"
                )
            return HandlerResult(restart_state(self, event.node, state.durable))
        if isinstance(event, DropEvent):
            from repro.protocols.common import drop_result

            result = drop_result(self, state, event.message)
            # Drop-oblivious protocols treat the loss as a no-op; the LMC
            # scheduler never mints drops for them, but replay must still
            # dispatch the event.
            return HandlerResult(state) if result is None else result
        if isinstance(event, DuplicateEvent):
            return self.handle_message(state, event.message)
        raise ValueError(f"unknown event type: {event!r}")

    def num_nodes(self) -> int:
        """Number of nodes in this configuration."""
        return len(self.node_ids())


class ProtocolConfigError(ValueError):
    """A protocol was instantiated with an unusable configuration."""


def broadcast(src: NodeId, targets: Tuple[NodeId, ...], payload: Any) -> Tuple[Message, ...]:
    """Messages carrying ``payload`` from ``src`` to each target, in id order.

    Broadcast is the dominant send pattern in the chatty protocols the paper
    targets (Prepare/Accept/Learn in Paxos all broadcast); centralising it
    keeps emission order deterministic.
    """
    return tuple(Message(dest=dest, src=src, payload=payload) for dest in sorted(targets))
