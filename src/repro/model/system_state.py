"""System and global state containers.

The paper distinguishes (§3.1):

* the **system state** ``L`` — the local states of all nodes (a function from
  node ids to node states); invariants are specified on system states;
* the **global state** ``(L, I)`` — the system state plus the network state
  ``I``, the multiset of in-flight messages.

Global model checking explores global states; LMC materialises system states
only temporarily, for invariant checking.  Both containers are immutable and
content-hashable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

from repro.model.hashing import content_hash, content_size
from repro.model.multiset import FrozenMultiset
from repro.model.types import Message, NodeId


class SystemState:
    """The local states of all nodes: the paper's ``L ⊆ N × S``.

    Stored as a tuple of ``(node_id, state)`` pairs sorted by node id, so two
    system states over the same nodes are equal exactly when every node's
    local state is equal.
    """

    __slots__ = ("_entries", "_index", "_hash")

    def __init__(self, entries: Dict[NodeId, Any] | Tuple[Tuple[NodeId, Any], ...]):
        if isinstance(entries, dict):
            pairs = tuple(sorted(entries.items()))
        else:
            pairs = tuple(sorted(entries))
        node_ids = [node for node, _ in pairs]
        if len(set(node_ids)) != len(node_ids):
            raise ValueError(f"duplicate node ids in system state: {node_ids}")
        self._entries = pairs
        self._index = {node: state for node, state in pairs}
        self._hash: int | None = None

    # -- accessors ----------------------------------------------------------

    @property
    def node_ids(self) -> Tuple[NodeId, ...]:
        """All node ids, ascending."""
        return tuple(node for node, _ in self._entries)

    def get(self, node: NodeId) -> Any:
        """Local state of ``node``; raises :class:`KeyError` if unknown."""
        return self._index[node]

    def items(self) -> Tuple[Tuple[NodeId, Any], ...]:
        """``(node_id, state)`` pairs, ascending by node id."""
        return self._entries

    def states(self) -> Tuple[Any, ...]:
        """Node states in node-id order."""
        return tuple(state for _, state in self._entries)

    def __iter__(self) -> Iterator[Tuple[NodeId, Any]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- functional update ----------------------------------------------------

    def replace(self, node: NodeId, state: Any) -> "SystemState":
        """New system state with ``node``'s local state replaced."""
        if node not in self._index:
            raise KeyError(node)
        return SystemState(
            tuple((n, state if n == node else s) for n, s in self._entries)
        )

    # -- identity ---------------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, SystemState):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = content_hash(self._entries)
        return self._hash

    def content_hash(self) -> int:
        """Stable content hash (identical to ``hash`` but explicit)."""
        return hash(self)

    def retained_bytes(self) -> int:
        """Serialized size, used by deterministic memory accounting."""
        return content_size(self._entries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{node}: {state!r}" for node, state in self._entries)
        return f"SystemState({{{inner}}})"


class GlobalState:
    """A global state ``(L, I)``: system state plus in-flight messages."""

    __slots__ = ("system", "network", "_hash")

    def __init__(self, system: SystemState, network: FrozenMultiset[Message]):
        self.system = system
        self.network = network
        self._hash: int | None = None

    def deliver(self, message: Message, new_state: Any, sends: Tuple[Message, ...]) -> "GlobalState":
        """Successor global state after delivering ``message`` (handler ``H_M``).

        The delivered message is removed from the network and the handler's
        sends are inserted — the consuming semantics of Fig. 5.
        """
        return GlobalState(
            self.system.replace(message.dest, new_state),
            self.network.remove(message).add_all(sends),
        )

    def run_internal(self, node: NodeId, new_state: Any, sends: Tuple[Message, ...]) -> "GlobalState":
        """Successor global state after an internal action on ``node`` (``H_A``)."""
        return GlobalState(
            self.system.replace(node, new_state),
            self.network.add_all(sends),
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, GlobalState):
            return NotImplemented
        return self.system == other.system and self.network == other.network

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((hash(self.system), hash(self.network)))
        return self._hash

    def retained_bytes(self) -> int:
        """Serialized size of the full global state (system + network)."""
        size = self.system.retained_bytes()
        for message, count in self.network.items():
            size += content_size(message) * count
        return size

    def __repr__(self) -> str:
        return f"GlobalState(system={self.system!r}, network={self.network!r})"
