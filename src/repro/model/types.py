"""Core value types of the distributed-system model (Fig. 5 of the paper).

The paper models a distributed system as a set of nodes ``N``, node states
``S``, message contents ``M`` and internal actions ``A``.  An in-flight
message is a pair ``(destination, content)``; the content carries the sender
and the protocol payload.  Everything the model checker touches must be
immutable and content-hashable, so all types in this module are frozen.

Protocol authors define their payloads as frozen dataclasses (or any
immutable, hashable value) and wrap them in :class:`Message` /
:class:`Action`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: A node identifier.  The paper uses an abstract finite set ``N`` (think IP
#: addresses); small non-negative integers are sufficient and keep states
#: cheap to hash and order.
NodeId = int


@dataclass(frozen=True, order=True)
class Message:
    """An in-flight network message: the pair ``(N, M)`` of the paper.

    ``dest`` is the destination node.  ``src`` and ``payload`` together form
    the remaining message content ``M`` ("including sender node information
    and message body").

    Messages are pure values: sending the "same" message twice yields two
    equal :class:`Message` objects.  Networks that must distinguish duplicate
    sends (e.g. the consuming network of global model checking, which is a
    multiset) track multiplicity themselves.
    """

    dest: NodeId
    src: NodeId
    payload: Any

    def describe(self) -> str:
        """Human-readable one-line rendering used in logs and bug reports."""
        name = type(self.payload).__name__
        return f"{name}({self.src}->{self.dest}: {self.payload!r})"


@dataclass(frozen=True, order=True)
class Action:
    """An internal node action ``a ∈ A`` — a timer firing or application call.

    ``node`` is the node on which the action executes; ``name`` identifies the
    handler; ``payload`` carries optional immutable arguments (e.g. the value
    an application driver asks the node to propose).
    """

    node: NodeId
    name: str
    payload: Any = None

    def describe(self) -> str:
        """Human-readable one-line rendering used in logs and bug reports."""
        if self.payload is None:
            return f"{self.name}@{self.node}"
        return f"{self.name}@{self.node}({self.payload!r})"


#: The messages a handler emits: the set ``c`` in the handler signature
#: ``((s1, e), (s2, c))``.  Order is preserved for determinism but carries no
#: semantic meaning (the network decides delivery order).
SendSet = Tuple[Message, ...]


@dataclass(frozen=True)
class HandlerResult:
    """Outcome of running a message or action handler on a node state.

    ``state`` is the successor node state ``s2`` and ``sends`` the emitted
    message set ``c``.  A handler that ignores its input returns the input
    state unchanged with no sends; the checkers detect this (``state`` equal
    to the pre-state and ``sends`` empty) and avoid minting spurious
    transitions.
    """

    state: Any
    sends: SendSet = ()

    def is_noop(self, previous_state: Any) -> bool:
        """True when the handler neither changed state nor sent messages."""
        return not self.sends and self.state == previous_state


@dataclass(frozen=True)
class CrashedState:
    """The local state of a node that is down (between crash and restart).

    ``durable`` is the protocol's durable fragment of the pre-crash state
    (:func:`repro.protocols.common.durable_projection`; ``None`` for
    all-volatile protocols).  A crashed node executes no handlers and
    appears in no invariant-checked system state — its only enabled event
    is the :class:`~repro.model.events.RestartEvent` that boots it again.
    Content-hashable like every model value, so crashes from states with
    equal durable fragments dedupe into one ``LS_n`` entry.
    """

    node: NodeId
    durable: Any = None

    def describe(self) -> str:
        """Human-readable one-line rendering used in logs and bug reports."""
        return f"crashed(node={self.node}, durable={self.durable!r})"


class LocalAssertionError(AssertionError):
    """A node-local assertion failed while executing a handler (§4.2).

    In LMC a local assertion failure is ambiguous: either the node state the
    message was (conservatively) delivered to is invalid, or the protocol has
    a genuine bug.  Following the paper, the local checker treats it as
    evidence of an invalid node state and discards the resulting state; the
    global checker, whose states are all valid, reports it as a bug.
    """

    def __init__(self, message: str, node: NodeId | None = None):
        super().__init__(message)
        self.node = node


def local_assert(condition: bool, message: str, node: NodeId | None = None) -> None:
    """Raise :class:`LocalAssertionError` when ``condition`` is false.

    Protocol handlers call this instead of the bare ``assert`` statement so
    that the checkers can intercept the failure and apply the paper's
    discard-the-node-state policy.
    """
    if not condition:
        raise LocalAssertionError(message, node=node)
