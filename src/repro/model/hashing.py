"""Deterministic content hashing for model states, messages and events.

The paper's prototype stores *hashes of serialized states* to deduplicate
visited node states cheaply, keeps event hashes in predecessor pointers, and
reduces soundness replay to "integer comparison operations" over message
hashes (§4.2).  This module is our stand-in for MaceMC's serialization layer.

Python's built-in ``hash`` is salted per process for strings, so it cannot
serve as a *stable* content hash.  Instead we canonically encode values to
bytes and hash with BLAKE2b.  The encoding covers the vocabulary protocol
authors are allowed to use in states and payloads: primitives, tuples,
frozensets, mappings with orderable keys, and frozen dataclasses.
"""

from __future__ import annotations

import dataclasses
from hashlib import blake2b
from typing import Any, Dict, Iterable

#: Number of bytes of BLAKE2b digest retained.  64 bits keeps hash values in
#: cheap machine ints while making accidental collisions vanishingly unlikely
#: for the state-space sizes a model checker visits.
_DIGEST_BYTES = 8

# Type tags keep the encoding prefix-free across types, so e.g. the integer 1
# and the string "1" and the one-element tuple (1,) never collide.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"t"
_TAG_FROZENSET = b"S"
_TAG_MAPPING = b"m"
_TAG_DATACLASS = b"d"


class UnhashableModelValue(TypeError):
    """A value of an unsupported type appeared inside a model state.

    Model states must be built from immutable values; lists, dicts and sets
    are rejected on purpose (they are mutable, so states containing them are
    not safe to share between explored branches).
    """


def canonical_encode(value: Any, out: bytearray) -> None:
    """Append a canonical, prefix-free byte encoding of ``value`` to ``out``.

    The encoding is deterministic across processes and Python versions that
    share ``repr`` semantics for floats (we encode floats via ``repr`` to
    remain exact for round-trippable values).
    """
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += _TAG_INT + len(body).to_bytes(4, "big") + body
    elif isinstance(value, float):
        body = repr(value).encode("ascii")
        out += _TAG_FLOAT + len(body).to_bytes(4, "big") + body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += _TAG_STR + len(body).to_bytes(4, "big") + body
    elif isinstance(value, bytes):
        out += _TAG_BYTES + len(value).to_bytes(4, "big") + value
    elif isinstance(value, tuple):
        out += _TAG_TUPLE + len(value).to_bytes(4, "big")
        for item in value:
            canonical_encode(item, out)
    elif isinstance(value, frozenset):
        # Sets are unordered: encode elements individually and sort the
        # encodings so equal sets encode equally.
        encodings = []
        for item in value:
            piece = bytearray()
            canonical_encode(item, piece)
            encodings.append(bytes(piece))
        encodings.sort()
        out += _TAG_FROZENSET + len(encodings).to_bytes(4, "big")
        for piece in encodings:
            out += piece
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.fields(value)
        name = type(value).__qualname__.encode("utf-8")
        out += _TAG_DATACLASS + len(name).to_bytes(4, "big") + name
        out += len(fields).to_bytes(4, "big")
        for field in fields:
            canonical_encode(getattr(value, field.name), out)
    elif isinstance(value, dict):
        # Mappings are accepted read-only for convenience in *encoding* (for
        # example a frozen dataclass exposing a derived dict); model states
        # themselves should prefer tuples of pairs.
        try:
            items = sorted(value.items())
        except TypeError as exc:  # unorderable keys
            raise UnhashableModelValue(
                f"mapping with unorderable keys in model value: {value!r}"
            ) from exc
        out += _TAG_MAPPING + len(items).to_bytes(4, "big")
        for key, item in items:
            canonical_encode(key, out)
            canonical_encode(item, out)
    else:
        raise UnhashableModelValue(
            f"unsupported type {type(value).__name__!r} in model value: {value!r}"
        )


def canonical_bytes(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``."""
    out = bytearray()
    canonical_encode(value, out)
    return bytes(out)


def content_hash(value: Any) -> int:
    """Stable 64-bit content hash of a model value.

    Equal values always hash equally, across processes and runs; this is the
    identity used for visited-state dedup, predecessor pointers and the
    soundness replay's generated-message sets.
    """
    digest = blake2b(canonical_bytes(value), digest_size=_DIGEST_BYTES).digest()
    return int.from_bytes(digest, "big")


def content_size(value: Any) -> int:
    """Serialized size of ``value`` in bytes.

    Used by the deterministic memory accounting behind the Fig. 12
    reproduction: retained memory is the sum of serialized sizes of the
    states a checker keeps, which makes the reported series independent of
    allocator behaviour.
    """
    return len(canonical_bytes(value))


def hash_many(values: Iterable[Any]) -> Dict[int, Any]:
    """Hash each value, returning a ``hash -> value`` mapping.

    Convenience helper for tests and debugging tools that need to resolve
    hashes back to values.
    """
    return {content_hash(value): value for value in values}
