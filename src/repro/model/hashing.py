"""Deterministic content hashing for model states, messages and events.

The paper's prototype stores *hashes of serialized states* to deduplicate
visited node states cheaply, keeps event hashes in predecessor pointers, and
reduces soundness replay to "integer comparison operations" over message
hashes (§4.2).  This module is our stand-in for MaceMC's serialization layer.

Python's built-in ``hash`` is salted per process for strings, so it cannot
serve as a *stable* content hash.  Instead we canonically encode values to
bytes and hash with BLAKE2b.  The encoding covers the vocabulary protocol
authors are allowed to use in states and payloads: primitives, tuples,
frozensets, mappings with orderable keys, and frozen dataclasses.

Interning
---------

Canonical encoding sits inside the checker's innermost loops: every handler
result is hashed, every send is hashed into ``I+``, every event hash walks
the message it wraps.  Model values are immutable and heavily shared by
identity — protocol handlers build successor states with
``dataclasses.replace``, so an unchanged sub-state is the *same object* in
thousands of encoded values — which makes an identity-keyed cache of
canonical encodings both safe and very effective.  :class:`HashInterner`
caches, per composite object, the encoded bytes plus the derived digest and
size; :func:`canonical_encode` consults it recursively, so a cache hit on a
nested sub-state skips the entire sub-walk.

The cache is an LRU bounded by ``capacity`` entries and keyed by ``id``;
entries keep a strong reference to their value, so a cached id can never be
recycled while its entry is alive.  Values containing ``dict``s (accepted
read-only for encoding convenience) are never cached, because a mutation
would go undetected.  Interning changes *nothing* about hash values: the
cached bytes are exactly what the uncached walk would produce, a property
``tests/model/test_hash_interning.py`` checks against arbitrary values.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from hashlib import blake2b
from typing import Any, Dict, Iterable, Optional, Tuple

#: Number of bytes of BLAKE2b digest retained.  64 bits keeps hash values in
#: cheap machine ints while making accidental collisions vanishingly unlikely
#: for the state-space sizes a model checker visits.
_DIGEST_BYTES = 8

# Type tags keep the encoding prefix-free across types, so e.g. the integer 1
# and the string "1" and the one-element tuple (1,) never collide.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"t"
_TAG_FROZENSET = b"S"
_TAG_MAPPING = b"m"
_TAG_DATACLASS = b"d"


class UnhashableModelValue(TypeError):
    """A value of an unsupported type appeared inside a model state.

    Model states must be built from immutable values; lists, dicts and sets
    are rejected on purpose (they are mutable, so states containing them are
    not safe to share between explored branches).
    """


class HashInterner:
    """Identity-keyed LRU cache of canonical encodings.

    One entry per cached *object* (not per equal value): the key is
    ``id(value)`` and the entry pins the value alive, so identity is stable
    for exactly as long as the entry exists.  Stores the canonical bytes,
    the serialized size, and — once requested — the BLAKE2b digest, so
    ``content_hash`` + ``content_size`` on the same object cost one walk.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_table")

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # id(value) -> [value, bytes, hash-or-None]
        self._table: "OrderedDict[int, list]" = OrderedDict()

    def lookup(self, value: Any) -> Optional[list]:
        """The cache entry for ``value``, refreshed in the LRU, or None."""
        entry = self._table.get(id(value))
        if entry is None or entry[0] is not value:
            # ``entry[0] is not value`` can only happen if a caller broke
            # the immutability contract badly enough to free a cached
            # object; treat it as a miss rather than serve foreign bytes.
            return None
        self._table.move_to_end(id(value))
        return entry

    def store(self, value: Any, encoded: bytes) -> list:
        """Insert the encoding of ``value``, evicting LRU entries if full."""
        entry = [value, encoded, None]
        self._table[id(value)] = entry
        if len(self._table) > self.capacity:
            self._table.popitem(last=False)
            self.evictions += 1
        return entry

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> Dict[str, int]:
        """Cumulative hit/miss/eviction counters plus the current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._table),
            "capacity": self.capacity,
        }


#: The process-wide default interner used by the module-level helpers.
_DEFAULT_INTERNER: Optional[HashInterner] = HashInterner()


def configure_interning(
    enabled: bool = True, capacity: Optional[int] = None
) -> None:
    """Enable/disable the shared interner, optionally resizing it.

    Disabling drops the cache (and its pinned values); re-enabling starts
    cold.  Used by benchmarks and the cache-equivalence tests to compare
    the interned and uncached paths.
    """
    global _DEFAULT_INTERNER
    if not enabled:
        _DEFAULT_INTERNER = None
        return
    if _DEFAULT_INTERNER is None or (
        capacity is not None and _DEFAULT_INTERNER.capacity != capacity
    ):
        _DEFAULT_INTERNER = HashInterner(capacity or 1 << 16)


def interning_enabled() -> bool:
    """True when the shared interner is active."""
    return _DEFAULT_INTERNER is not None


def intern_stats() -> Dict[str, int]:
    """Counters of the shared interner (zeros when interning is off).

    These are the cache hit/miss figures ``tools/bench.py`` records and the
    checker emits as a ``hash_cache`` trace event (docs/OBSERVABILITY.md).
    """
    if _DEFAULT_INTERNER is None:
        return {"hits": 0, "misses": 0, "evictions": 0, "entries": 0, "capacity": 0}
    return _DEFAULT_INTERNER.stats()


#: Precomputed 4-byte big-endian lengths for the overwhelmingly common case.
_LEN4 = tuple(i.to_bytes(4, "big") for i in range(1024))


def _len4(n: int) -> bytes:
    return _LEN4[n] if n < 1024 else n.to_bytes(4, "big")


#: Value-keyed caches of full primitive encodings (tag + length + body).
#: Ints and strings recur constantly inside states (node ids, ballots,
#: indexes, value strings); both types are immutable and exactly typed here,
#: so value keying is safe.  Cleared wholesale when they grow past the cap.
#: Gated by :func:`configure_encoding_caches` so benchmarks can compare the
#: cached hot path against the original encode-everything-every-time walk.
_INT_ENCODINGS: Dict[int, bytes] = {}
_STR_ENCODINGS: Dict[str, bytes] = {}
_PRIMITIVE_CACHE_CAP = 1 << 15
_ENCODING_CACHES = True


def configure_encoding_caches(enabled: bool = True) -> None:
    """Toggle the value-keyed primitive/dataclass-header encoding caches.

    Disabling also clears them.  Used by ``tools/bench.py`` to measure the
    unoptimized baseline; the produced encodings are identical either way.
    """
    global _ENCODING_CACHES
    _ENCODING_CACHES = enabled
    if not enabled:
        _INT_ENCODINGS.clear()
        _STR_ENCODINGS.clear()
        _DATACLASS_INFO.clear()

#: Per-dataclass-class encoding header (tag + qualname + field count) and
#: field-name tuple.  A dataclass's fields are fixed at class creation, so
#: this is computed once per class instead of per instance.
_DATACLASS_INFO: Dict[type, Tuple[bytes, Tuple[str, ...]]] = {}


def _dataclass_info(cls: type) -> Tuple[bytes, Tuple[str, ...]]:
    info = _DATACLASS_INFO.get(cls)
    if info is None:
        fields = dataclasses.fields(cls)
        name = cls.__qualname__.encode("utf-8")
        header = _TAG_DATACLASS + _len4(len(name)) + name + _len4(len(fields))
        info = (header, tuple(field.name for field in fields))
        if _ENCODING_CACHES:
            _DATACLASS_INFO[cls] = info
    return info


def _encode(value: Any, out: bytearray, interner: Optional[HashInterner]) -> bool:
    """Append the canonical encoding of ``value``; returns cacheability.

    A subtree is cacheable unless it contains a ``dict`` (the one accepted
    type that is mutable); non-cacheable subtrees are encoded but never
    stored, and they poison their ancestors' cacheability.

    The branch order is frequency-tuned (this function dominates checker
    profiles): exact-type checks for the common primitives first, then the
    interned composites, with subclasses and rarer types handled by
    :func:`_encode_slow` — whose branch chain is the original, and hence
    the defining, encoding semantics.
    """
    cls = value.__class__
    if cls is int:
        if _ENCODING_CACHES:
            piece = _INT_ENCODINGS.get(value)
            if piece is None:
                body = str(value).encode("ascii")
                piece = _TAG_INT + _len4(len(body)) + body
                if len(_INT_ENCODINGS) >= _PRIMITIVE_CACHE_CAP:
                    _INT_ENCODINGS.clear()
                _INT_ENCODINGS[value] = piece
            out += piece
        else:
            body = str(value).encode("ascii")
            out += _TAG_INT + _len4(len(body)) + body
        return True
    if cls is str:
        if _ENCODING_CACHES:
            piece = _STR_ENCODINGS.get(value)
            if piece is None:
                body = value.encode("utf-8")
                piece = _TAG_STR + _len4(len(body)) + body
                if len(_STR_ENCODINGS) >= _PRIMITIVE_CACHE_CAP:
                    _STR_ENCODINGS.clear()
                _STR_ENCODINGS[value] = piece
            out += piece
        else:
            body = value.encode("utf-8")
            out += _TAG_STR + _len4(len(body)) + body
        return True
    if value is None:
        out += _TAG_NONE
        return True
    if cls is bool:
        out += _TAG_TRUE if value else _TAG_FALSE
        return True
    if cls is tuple:
        if interner is None:
            out += _TAG_TUPLE
            out += _len4(len(value))
            for item in value:
                _encode(item, out, None)
            return True
        key = id(value)
        entry = interner._table.get(key)
        if entry is not None and entry[0] is value:
            interner._table.move_to_end(key)
            interner.hits += 1
            out += entry[1]
            return True
        interner.misses += 1
        piece = bytearray(_TAG_TUPLE)
        piece += _len4(len(value))
        cacheable = True
        table = interner._table
        for item in value:
            # Inlined leaf dispatch: composites recurse through _encode
            # maybe a dozen times per fresh state, but leaves number in the
            # hundreds — the call overhead is the cost, not the encoding.
            icls = item.__class__
            if icls is int:
                if _ENCODING_CACHES:
                    enc = _INT_ENCODINGS.get(item)
                    if enc is not None:
                        piece += enc
                        continue
            elif icls is str:
                if _ENCODING_CACHES:
                    enc = _STR_ENCODINGS.get(item)
                    if enc is not None:
                        piece += enc
                        continue
            elif item is None:
                piece += _TAG_NONE
                continue
            else:
                child = table.get(id(item))
                if child is not None and child[0] is item:
                    interner.hits += 1
                    piece += child[1]
                    continue
            cacheable &= _encode(item, piece, interner)
        if cacheable:
            entry = [value, bytes(piece), None]
            table[id(value)] = entry
            if len(table) > interner.capacity:
                table.popitem(last=False)
                interner.evictions += 1
        out += piece
        return cacheable
    if cls is frozenset:
        if interner is not None:
            key = id(value)
            entry = interner._table.get(key)
            if entry is not None and entry[0] is value:
                interner._table.move_to_end(key)
                interner.hits += 1
                out += entry[1]
                return True
            interner.misses += 1
        # Sets are unordered: encode elements individually and sort the
        # encodings so equal sets encode equally.
        cacheable = True
        encodings = []
        for item in value:
            piece = bytearray()
            cacheable &= _encode(item, piece, interner)
            encodings.append(bytes(piece))
        encodings.sort()
        body = bytearray(_TAG_FROZENSET)
        body += _len4(len(encodings))
        for piece in encodings:
            body += piece
        if interner is not None and cacheable:
            interner.store(value, bytes(body))
        out += body
        return cacheable
    info = _DATACLASS_INFO.get(cls)
    if info is not None or (
        dataclasses.is_dataclass(value) and not isinstance(value, type)
    ):
        if interner is None:
            return _encode_dataclass(value, out, None)
        key = id(value)
        entry = interner._table.get(key)
        if entry is not None and entry[0] is value:
            interner._table.move_to_end(key)
            interner.hits += 1
            out += entry[1]
            return True
        interner.misses += 1
        if info is None:
            info = _dataclass_info(cls)
        header, field_names = info
        piece = bytearray(header)
        cacheable = True
        table = interner._table
        for name in field_names:
            item = getattr(value, name)
            # Same inlined leaf dispatch as the tuple branch above.
            icls = item.__class__
            if icls is int:
                if _ENCODING_CACHES:
                    enc = _INT_ENCODINGS.get(item)
                    if enc is not None:
                        piece += enc
                        continue
            elif icls is str:
                if _ENCODING_CACHES:
                    enc = _STR_ENCODINGS.get(item)
                    if enc is not None:
                        piece += enc
                        continue
            elif item is None:
                piece += _TAG_NONE
                continue
            else:
                child = table.get(id(item))
                if child is not None and child[0] is item:
                    interner.hits += 1
                    piece += child[1]
                    continue
            cacheable &= _encode(item, piece, interner)
        if cacheable:
            entry = [value, bytes(piece), None]
            table[id(value)] = entry
            if len(table) > interner.capacity:
                table.popitem(last=False)
                interner.evictions += 1
        out += piece
        return cacheable
    return _encode_slow(value, out, interner)


def _encode_dataclass(
    value: Any, out: bytearray, interner: Optional[HashInterner]
) -> bool:
    """The dataclass branch of :func:`_encode`, shared by both paths."""
    header, field_names = _dataclass_info(value.__class__)
    out += header
    cacheable = True
    for name in field_names:
        cacheable &= _encode(getattr(value, name), out, interner)
    return cacheable


def _encode_slow(
    value: Any, out: bytearray, interner: Optional[HashInterner]
) -> bool:
    """Rare types and subclasses: the original isinstance-ordered chain.

    Anything here encodes exactly as it always did — e.g. an ``int``
    subclass via the int branch, a namedtuple via the tuple branch — so the
    fast exact-type dispatch above never changes a hash value.
    """
    if isinstance(value, int):
        body = str(value).encode("ascii")
        out += _TAG_INT + _len4(len(body)) + body
    elif isinstance(value, float):
        body = repr(value).encode("ascii")
        out += _TAG_FLOAT + _len4(len(body)) + body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += _TAG_STR + _len4(len(body)) + body
    elif isinstance(value, bytes):
        out += _TAG_BYTES + _len4(len(value)) + value
    elif isinstance(value, tuple):
        out += _TAG_TUPLE + _len4(len(value))
        cacheable = True
        for item in value:
            cacheable &= _encode(item, out, interner)
        return cacheable
    elif isinstance(value, frozenset):
        cacheable = True
        encodings = []
        for item in value:
            piece = bytearray()
            cacheable &= _encode(item, piece, interner)
            encodings.append(bytes(piece))
        encodings.sort()
        out += _TAG_FROZENSET + _len4(len(encodings))
        for piece in encodings:
            out += piece
        return cacheable
    elif isinstance(value, dict):
        # Mappings are accepted read-only for convenience in *encoding* (for
        # example a frozen dataclass exposing a derived dict); model states
        # themselves should prefer tuples of pairs.  Mutable, so neither a
        # dict nor any value containing one is ever interned.
        try:
            items = sorted(value.items())
        except TypeError as exc:  # unorderable keys
            raise UnhashableModelValue(
                f"mapping with unorderable keys in model value: {value!r}"
            ) from exc
        out += _TAG_MAPPING + _len4(len(items))
        for key, item in items:
            _encode(key, out, interner)
            _encode(item, out, interner)
        return False
    else:
        raise UnhashableModelValue(
            f"unsupported type {type(value).__name__!r} in model value: {value!r}"
        )
    return True


def canonical_encode(value: Any, out: bytearray) -> None:
    """Append a canonical, prefix-free byte encoding of ``value`` to ``out``.

    The encoding is deterministic across processes and Python versions that
    share ``repr`` semantics for floats (we encode floats via ``repr`` to
    remain exact for round-trippable values).  Consults the shared interner
    when one is configured; the produced bytes are identical either way.
    """
    _encode(value, out, _DEFAULT_INTERNER)


def canonical_bytes(value: Any, intern: bool = True) -> bytes:
    """Return the canonical byte encoding of ``value``.

    ``intern=False`` forces the uncached walk — the reference the property
    tests compare the interned path against.
    """
    interner = _DEFAULT_INTERNER if intern else None
    if interner is not None:
        entry = interner.lookup(value)
        if entry is not None:
            interner.hits += 1
            return entry[1]
    out = bytearray()
    _encode(value, out, interner)
    return bytes(out)


def _interned_entry(value: Any) -> Optional[list]:
    """The interner entry for ``value``, encoding it on a miss (if possible)."""
    interner = _DEFAULT_INTERNER
    if interner is None:
        return None
    table = interner._table
    entry = table.get(id(value))
    if entry is not None and entry[0] is value:
        interner.hits += 1
        return entry
    out = bytearray()
    cacheable = _encode(value, out, interner)
    # _encode already stored cacheable composites; fetch the entry it made
    # (primitives and dict-containing values land here with entry None).
    if cacheable:
        entry = table.get(id(value))
        if entry is not None and entry[0] is value:
            return entry
    return [value, bytes(out), None]


def content_hash(value: Any, intern: bool = True) -> int:
    """Stable 64-bit content hash of a model value.

    Equal values always hash equally, across processes and runs; this is the
    identity used for visited-state dedup, predecessor pointers and the
    soundness replay's generated-message sets.  The hit path is inlined —
    one dict probe, no LRU touch — because this function sits inside the
    checker's innermost loops; recency bookkeeping is worth paying only on
    the (much rarer) encode path.
    """
    interner = _DEFAULT_INTERNER
    if intern and interner is not None:
        entry = interner._table.get(id(value))
        if entry is not None and entry[0] is value:
            interner.hits += 1
        else:
            entry = _interned_entry(value)
        digest = entry[2]
        if digest is None:
            digest = int.from_bytes(
                blake2b(entry[1], digest_size=_DIGEST_BYTES).digest(), "big"
            )
            entry[2] = digest
        return digest
    digest = blake2b(
        canonical_bytes(value, intern=False), digest_size=_DIGEST_BYTES
    ).digest()
    return int.from_bytes(digest, "big")


def content_size(value: Any, intern: bool = True) -> int:
    """Serialized size of ``value`` in bytes.

    Used by the deterministic memory accounting behind the Fig. 12
    reproduction: retained memory is the sum of serialized sizes of the
    states a checker keeps, which makes the reported series independent of
    allocator behaviour.
    """
    return len(canonical_bytes(value, intern=intern))


def content_hash_and_size(value: Any, intern: bool = True) -> Tuple[int, int]:
    """Hash and serialized size from a single canonical encoding pass.

    Callers that need both — the monotonic network stores a message by hash
    and charges its serialized size — previously encoded twice; this walks
    (or interns) once and derives both.
    """
    interner = _DEFAULT_INTERNER
    if intern and interner is not None:
        entry = interner._table.get(id(value))
        if entry is not None and entry[0] is value:
            interner.hits += 1
        else:
            entry = _interned_entry(value)
        digest = entry[2]
        if digest is None:
            digest = int.from_bytes(
                blake2b(entry[1], digest_size=_DIGEST_BYTES).digest(), "big"
            )
            entry[2] = digest
        return digest, len(entry[1])
    encoded = canonical_bytes(value, intern=False)
    digest = blake2b(encoded, digest_size=_DIGEST_BYTES).digest()
    return int.from_bytes(digest, "big"), len(encoded)


def substitute_node_ids(value: Any, mapping: Dict[int, int]) -> Any:
    """``value`` with every node id in ``mapping`` replaced, structurally.

    A generic renaming walker over the hashable model vocabulary (primitives,
    tuples, frozensets, mappings, frozen dataclasses), used as the default
    ``rename_state`` of the symmetry contract (docs/REDUCTION.md).  Unchanged
    subtrees are returned *by identity*, so renamed values keep sharing —
    and hence interner entries — with their originals wherever possible.

    Caveat: node ids are plain ``int``s, so this walker rewrites **every**
    integer equal to a mapped node id, wherever it occurs.  That is only
    correct when no other integer field of the state (a ballot number, a
    slot index, a counter) can collide with a mapped id.  Protocols whose
    states embed such ambiguous ints must implement ``rename_state``
    themselves instead of relying on this default.
    """
    if not mapping:
        return value
    cls = value.__class__
    if cls is bool or value is None or cls is str or cls is float or cls is bytes:
        return value
    if cls is int or (isinstance(value, int) and not isinstance(value, bool)):
        return mapping.get(value, value)
    if isinstance(value, tuple):
        items = tuple(substitute_node_ids(item, mapping) for item in value)
        if all(new is old for new, old in zip(items, value)):
            return value
        if hasattr(value, "_fields"):  # namedtuple
            return cls(*items)
        return items
    if isinstance(value, frozenset):
        items = frozenset(substitute_node_ids(item, mapping) for item in value)
        return value if items == value else items
    if isinstance(value, dict):
        return {
            substitute_node_ids(key, mapping): substitute_node_ids(item, mapping)
            for key, item in value.items()
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changes = {}
        for field in dataclasses.fields(value):
            old = getattr(value, field.name)
            new = substitute_node_ids(old, mapping)
            if new is not old:
                changes[field.name] = new
        return dataclasses.replace(value, **changes) if changes else value
    return value


def hash_many(values: Iterable[Any]) -> Dict[int, Any]:
    """Hash each value, returning a ``hash -> value`` mapping.

    Convenience helper for tests and debugging tools that need to resolve
    hashes back to values.
    """
    return {content_hash(value): value for value in values}
