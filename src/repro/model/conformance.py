"""Protocol conformance checking: does an implementation keep the contract?

Both checkers rely on properties the :class:`~repro.model.protocol.Protocol`
interface documents but Python cannot enforce:

* **purity/determinism** — running a handler twice on the same inputs yields
  equal results (footnote 3 of §4.1: every event "must deterministically
  lead to the same node state", or soundness replay breaks);
* **hashability** — every reachable node state and emitted message is
  content-hashable (the closed immutable vocabulary);
* **totality** — handlers accept any message without crashing (foreign
  payloads must be no-ops, not exceptions);
* **stable action enumeration** — ``enabled_actions`` is a pure function of
  the state.

:func:`check_protocol` drives a bounded exploration of the protocol and
verifies each property on every state and event it encounters, returning a
report of violations.  Run it against a new protocol before handing it to a
checker — it turns silent state-space corruption into a named error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Set, Tuple

from repro.model.events import DeliveryEvent, InternalEvent
from repro.model.hashing import UnhashableModelValue, content_hash
from repro.model.protocol import Protocol
from repro.model.types import LocalAssertionError, Message


@dataclass
class ConformanceReport:
    """Outcome of a conformance run."""

    states_checked: int = 0
    events_checked: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no contract violation was observed."""
        return not self.problems

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"states checked : {self.states_checked}",
            f"events checked : {self.events_checked}",
            f"problems       : {len(self.problems)}",
        ]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def check_protocol(
    protocol: Protocol,
    max_states: int = 2000,
    max_problems: int = 20,
) -> ConformanceReport:
    """Explore ``protocol`` breadth-first, validating the contract throughout.

    The exploration delivers every generated message to every visited state
    of its destination (LMC-style conservative delivery), which exercises
    handlers on inputs they may not expect — exactly the situations in which
    contract violations hide.
    """
    report = ConformanceReport()
    per_node_states: dict = {node: [] for node in protocol.node_ids()}
    seen_hashes: dict = {node: set() for node in protocol.node_ids()}
    messages: List[Message] = []
    message_hashes: Set[int] = set()

    def note(problem: str) -> None:
        if len(report.problems) < max_problems:
            report.problems.append(problem)

    def admit_state(node: int, state: Any) -> None:
        try:
            digest = content_hash(state)
        except UnhashableModelValue as exc:
            note(f"unhashable state on node {node}: {exc}")
            return
        if digest in seen_hashes[node]:
            return
        seen_hashes[node].add(digest)
        per_node_states[node].append(state)
        report.states_checked += 1

    def admit_sends(sends: Tuple[Message, ...], context: str) -> None:
        for message in sends:
            if not isinstance(message, Message):
                note(f"{context}: send is not a Message: {message!r}")
                continue
            if message.dest not in per_node_states:
                note(f"{context}: send to unknown node {message.dest}")
                continue
            try:
                digest = content_hash(message)
            except UnhashableModelValue as exc:
                note(f"{context}: unhashable message: {exc}")
                continue
            if digest not in message_hashes:
                message_hashes.add(digest)
                messages.append(message)

    def run_twice(handler, state, argument, context: str):
        try:
            first = handler(state, argument)
        except LocalAssertionError:
            return None  # a declared local assertion is contract-compliant
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            note(f"{context}: handler raised {type(exc).__name__}: {exc}")
            return None
        try:
            second = handler(state, argument)
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            note(
                f"{context}: handler is non-deterministic "
                f"(raised on rerun: {type(exc).__name__}: {exc})"
            )
            return None
        if first.state != second.state or first.sends != second.sends:
            note(f"{context}: handler is non-deterministic (differing results)")
            return None
        return first

    for node in protocol.node_ids():
        admit_state(node, protocol.initial_state(node))

    # foreign-payload totality probe
    for node in protocol.node_ids():
        state = per_node_states[node][0]
        probe = Message(dest=node, src=node, payload="__conformance_probe__")
        result = run_twice(
            protocol.handle_message, state, probe, f"node {node} foreign payload"
        )
        if result is not None and not result.is_noop(state):
            note(f"node {node}: foreign payload was not a no-op")

    total = lambda: sum(len(states) for states in per_node_states.values())  # noqa: E731
    progress = True
    while progress and total() < max_states:
        progress = False
        # internal actions on every state
        for node in protocol.node_ids():
            for state in list(per_node_states[node]):
                try:
                    once = protocol.enabled_actions(state)
                    twice = protocol.enabled_actions(state)
                except Exception as exc:  # noqa: BLE001
                    note(f"node {node}: enabled_actions raised {exc}")
                    continue
                if once != twice:
                    note(f"node {node}: enabled_actions is unstable")
                for action in once:
                    if action.node != node:
                        note(
                            f"node {node}: enabled action targets node "
                            f"{action.node}"
                        )
                    result = run_twice(
                        protocol.handle_action,
                        state,
                        action,
                        f"action {action.name} on node {node}",
                    )
                    report.events_checked += 1
                    if result is None:
                        continue
                    admit_sends(result.sends, f"action {action.name}")
                    before = len(seen_hashes[node])
                    admit_state(node, result.state)
                    if len(seen_hashes[node]) > before:
                        progress = True
        # every message on every state of its destination
        for message in list(messages):
            for state in list(per_node_states[message.dest]):
                result = run_twice(
                    protocol.handle_message,
                    state,
                    message,
                    f"message {type(message.payload).__name__} "
                    f"on node {message.dest}",
                )
                report.events_checked += 1
                if result is None:
                    continue
                admit_sends(result.sends, "message handler")
                before = len(seen_hashes[message.dest])
                admit_state(message.dest, result.state)
                if len(seen_hashes[message.dest]) > before:
                    progress = True
    return report
