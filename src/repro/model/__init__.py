"""The distributed-system model: states, messages, events, protocols.

This package is the library's foundation — the executable rendering of the
paper's Fig. 5 system model.  Everything here is immutable, hashable and
deterministic; both checkers (:mod:`repro.explore` and :mod:`repro.core`) and
the live-run simulator (:mod:`repro.online`) are built on it.
"""

from repro.model.conformance import ConformanceReport, check_protocol
from repro.model.events import (
    CrashEvent,
    DeliveryEvent,
    Event,
    InternalEvent,
    RestartEvent,
    event_hash,
    is_fault_event,
    message_hashes,
)
from repro.model.hashing import (
    UnhashableModelValue,
    canonical_bytes,
    content_hash,
    content_size,
)
from repro.model.multiset import FrozenMultiset
from repro.model.protocol import Protocol, ProtocolConfigError, broadcast
from repro.model.system_state import GlobalState, SystemState
from repro.model.types import (
    Action,
    CrashedState,
    HandlerResult,
    LocalAssertionError,
    Message,
    NodeId,
    SendSet,
    local_assert,
)

__all__ = [
    "Action",
    "ConformanceReport",
    "CrashEvent",
    "CrashedState",
    "DeliveryEvent",
    "Event",
    "FrozenMultiset",
    "GlobalState",
    "HandlerResult",
    "InternalEvent",
    "LocalAssertionError",
    "Message",
    "NodeId",
    "Protocol",
    "ProtocolConfigError",
    "RestartEvent",
    "SendSet",
    "SystemState",
    "UnhashableModelValue",
    "broadcast",
    "check_protocol",
    "canonical_bytes",
    "content_hash",
    "content_size",
    "event_hash",
    "is_fault_event",
    "local_assert",
    "message_hashes",
]
