"""An immutable multiset with deterministic iteration order.

The network component ``I`` of a global state is a *multiset* of in-flight
messages: the same message value can be in flight more than once (e.g. a
retransmission racing its original).  Global model checking needs to add and
remove single occurrences while keeping states hashable and equality-
comparable; exploration additionally needs a *deterministic* iteration order
so that runs are reproducible.  :class:`FrozenMultiset` provides all three.
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Iterable, Iterator, Tuple, TypeVar

from repro.model.hashing import canonical_bytes, content_hash

T = TypeVar("T")


class FrozenMultiset(Generic[T]):
    """Immutable multiset over content-hashable elements.

    Elements are stored with multiplicities; iteration yields elements in a
    canonical order (sorted by their canonical byte encoding) with duplicates
    repeated.  All mutating operations return a new multiset.
    """

    __slots__ = ("_counts", "_hash", "_size")

    def __init__(self, items: Iterable[T] = ()):  # noqa: D107 - documented above
        counts: Dict[T, int] = {}
        size = 0
        for item in items:
            counts[item] = counts.get(item, 0) + 1
            size += 1
        self._counts = counts
        self._size = size
        self._hash: int | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def _from_counts(cls, counts: Dict[T, int], size: int) -> "FrozenMultiset[T]":
        new = cls.__new__(cls)
        new._counts = counts
        new._size = size
        new._hash = None
        return new

    def add(self, item: T, count: int = 1) -> "FrozenMultiset[T]":
        """Return a new multiset with ``count`` extra occurrences of ``item``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return self
        counts = dict(self._counts)
        counts[item] = counts.get(item, 0) + count
        return self._from_counts(counts, self._size + count)

    def add_all(self, items: Iterable[T]) -> "FrozenMultiset[T]":
        """Return a new multiset with one extra occurrence of each item."""
        counts = dict(self._counts)
        added = 0
        for item in items:
            counts[item] = counts.get(item, 0) + 1
            added += 1
        if not added:
            return self
        return self._from_counts(counts, self._size + added)

    def remove(self, item: T) -> "FrozenMultiset[T]":
        """Return a new multiset with one occurrence of ``item`` removed.

        Raises :class:`KeyError` if ``item`` is not present — removing a
        message that is not in flight is always a checker bug.
        """
        current = self._counts.get(item, 0)
        if current == 0:
            raise KeyError(item)
        counts = dict(self._counts)
        if current == 1:
            del counts[item]
        else:
            counts[item] = current - 1
        return self._from_counts(counts, self._size - 1)

    # -- queries -----------------------------------------------------------

    def count(self, item: T) -> int:
        """Multiplicity of ``item`` (0 when absent)."""
        return self._counts.get(item, 0)

    def distinct(self) -> Tuple[T, ...]:
        """Distinct elements in canonical order."""
        return tuple(sorted(self._counts, key=canonical_bytes))

    def items(self) -> Tuple[Tuple[T, int], ...]:
        """``(element, multiplicity)`` pairs in canonical order."""
        return tuple((item, self._counts[item]) for item in self.distinct())

    def __contains__(self, item: T) -> bool:
        return item in self._counts

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[T]:
        for item in self.distinct():
            for _ in range(self._counts[item]):
                yield item

    def __bool__(self) -> bool:
        return self._size > 0

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FrozenMultiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = content_hash(frozenset(self._counts.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{item!r}" + (f"×{count}" if count > 1 else "")
            for item, count in self.items()
        )
        return f"FrozenMultiset({{{inner}}})"
