"""Events: the things a model checker schedules.

A transition of the Fig. 5 system executes exactly one *event* on one node —
either the delivery of an in-flight message (running the message handler
``H_M``) or an internal action such as a timer or application call (running
``H_A``).  Both checkers in this library — the global B-DFS baseline and the
local LMC — schedule values of the :class:`Event` union defined here, and
LMC's predecessor pointers store event *hashes* alongside the hashes of the
messages each event generated (§4.2).

Beyond the paper's event vocabulary, the LMC fault scheduler
(docs/FAULTS.md) schedules four *fault* events: :class:`CrashEvent` stops a
node (volatile state is lost, the durable fragment survives) and
:class:`RestartEvent` boots it again from its durable fragment.  Crash and
restart events touch no network — crucially, under the monotonic ``I+`` a
crashed node's in-flight messages stay available, which is exactly what
makes crash faults cheap to add to LMC — and behave as local events during
soundness replay (always enabled, consuming and generating nothing).
:class:`DropEvent` marks one stored copy of a message as never-deliverable
to its destination (the destination may run an optional ``handle_drop``
timeout hook); it *consumes* the message hash during soundness replay, so a
dropped copy can never also be delivered along the same witness.
:class:`DuplicateEvent` is the redelivery of a fault-minted duplicate copy
admitted through the network's ``duplicate_limit`` path; the copy has no
generating handler of its own, so the event replays as a local step
(consuming nothing) whose sends are the handler's sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.model.hashing import content_hash
from repro.model.types import Action, Message, NodeId


@dataclass(frozen=True, order=True)
class DeliveryEvent:
    """Delivery of ``message`` to its destination node (a network event)."""

    message: Message

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the message destination)."""
        return self.message.dest

    @property
    def is_network(self) -> bool:
        """True: delivery events consume a network message."""
        return True

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"deliver {self.message.describe()}"


@dataclass(frozen=True, order=True)
class InternalEvent:
    """Execution of internal action ``action`` on its node (a local event)."""

    action: Action

    @property
    def node(self) -> NodeId:
        """The node on which the event executes."""
        return self.action.node

    @property
    def is_network(self) -> bool:
        """False: internal events do not consume a network message."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"run {self.action.describe()}"


@dataclass(frozen=True, order=True)
class CrashEvent:
    """Crash of a node: its volatile state is lost (a fault event).

    The successor node state is a :class:`~repro.model.types.CrashedState`
    carrying only the protocol's durable fragment
    (:func:`repro.protocols.common.durable_projection`).  Messages the node
    already sent are unaffected — the monotonic network never forgets.
    """

    crashed_node: NodeId

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the crashing node)."""
        return self.crashed_node

    @property
    def is_network(self) -> bool:
        """False: fault events do not consume a network message."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"crash node {self.crashed_node}"


@dataclass(frozen=True, order=True)
class RestartEvent:
    """Restart of a crashed node from its durable fragment (a fault event).

    The successor node state is
    :func:`repro.protocols.common.restart_state` applied to the durable
    fragment the matching :class:`CrashEvent` preserved — a fresh boot with
    only the protocol's declared durable fields recovered.
    """

    restarted_node: NodeId

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the restarting node)."""
        return self.restarted_node

    @property
    def is_network(self) -> bool:
        """False: fault events do not consume a network message."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"restart node {self.restarted_node}"


@dataclass(frozen=True, order=True)
class DropEvent:
    """Loss of ``message`` before delivery to its destination (a fault event).

    Executes on the destination node: the protocol's optional
    ``handle_drop`` hook (docs/FAULTS.md) models the timeout/negative-
    acknowledgement path a real implementation takes when an expected
    message never arrives.  During soundness replay the event *consumes*
    the message hash — the message must have been generated before it can
    be lost, and consuming the per-destination copy excludes
    drop-then-deliver of the same copy along one witness.
    """

    message: Message

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the message destination)."""
        return self.message.dest

    @property
    def is_network(self) -> bool:
        """True: a drop consumes a network message (without delivering it)."""
        return True

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"drop {self.message.describe()}"


@dataclass(frozen=True, order=True)
class DuplicateEvent:
    """Redelivery of a fault-minted duplicate of ``message`` (a fault event).

    The duplicate copy was admitted through the monotonic network's
    ``duplicate_limit`` path and runs the ordinary message handler a second
    time.  The copy has no generating handler of its own, so during
    soundness replay the event behaves as a local step: it consumes nothing
    and generates the handler's sends.
    """

    message: Message

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the message destination)."""
        return self.message.dest

    @property
    def is_network(self) -> bool:
        """False: the duplicate copy is fault-minted, not a generated send."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"redeliver {self.message.describe()}"


Event = Union[
    DeliveryEvent, InternalEvent, CrashEvent, RestartEvent, DropEvent, DuplicateEvent
]

#: The fault-event types the LMC fault scheduler mints (docs/FAULTS.md).
FAULT_EVENT_TYPES = (CrashEvent, RestartEvent, DropEvent, DuplicateEvent)


def is_fault_event(event: Event) -> bool:
    """True for the crash/restart/drop/duplicate events of the fault scheduler."""
    return isinstance(event, FAULT_EVENT_TYPES)


def event_hash(event: Event) -> int:
    """Stable content hash of an event.

    LMC stores these in predecessor pointers instead of the events themselves
    ("Instead of the actual event, its hash is added into the predecessor
    pointers", §4.2).  This module hashes the full event value; the hash of a
    delivery event therefore coincides for duplicate sends of an equal
    message, exactly as in the paper's prototype.  Event values are shared
    by identity along exploration paths, so the interning cache in
    :mod:`repro.model.hashing` answers repeat hashes without re-encoding.
    """
    return content_hash(event)


def message_hashes(messages: Tuple[Message, ...]) -> Tuple[int, ...]:
    """Hashes of a handler's generated messages, in emission order.

    These are the values stored next to each predecessor pointer so the
    soundness replay can maintain its generated-message set ``net`` with
    integer operations only.  Sits inside the checker's innermost
    ``_integrate`` loop: the common no-sends case returns without building a
    generator, and repeated sends of interned messages hit the shared
    encoding cache.
    """
    if not messages:
        return ()
    return tuple(content_hash(message) for message in messages)
