"""Events: the things a model checker schedules.

A transition of the Fig. 5 system executes exactly one *event* on one node —
either the delivery of an in-flight message (running the message handler
``H_M``) or an internal action such as a timer or application call (running
``H_A``).  Both checkers in this library — the global B-DFS baseline and the
local LMC — schedule values of the :class:`Event` union defined here, and
LMC's predecessor pointers store event *hashes* alongside the hashes of the
messages each event generated (§4.2).

Beyond the paper's event vocabulary, the LMC fault scheduler
(docs/FAULTS.md) schedules two *fault* events: :class:`CrashEvent` stops a
node (volatile state is lost, the durable fragment survives) and
:class:`RestartEvent` boots it again from its durable fragment.  Fault
events touch no network — crucially, under the monotonic ``I+`` a crashed
node's in-flight messages stay available, which is exactly what makes crash
faults cheap to add to LMC — and behave as local events during soundness
replay (always enabled, consuming and generating nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.model.hashing import content_hash
from repro.model.types import Action, Message, NodeId


@dataclass(frozen=True, order=True)
class DeliveryEvent:
    """Delivery of ``message`` to its destination node (a network event)."""

    message: Message

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the message destination)."""
        return self.message.dest

    @property
    def is_network(self) -> bool:
        """True: delivery events consume a network message."""
        return True

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"deliver {self.message.describe()}"


@dataclass(frozen=True, order=True)
class InternalEvent:
    """Execution of internal action ``action`` on its node (a local event)."""

    action: Action

    @property
    def node(self) -> NodeId:
        """The node on which the event executes."""
        return self.action.node

    @property
    def is_network(self) -> bool:
        """False: internal events do not consume a network message."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"run {self.action.describe()}"


@dataclass(frozen=True, order=True)
class CrashEvent:
    """Crash of a node: its volatile state is lost (a fault event).

    The successor node state is a :class:`~repro.model.types.CrashedState`
    carrying only the protocol's durable fragment
    (:func:`repro.protocols.common.durable_projection`).  Messages the node
    already sent are unaffected — the monotonic network never forgets.
    """

    crashed_node: NodeId

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the crashing node)."""
        return self.crashed_node

    @property
    def is_network(self) -> bool:
        """False: fault events do not consume a network message."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"crash node {self.crashed_node}"


@dataclass(frozen=True, order=True)
class RestartEvent:
    """Restart of a crashed node from its durable fragment (a fault event).

    The successor node state is
    :func:`repro.protocols.common.restart_state` applied to the durable
    fragment the matching :class:`CrashEvent` preserved — a fresh boot with
    only the protocol's declared durable fields recovered.
    """

    restarted_node: NodeId

    @property
    def node(self) -> NodeId:
        """The node on which the event executes (the restarting node)."""
        return self.restarted_node

    @property
    def is_network(self) -> bool:
        """False: fault events do not consume a network message."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and counterexamples."""
        return f"restart node {self.restarted_node}"


Event = Union[DeliveryEvent, InternalEvent, CrashEvent, RestartEvent]

#: The fault-event types the LMC fault scheduler mints (docs/FAULTS.md).
FAULT_EVENT_TYPES = (CrashEvent, RestartEvent)


def is_fault_event(event: Event) -> bool:
    """True for the crash/restart events of the fault scheduler."""
    return isinstance(event, FAULT_EVENT_TYPES)


def event_hash(event: Event) -> int:
    """Stable content hash of an event.

    LMC stores these in predecessor pointers instead of the events themselves
    ("Instead of the actual event, its hash is added into the predecessor
    pointers", §4.2).  This module hashes the full event value; the hash of a
    delivery event therefore coincides for duplicate sends of an equal
    message, exactly as in the paper's prototype.  Event values are shared
    by identity along exploration paths, so the interning cache in
    :mod:`repro.model.hashing` answers repeat hashes without re-encoding.
    """
    return content_hash(event)


def message_hashes(messages: Tuple[Message, ...]) -> Tuple[int, ...]:
    """Hashes of a handler's generated messages, in emission order.

    These are the values stored next to each predecessor pointer so the
    soundness replay can maintain its generated-message set ``net`` with
    integer operations only.  Sits inside the checker's innermost
    ``_integrate`` loop: the common no-sends case returns without building a
    generator, and repeated sends of interned messages hit the shared
    encoding cache.
    """
    if not messages:
        return ()
    return tuple(content_hash(message) for message in messages)
