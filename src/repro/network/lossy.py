"""Best-effort lossy network for live runs (the UDP of §5.5).

The paper's online experiments run the system under test over UDP and drop
"30% of non-loopback messages ... randomly to allow rare states to be also
created".  :class:`LossyNetwork` reproduces that environment inside the
discrete-event live-run simulator: every send either enters the in-flight
queue (with a randomised delivery delay) or is dropped; loopback messages
(``src == dest``) are never dropped, matching the paper's setup and the fact
that loopback delivery does not cross a real wire.

All randomness flows through the single :class:`random.Random` instance the
caller supplies, so live runs are reproducible from a seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import List, Optional, Tuple

from repro.model.types import Message


class LossyNetwork:
    """A lossy, reordering network with randomised per-message latency."""

    def __init__(
        self,
        rng: random.Random,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        min_latency: float = 0.01,
        max_latency: float = 0.1,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be within [0, 1]")
        if min_latency < 0 or max_latency < min_latency:
            raise ValueError("latencies must satisfy 0 <= min <= max")
        self._rng = rng
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.min_latency = min_latency
        self.max_latency = max_latency
        self._queue: List[Tuple[float, int, Message]] = []
        self._tiebreak = itertools.count()
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.delivered = 0

    def send(self, message: Message, now: float) -> Optional[float]:
        """Send ``message`` at simulated time ``now``.

        Returns the scheduled delivery time of the first copy, or ``None``
        when the message was dropped.  Loopback messages are never dropped
        or duplicated.  A non-loopback message that survives the drop roll
        may additionally be duplicated: a second copy enters the queue with
        its own independent latency, so the copies can arrive in either
        order.
        """
        self.sent += 1
        is_loopback = message.src == message.dest
        if not is_loopback and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return None
        latency = self._rng.uniform(self.min_latency, self.max_latency)
        deliver_at = now + latency
        heapq.heappush(self._queue, (deliver_at, next(self._tiebreak), message))
        if not is_loopback and self._rng.random() < self.duplicate_probability:
            self.duplicated += 1
            copy_at = now + self._rng.uniform(self.min_latency, self.max_latency)
            heapq.heappush(self._queue, (copy_at, next(self._tiebreak), message))
        return deliver_at

    def next_delivery_time(self) -> Optional[float]:
        """Simulated time of the earliest pending delivery, if any."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def pop_due(self, now: float) -> Optional[Message]:
        """Pop the earliest message whose delivery time has arrived."""
        if self._queue and self._queue[0][0] <= now:
            _, _, message = heapq.heappop(self._queue)
            self.delivered += 1
            return message
        return None

    def pending(self) -> int:
        """Number of in-flight (scheduled, undelivered) messages."""
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"LossyNetwork(sent={self.sent}, dropped={self.dropped}, "
            f"duplicated={self.duplicated}, delivered={self.delivered}, "
            f"pending={self.pending()})"
        )
