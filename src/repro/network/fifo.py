"""Per-connection FIFO delivery — the simulated-TCP discussion of §4.3.

The paper notes that protocols running over TCP are usually model checked
against a *simulated* TCP rather than the real stack, and that a checker can
"benefit from the fact that reordered messages in a connection will
eventually be rejected by TCP and could, hence, be ignored".

:class:`FifoNetwork` offers the live-run side of that: a reliable network
that delivers each ``(src, dest)`` channel in order.  :func:`fifo_admissible`
offers the checker side: given the per-channel sequence numbers a FIFO
transport would stamp, it decides whether delivering a message now would be
an out-of-order delivery the transport would reject — letting a checker skip
the corresponding handler execution.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.model.types import Message, NodeId


class FifoNetwork:
    """A reliable network delivering each directed channel in FIFO order."""

    def __init__(self) -> None:
        self._channels: Dict[Tuple[NodeId, NodeId], Deque[Message]] = {}
        self.sent = 0
        self.delivered = 0

    def send(self, message: Message) -> None:
        """Enqueue ``message`` on its ``(src, dest)`` channel."""
        key = (message.src, message.dest)
        self._channels.setdefault(key, deque()).append(message)
        self.sent += 1

    def deliverable_channels(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """Channels with at least one queued message, in sorted order."""
        return tuple(sorted(key for key, queue in self._channels.items() if queue))

    def peek(self, src: NodeId, dest: NodeId) -> Optional[Message]:
        """Head-of-line message of a channel without removing it."""
        queue = self._channels.get((src, dest))
        if not queue:
            return None
        return queue[0]

    def deliver(self, src: NodeId, dest: NodeId) -> Message:
        """Pop and return the head-of-line message of a channel."""
        queue = self._channels.get((src, dest))
        if not queue:
            raise KeyError(f"channel {(src, dest)} has no queued message")
        self.delivered += 1
        return queue.popleft()

    def pending(self) -> int:
        """Total queued messages across channels."""
        return sum(len(queue) for queue in self._channels.values())

    def __repr__(self) -> str:
        return f"FifoNetwork(sent={self.sent}, delivered={self.delivered}, pending={self.pending()})"


def fifo_admissible(
    delivered_seq: Dict[Tuple[NodeId, NodeId], int],
    message_seq: int,
    src: NodeId,
    dest: NodeId,
) -> bool:
    """Would a FIFO transport accept this delivery now?

    ``delivered_seq`` maps each channel to the number of messages already
    delivered on it; ``message_seq`` is the 0-based sequence number the
    transport stamped on the candidate message.  A FIFO transport accepts the
    message exactly when it is the next expected one; a checker exploring
    TCP-backed protocols can skip deliveries for which this returns False.
    """
    return delivered_seq.get((src, dest), 0) == message_seq
