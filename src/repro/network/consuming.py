"""The consuming network of global model checking (Fig. 5 semantics).

In the classic global approach the network state ``I`` is part of every
global state: sending inserts a message into the multiset, delivery removes
it.  :class:`ConsumingNetwork` is a thin immutable wrapper over
:class:`~repro.model.multiset.FrozenMultiset` that names those semantics and
enumerates enabled delivery events deterministically.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.model.events import DeliveryEvent
from repro.model.multiset import FrozenMultiset
from repro.model.types import Message, NodeId


class ConsumingNetwork:
    """Immutable in-flight message multiset with consume-on-delivery semantics."""

    __slots__ = ("_messages",)

    def __init__(self, messages: FrozenMultiset[Message] | Iterable[Message] = ()):
        if isinstance(messages, FrozenMultiset):
            self._messages = messages
        else:
            self._messages = FrozenMultiset(messages)

    @property
    def messages(self) -> FrozenMultiset[Message]:
        """The underlying multiset ``I``."""
        return self._messages

    def send(self, sends: Tuple[Message, ...]) -> "ConsumingNetwork":
        """Network after inserting a handler's emitted messages."""
        if not sends:
            return self
        return ConsumingNetwork(self._messages.add_all(sends))

    def deliver(self, message: Message) -> "ConsumingNetwork":
        """Network after removing one occurrence of ``message``.

        Raises :class:`KeyError` when the message is not in flight.
        """
        return ConsumingNetwork(self._messages.remove(message))

    def enabled_deliveries(self) -> Tuple[DeliveryEvent, ...]:
        """One delivery event per *distinct* in-flight message, canonical order.

        Delivering two identical in-flight copies reaches the same successor
        state, so enumerating distinct messages loses no behaviour while
        trimming the branching factor.
        """
        return tuple(DeliveryEvent(message) for message in self._messages.distinct())

    def in_flight_to(self, node: NodeId) -> Tuple[Message, ...]:
        """Distinct in-flight messages destined to ``node``, canonical order."""
        return tuple(m for m in self._messages.distinct() if m.dest == node)

    def __len__(self) -> int:
        return len(self._messages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConsumingNetwork):
            return NotImplemented
        return self._messages == other._messages

    def __hash__(self) -> int:
        return hash(self._messages)

    def __repr__(self) -> str:
        return f"ConsumingNetwork({self._messages!r})"
