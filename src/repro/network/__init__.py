"""Network substrates: consuming (global MC), monotonic I+ (LMC), live-run.

Four network models back the library:

* :class:`~repro.network.consuming.ConsumingNetwork` — the multiset ``I`` of
  classic global model checking; delivery removes the message (Fig. 5).
* :class:`~repro.network.monotonic.MonotonicNetwork` — the shared, grow-only
  ``I+`` of local model checking; delivery never removes (Fig. 8).
* :class:`~repro.network.lossy.LossyNetwork` — the seeded lossy UDP used by
  the live-run simulator in the online experiments (§5.5, §5.6).
* :class:`~repro.network.fifo.FifoNetwork` — per-channel FIFO (simulated
  TCP, §4.3), plus the checker-side admissibility predicate.
"""

from repro.network.consuming import ConsumingNetwork
from repro.network.fifo import FifoNetwork, fifo_admissible
from repro.network.lossy import LossyNetwork
from repro.network.monotonic import MonotonicNetwork, StoredMessage

__all__ = [
    "ConsumingNetwork",
    "FifoNetwork",
    "LossyNetwork",
    "MonotonicNetwork",
    "StoredMessage",
    "fifo_admissible",
]
