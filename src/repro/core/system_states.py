"""Temporary system-state creation: the Cartesian step of LMC (§4.1-§4.2).

System states are never stored; they are materialised *temporarily*, purely
to evaluate invariants, and always anchored at a newly added node state:
"For each new node state (n,s), the system states are created by iterating
over the states of all the nodes except node n" (§4.2) — combinations made
purely of older states were already checked in earlier rounds.

Two enumerators:

* :func:`enumerate_general` — LMC-GEN: the full product over other nodes'
  visited states.
* :func:`enumerate_optimized` — LMC-OPT: invariant-specific creation.  The
  invariant's local projection maps each node state to its relevant summary
  (Paxos: the chosen value, ``None`` when undecided); only combinations whose
  projections can *conflict* are generated.  The enumeration prunes branches
  that can no longer reach a conflict, so when no node has e.g. chosen any
  value, the product is never walked at all — this is how "LMC-OPT drops the
  number of created system states to zero" in the bug-free run of Fig. 11.

For invariants that override :meth:`projections_conflict` with a custom
notion of conflict the pruning logic (which is specific to the default
"two distinct non-None projections" conflict) is not applicable; the
optimized enumerator then degrades gracefully to generate-and-filter, which
is still complete.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.records import LocalStateSpace, NodeStateRecord
from repro.invariants.base import DecomposableInvariant
from repro.model.system_state import SystemState
from repro.model.types import NodeId

#: A candidate combination: one visited record per node.
Combination = Dict[NodeId, NodeStateRecord]


def combination_to_system_state(combo: Combination) -> SystemState:
    """Materialise the temporary system state for invariant checking."""
    return SystemState({node: record.state for node, record in combo.items()})


def _active_records(space: LocalStateSpace, node: NodeId) -> List[NodeStateRecord]:
    """Visited records of ``node`` eligible to join a system state.

    Delegates to the store's incrementally cached list: anchored enumeration
    runs once per new node state, so rebuilding this O(states) list per call
    used to be quadratic over a run.  Excludes records discarded by a local
    assert and crashed marker records (docs/FAULTS.md) — a down node is
    never part of an invariant-checked system state, while its post-restart
    state re-enters here as an ordinary fresh ``LS_n`` record.
    """
    return space.store(node).active_records()


class ProjectionIndex:
    """Per-node index of records with a non-``None`` invariant projection.

    The pairwise LMC-OPT scan only ever pairs the anchor with records whose
    projection is non-``None``; maintaining those records (with their
    projections) incrementally — one :meth:`note` per newly discovered state
    — replaces the per-anchor rescan of every visited state.  Entries are
    kept in discovery order and discarded records are skipped at read time,
    so the enumeration order is exactly that of the uncached scan.
    """

    __slots__ = ("_by_node",)

    def __init__(self, node_ids: Sequence[NodeId]):
        self._by_node: Dict[NodeId, List[Tuple[NodeStateRecord, object]]] = {
            node: [] for node in node_ids
        }

    def note(self, node: NodeId, record: NodeStateRecord, projection: object) -> None:
        """Register a newly discovered record's projection (``None`` ignored)."""
        if projection is not None:
            self._by_node[node].append((record, projection))

    def candidates(self, node: NodeId) -> List[Tuple[NodeStateRecord, object]]:
        """(record, projection) pairs of ``node`` in discovery order."""
        return self._by_node[node]


def enumerate_general(
    space: LocalStateSpace, anchor_node: NodeId, anchor: NodeStateRecord
) -> Iterator[Combination]:
    """LMC-GEN enumeration: full product over other nodes, anchor fixed."""
    other_nodes = [node for node in space.node_ids if node != anchor_node]
    per_node: List[List[NodeStateRecord]] = []
    for node in other_nodes:
        records = _active_records(space, node)
        if not records:
            return
        per_node.append(records)

    combo: Combination = {anchor_node: anchor}

    def recurse(i: int) -> Iterator[Combination]:
        if i == len(other_nodes):
            yield dict(combo)
            return
        node = other_nodes[i]
        for record in per_node[i]:
            combo[node] = record
            yield from recurse(i + 1)
        combo.pop(node, None)

    yield from recurse(0)


#: Signature of a (possibly cached) projection lookup.
ProjectionFn = "Callable[[NodeId, NodeStateRecord], Optional[object]]"


def enumerate_optimized(
    space: LocalStateSpace,
    anchor_node: NodeId,
    anchor: NodeStateRecord,
    invariant: DecomposableInvariant,
    completion_cap: Optional[int] = None,
    projection_of=None,
    index: Optional[ProjectionIndex] = None,
) -> Iterator[Combination]:
    """LMC-OPT enumeration: only combinations whose projections conflict.

    For ``pairwise`` invariants (the default, and the paper's own reading of
    the optimisation) this scans for *pairs* of node states whose
    projections conflict — one side being the newly added anchor — and
    completes each pair over the remaining nodes, up to ``completion_cap``
    completions per pair.  When no node projects anything conflicting, no
    combination is ever built: the zero-system-states result of Fig. 11.

    For non-pairwise invariants it falls back to the full anchored product,
    pruned for the default conflict notion and generate-and-filtered for
    custom ones.  Complete with respect to LMC-GEN (up to the completion
    cap) for invariants honouring the decomposition contract.
    """
    if projection_of is None:
        projection_of = lambda node, record: invariant.local_projection(  # noqa: E731
            node, record.state
        )
    if invariant.pairwise:
        yield from _enumerate_pairwise(
            space, anchor_node, anchor, invariant, completion_cap, projection_of, index
        )
        return
    if _uses_default_conflict(invariant):
        yield from _enumerate_conflicting(space, anchor_node, anchor, invariant)
        return
    # Custom conflict notion without pairwise structure: generate-and-filter.
    for combo in enumerate_general(space, anchor_node, anchor):
        projections = _projections_of(combo, invariant)
        if invariant.projections_conflict(projections):
            yield combo


def _enumerate_pairwise(
    space: LocalStateSpace,
    anchor_node: NodeId,
    anchor: NodeStateRecord,
    invariant: DecomposableInvariant,
    completion_cap: Optional[int],
    projection_of,
    index: Optional[ProjectionIndex] = None,
) -> Iterator[Combination]:
    """Conflicting (anchor, other) pairs, each completed over remaining nodes.

    Pairs *not* involving the anchor were already examined when their later
    member was the anchor of an earlier round, so anchored pairs suffice.
    Completions are enumerated in discovery order and capped per pair.

    With a :class:`ProjectionIndex` the partner scan walks only the records
    whose projection is non-``None`` (skipping discarded ones at read time);
    without one it scans every active record — same pairs, same order.
    """
    anchor_projection = projection_of(anchor_node, anchor)
    if anchor_projection is None:
        return
    # The default conflict notion over two projections reduces to `!=`
    # (two distinct dict values iff the set of values has two elements);
    # specialising skips a dict + set build per candidate pair in the
    # hottest enumeration loop.  Overridden notions keep the full call.
    default_conflict = _uses_default_conflict(invariant)
    other_nodes = [node for node in space.node_ids if node != anchor_node]
    for partner_node in other_nodes:
        if index is not None:
            candidates = (
                (partner, projection)
                for partner, projection in index.candidates(partner_node)
                if not partner.discarded
            )
        else:
            candidates = (
                (partner, projection_of(partner_node, partner))
                for partner in _active_records(space, partner_node)
            )
        for partner, partner_projection in candidates:
            if partner_projection is None:
                continue
            if default_conflict:
                # identity-or-equality, exactly like set membership in the
                # default projections_conflict
                if (
                    partner_projection is anchor_projection
                    or partner_projection == anchor_projection
                ):
                    continue
            elif not invariant.projections_conflict(
                {anchor_node: anchor_projection, partner_node: partner_projection}
            ):
                continue
            yield from _completions(
                space,
                {anchor_node: anchor, partner_node: partner},
                completion_cap,
            )


def _completions(
    space: LocalStateSpace,
    fixed: Combination,
    cap: Optional[int],
) -> Iterator[Combination]:
    """Complete ``fixed`` over the remaining nodes, capped at ``cap`` combos."""
    remaining = [node for node in space.node_ids if node not in fixed]
    per_node: List[List[NodeStateRecord]] = []
    for node in remaining:
        records = _active_records(space, node)
        if not records:
            return
        per_node.append(records)
    produced = 0
    combo: Combination = dict(fixed)

    def recurse(i: int) -> Iterator[Combination]:
        nonlocal produced
        if cap is not None and produced >= cap:
            return
        if i == len(remaining):
            produced += 1
            yield dict(combo)
            return
        node = remaining[i]
        for record in per_node[i]:
            combo[node] = record
            yield from recurse(i + 1)
            if cap is not None and produced >= cap:
                break
        combo.pop(node, None)

    yield from recurse(0)


def _uses_default_conflict(invariant: DecomposableInvariant) -> bool:
    return (
        type(invariant).projections_conflict
        is DecomposableInvariant.projections_conflict
    )


def _projections_of(
    combo: Combination, invariant: DecomposableInvariant
) -> Dict[NodeId, object]:
    projections: Dict[NodeId, object] = {}
    for node, record in combo.items():
        value = invariant.local_projection(node, record.state)
        if value is not None:
            projections[node] = value
    return projections


def _enumerate_conflicting(
    space: LocalStateSpace,
    anchor_node: NodeId,
    anchor: NodeStateRecord,
    invariant: DecomposableInvariant,
) -> Iterator[Combination]:
    """Pruned product for the default conflict: ≥ 2 distinct projections."""
    other_nodes = [node for node in space.node_ids if node != anchor_node]
    candidates: List[List[Tuple[NodeStateRecord, Optional[object]]]] = []
    available: List[frozenset] = []
    for node in other_nodes:
        records = _active_records(space, node)
        if not records:
            return
        projected = [
            (record, invariant.local_projection(node, record.state))
            for record in records
        ]
        candidates.append(projected)
        available.append(
            frozenset(value for _, value in projected if value is not None)
        )

    anchor_projection = invariant.local_projection(anchor_node, anchor.state)
    combo: Combination = {anchor_node: anchor}
    initial_values: Tuple[object, ...] = (
        (anchor_projection,) if anchor_projection is not None else ()
    )

    def conflict_reachable(distinct: frozenset, i: int) -> bool:
        """Can positions i.. still complete ``distinct`` to ≥ 2 values?"""
        if len(distinct) >= 2:
            return True
        remaining = available[i:]
        if distinct:
            wanted = next(iter(distinct))
            return any(values - {wanted} for values in remaining)
        # No value picked yet: need two different values from two different
        # remaining nodes (each node contributes at most one value).
        non_empty = [values for values in remaining if values]
        if len(non_empty) < 2:
            return False
        union = frozenset().union(*non_empty)
        if len(union) < 2:
            return False
        # Fails only if every non-empty node offers the identical singleton.
        return not all(values == non_empty[0] and len(values) == 1 for values in non_empty)

    def recurse(i: int, distinct: frozenset) -> Iterator[Combination]:
        if not conflict_reachable(distinct, i):
            return
        if i == len(other_nodes):
            if len(distinct) >= 2:
                yield dict(combo)
            return
        node = other_nodes[i]
        for record, projection in candidates[i]:
            combo[node] = record
            next_distinct = (
                distinct if projection is None else distinct | {projection}
            )
            yield from recurse(i + 1, next_distinct)
        combo.pop(node, None)

    yield from recurse(0, frozenset(initial_values))
