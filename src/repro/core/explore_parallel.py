"""Parallel frontier exploration: shard the LMC round loop across the pool.

The paper's monotonic-network framing makes per-node expansion independent:
given a snapshot of ``I+``, executing a pending delivery, internal action or
fault step on one node state touches nothing another node's execution reads
— messages only accumulate and the ``LS_n`` sets only grow.  This module
exploits that independence **speculatively**:

1. At the top of each round, the coordinator snapshots the round's frontier
   — every ``(record, stored message)`` delivery pair the per-message
   cursors will sweep, every record the local-event cursor will offer its
   internal actions, and (with faults on) every crash/restart candidate —
   and shards it across the persistent worker pool
   (:func:`repro.core.pool.shared_executor`, shared with soundness
   verification).
2. Workers run the expensive node-local half of the execute loop — handler
   execution plus content hashing of successor states and sends (the
   dominant cost of the explore phase) — against a per-run **replica** of
   the protocol and message store, kept current by monotone ``I+`` deltas
   (:meth:`~repro.network.monotonic.MonotonicNetwork.messages_since`).
3. The coordinator then replays the *exact serial sweep*, consuming a
   worker's precomputed result wherever the table has one and executing
   inline on a miss (intra-round cascades: messages and records minted
   mid-round are invisible to the round-start snapshot).

Because the merge **is** the serial order, every counter, verdict, witness
trace and dedup decision is byte-identical to the serial checker by
construction — speculation only moves pure-function work (handlers are
functions of immutable values; content hashing is deterministic across
processes) onto other cores.  Worker results that the replay re-discovers
through a different path are simply dropped; cross-shard rediscoveries the
merge folds into predecessor pointers are surfaced as
``explore_merge_conflicts_suppressed``.

Failure containment: a :class:`BrokenProcessPool` rebuilds the pool and
retries the round once; a second failure disables speculation for the rest
of the pass and the checker continues serially with identical results.  A
worker that has not seen earlier deltas (fresh pool, or a pool peer that
was idle in prior rounds) answers with a sync-miss carrying its high-water
mark; the coordinator re-dispatches that shard with the full message log.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.pool import shared_executor, shutdown_worker_pool
from repro.model.events import (
    CrashEvent,
    DeliveryEvent,
    InternalEvent,
    RestartEvent,
    event_hash,
)
from repro.model.hashing import content_hash_and_size
from repro.model.types import (
    Action,
    CrashedState,
    HandlerResult,
    LocalAssertionError,
)
from repro.protocols.common import durable_projection, restart_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (checker imports us)
    from repro.core.checker import _ExplorationPass
    from repro.core.records import NodeStateRecord
    from repro.network.monotonic import StoredMessage

#: Speculative outcome tags for executions that produce no successor state:
#: the handler raised a local assertion, or was a no-op.
ASSERT = "a"
NOOP = "n"


class SpecExec:
    """A precomputed handler execution: successor, sends, and their hashes.

    Everything ``_integrate`` would otherwise compute on the hot path — the
    successor's content hash and canonical size, the event hash, and each
    send's ``(hash, size)`` — shipped back from the worker so the
    coordinator's replay only does the bookkeeping.
    """

    __slots__ = ("result", "new_hash", "new_size", "ehash", "generated", "send_info")

    def __init__(
        self,
        result: HandlerResult,
        new_hash: int,
        new_size: int,
        ehash: int,
        generated: Tuple[int, ...],
        send_info: Tuple[Tuple[int, int], ...],
    ):
        self.result = result
        self.new_hash = new_hash
        self.new_size = new_size
        self.ehash = ehash
        #: Send hashes in emission order (the link's ``generated_hashes``).
        self.generated = generated
        #: ``(hash, size)`` per send, for no-re-encode network admission.
        self.send_info = send_info


# -- worker side ---------------------------------------------------------------


class _Replica:
    """One run's worker-local view: the protocol and the message store."""

    __slots__ = ("protocol", "messages", "high")

    def __init__(self, protocol: Any):
        self.protocol = protocol
        #: seq -> message, grown monotonically by shipped deltas.
        self.messages: Dict[int, Any] = {}
        #: Messages below this seq are all present (the synced prefix).
        self.high = 0


#: Per-run replicas, keyed by run token; a small LRU — workers persist
#: across checker runs, so stale runs' replicas must not accumulate.
_REPLICAS: "OrderedDict[str, _Replica]" = OrderedDict()
_REPLICA_CAP = 4

_TOKENS = itertools.count()


def _replica_for(token: str, protocol_blob: bytes) -> _Replica:
    replica = _REPLICAS.get(token)
    if replica is None:
        replica = _Replica(pickle.loads(protocol_blob))
        _REPLICAS[token] = replica
        while len(_REPLICAS) > _REPLICA_CAP:
            _REPLICAS.popitem(last=False)
    else:
        _REPLICAS.move_to_end(token)
    return replica


def explore_shard_task(
    token: str,
    protocol_blob: bytes,
    base_seq: int,
    high_seq: int,
    delta_blob: bytes,
    states: List[Any],
    items: List[Tuple],
) -> Tuple:
    """Worker entry point: precompute one frontier shard's executions.

    ``items`` reference ``states`` (a per-shard dedup table of node states)
    by index and messages by their ``I+`` sequence number; the delta in
    ``delta_blob`` covers ``[base_seq, high_seq)``.  Returns
    ``("sync", high)`` when this worker's replica has not seen ``base_seq``
    yet (the coordinator re-dispatches with the full log), else
    ``("ok", outcomes, state_table, message_table, wall_s, pid)`` with one
    outcome per item — ``("a",)``, ``("n",)``, an executed
    ``("x", state_idx, hash, size, event_hash, sends)`` or, for internal
    items, ``("i", actions, per_action_outcomes)``.
    """
    started = time.perf_counter()
    replica = _replica_for(token, protocol_blob)
    if replica.high < base_seq:
        return ("sync", replica.high)
    for seq, message in pickle.loads(delta_blob):
        replica.messages[seq] = message
    if high_seq > replica.high:
        replica.high = high_seq
    protocol = replica.protocol

    out_states: List[Any] = []
    state_pos: Dict[int, int] = {}
    out_msgs: List[Any] = []
    msg_pos: Dict[int, int] = {}

    def encode_exec(result: HandlerResult, ehash: int) -> Tuple:
        new_hash, new_size = content_hash_and_size(result.state)
        pos = state_pos.get(new_hash)
        if pos is None:
            pos = len(out_states)
            state_pos[new_hash] = pos
            out_states.append(result.state)
        sends = []
        for message in result.sends:
            msg_hash, msg_size = content_hash_and_size(message)
            mpos = msg_pos.get(msg_hash)
            if mpos is None:
                mpos = len(out_msgs)
                msg_pos[msg_hash] = mpos
                out_msgs.append(message)
            sends.append((mpos, msg_hash, msg_size))
        return ("x", pos, new_hash, new_size, ehash, tuple(sends))

    outcomes: List[Optional[Tuple]] = []
    for item in items:
        kind = item[0]
        state = states[item[1]]
        if kind == "d":
            message = replica.messages.get(item[2])
            if message is None:
                # Only reachable through a protocol bug in the sync
                # handshake; a None outcome is just a table miss upstream.
                outcomes.append(None)
                continue
            try:
                result = protocol.handle_message(state, message)
            except LocalAssertionError:
                outcomes.append((ASSERT,))
                continue
            if result.is_noop(state):
                outcomes.append((NOOP,))
                continue
            outcomes.append(encode_exec(result, event_hash(DeliveryEvent(message))))
        elif kind == "i":
            actions: Tuple[Action, ...] = tuple(protocol.enabled_actions(state))
            inner: List[Tuple] = []
            for action in actions:
                try:
                    result = protocol.handle_action(state, action)
                except LocalAssertionError:
                    inner.append((ASSERT,))
                    continue
                if result.is_noop(state):
                    inner.append((NOOP,))
                    continue
                inner.append(encode_exec(result, event_hash(InternalEvent(action))))
            outcomes.append(("i", actions, tuple(inner)))
        elif kind == "c":
            node = item[2]
            durable = durable_projection(protocol, node, state)
            result = HandlerResult(CrashedState(node=node, durable=durable))
            outcomes.append(encode_exec(result, event_hash(CrashEvent(node))))
        else:  # "r"
            node = item[2]
            result = HandlerResult(restart_state(protocol, node, state.durable))
            outcomes.append(encode_exec(result, event_hash(RestartEvent(node))))
    return (
        "ok",
        outcomes,
        out_states,
        out_msgs,
        time.perf_counter() - started,
        os.getpid(),
    )


# -- coordinator side ----------------------------------------------------------


def _decode_exec(enc: Tuple, states: List[Any], msgs: List[Any]) -> SpecExec:
    sends_enc = enc[5]
    return SpecExec(
        result=HandlerResult(
            states[enc[1]], tuple(msgs[pos] for pos, _h, _s in sends_enc)
        ),
        new_hash=enc[2],
        new_size=enc[3],
        ehash=enc[4],
        generated=tuple(h for _pos, h, _s in sends_enc),
        send_info=tuple((h, s) for _pos, h, s in sends_enc),
    )


def _decode(enc: Tuple, states: List[Any], msgs: List[Any]):
    tag = enc[0]
    if tag == ASSERT or tag == NOOP:
        return tag
    if tag == "x":
        return _decode_exec(enc, states, msgs)
    # "i": per-action outcomes, each assert/noop/executed.
    return (
        "i",
        enc[1],
        tuple(
            o[0] if o[0] in (ASSERT, NOOP) else _decode_exec(o, states, msgs)
            for o in enc[2]
        ),
    )


class RoundSpeculator:
    """Per-pass coordinator: snapshot, dispatch, and serve the round table.

    Owned by one :class:`~repro.core.checker._ExplorationPass`; the pass
    calls :meth:`begin_round` at the top of every round and then consults
    :meth:`delivery` / :meth:`internal_actions` / :meth:`crash` /
    :meth:`restart` from inside the (otherwise unchanged) serial sweep.  A
    ``None`` answer means "compute inline, exactly as before".
    """

    def __init__(self, pass_: "_ExplorationPass", workers: int):
        self._pass = pass_
        self.workers = workers
        #: Cleared after an unrecoverable pool failure: the rest of the pass
        #: runs serially (results unchanged — only speed).
        self.enabled = True
        self._table: Optional[Dict[Tuple, Any]] = None
        self._proto_blob: Optional[bytes] = None
        #: High-water ``I+`` seq already shipped to the pool.
        self._shipped = 0
        self._round_no = 0
        self._token = f"{os.getpid()}:{next(_TOKENS)}"

    @classmethod
    def for_pass(cls, pass_: "_ExplorationPass") -> Optional["RoundSpeculator"]:
        """A speculator when the config enables one, else ``None``."""
        workers = pass_.config.explore_workers
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 0:
            return None
        return cls(pass_, workers)

    # -- round lifecycle ---------------------------------------------------

    def begin_round(self) -> None:
        """Snapshot this round's frontier and precompute it across the pool.

        Small rounds (below ``explore_round_threshold`` items) skip the pool
        entirely; dispatch failures fall back to serial execution — in every
        case the subsequent sweep produces byte-identical results.
        """
        p = self._pass
        self._table = None
        if not self.enabled:
            return
        if self._proto_blob is None:
            try:
                self._proto_blob = pickle.dumps(p.protocol)
            except (pickle.PicklingError, TypeError, AttributeError):
                self.enabled = False
                return
        items = self._snapshot()
        if len(items) < p.config.explore_round_threshold:
            return
        shard_size = max(p.config.explore_shard_min, -(-len(items) // self.workers))
        shards = [
            items[start : start + shard_size]
            for start in range(0, len(items), shard_size)
        ]
        encoded = [self._encode_shard(shard) for shard in shards]
        base = self._shipped
        high = p.network.high_water
        delta_blob = pickle.dumps(
            tuple((s.seq, s.message) for s in p.network.messages_since(base))
        )
        started = time.perf_counter()
        results: Optional[List[Optional[Tuple]]] = None
        misses = 0
        for attempt in (0, 1):
            try:
                results, misses = self._dispatch(encoded, base, high, delta_blob)
                break
            except BrokenProcessPool:
                shutdown_worker_pool(broken=True)
                if attempt:
                    self.enabled = False
                    return
            except pickle.PicklingError:
                # Unshippable model values (exotic protocol state): stay
                # serial for the rest of the pass.
                self.enabled = False
                return
        assert results is not None
        self._shipped = high
        self._round_no += 1
        table: Dict[Tuple, Any] = {}
        for shard, report in zip(shards, results):
            if report is None or report[0] != "ok":
                continue
            _, outcomes, rstates, rmsgs, _wall, _pid = report
            for item, enc in zip(shard, outcomes):
                if enc is not None:
                    table[self._key(item)] = _decode(enc, rstates, rmsgs)
        self._table = table
        p.stats.explore_rounds_parallel += 1
        p.stats.explore_shards += len(shards)
        if p.emitter.enabled:
            p.emitter.event(
                "parallel_round",
                number=self._round_no,
                items=len(items),
                shards=len(shards),
                workers=self.workers,
                sync_misses=misses,
                dispatch_s=round(time.perf_counter() - started, 6),
            )
            for index, report in enumerate(results):
                if report is not None and report[0] == "ok":
                    p.emitter.emit_span(
                        "worker_explore",
                        report[4],
                        fields={"shard": index, "items": len(shards[index])},
                        pid=report[5],
                    )

    def _dispatch(
        self,
        encoded: List[Tuple[List[Any], List[Tuple]]],
        base: int,
        high: int,
        delta_blob: bytes,
    ) -> Tuple[List[Optional[Tuple]], int]:
        """Submit every shard; resolve sync-misses with a full-log resend."""
        p = self._pass
        executor = shared_executor(self.workers)
        futures = [
            executor.submit(
                explore_shard_task,
                self._token,
                self._proto_blob,
                base,
                high,
                delta_blob,
                states,
                items,
            )
            for states, items in encoded
        ]
        results: List[Optional[Tuple]] = [future.result() for future in futures]
        misses = 0
        full_blob: Optional[bytes] = None
        for index, report in enumerate(results):
            if report is None or report[0] != "sync":
                continue
            misses += 1
            if full_blob is None:
                full_blob = pickle.dumps(
                    tuple((s.seq, s.message) for s in p.network.messages_since(0))
                )
            states, items = encoded[index]
            retried = executor.submit(
                explore_shard_task,
                self._token,
                self._proto_blob,
                0,
                high,
                full_blob,
                states,
                items,
            ).result()
            results[index] = retried if retried[0] == "ok" else None
        return results, misses

    # -- frontier snapshot -------------------------------------------------

    def _snapshot(self) -> List[Tuple]:
        """The round-start frontier, mirroring the serial sweep's gates.

        Prefilters apply only the gates that cannot flip mid-round
        (``discarded`` is one-way, ``crashed``/``depth``/``history`` are
        frozen at discovery) — the replay re-evaluates every gate in serial
        order anyway, so over- or under-shipping here affects only how much
        speculative work the pool gets, never the results.  Cursors are
        *not* advanced; the serial sweep owns them.
        """
        p = self._pass
        items: List[Tuple] = []
        max_depth = p.budget.max_depth
        for node in p.space.node_ids:
            records = p.space.store(node).records
            for stored in p.network.for_destination(node):
                for index in range(stored.cursor, len(records)):
                    record = records[index]
                    if record.discarded or record.crashed:
                        continue
                    if max_depth is not None and record.depth >= max_depth:
                        continue
                    if stored.hash in record.history:
                        continue
                    items.append(("d", record, stored))
        bound = p.local_event_bound
        for node in p.space.node_ids:
            records = p.space.store(node).records
            for index in range(p._local_cursor[node], len(records)):
                record = records[index]
                if record.discarded or record.crashed:
                    continue
                if max_depth is not None and record.depth >= max_depth:
                    continue
                if bound is not None and record.local_depth >= bound:
                    continue
                items.append(("i", record))
        if p.config.fault_events_enabled:
            limit = p.config.max_total_crashes
            crashes_left = limit is None or p._crashes_executed < limit
            for node in p.space.node_ids:
                records = p.space.store(node).records
                for index in range(p._fault_cursor[node], len(records)):
                    record = records[index]
                    if record.discarded:
                        continue
                    if max_depth is not None and record.depth >= max_depth:
                        continue
                    if record.crashed:
                        items.append(("r", record))
                        continue
                    if record.crashes >= p.config.max_crashes_per_node:
                        continue
                    if crashes_left:
                        items.append(("c", record))
        return items

    @staticmethod
    def _encode_shard(shard: List[Tuple]) -> Tuple[List[Any], List[Tuple]]:
        """Ship each distinct record state once per shard, items by index."""
        states: List[Any] = []
        positions: Dict[Tuple[Any, int], int] = {}
        items: List[Tuple] = []
        for item in shard:
            kind = item[0]
            record = item[1]
            key = (record.node, record.index)
            sidx = positions.get(key)
            if sidx is None:
                sidx = len(states)
                positions[key] = sidx
                states.append(record.state)
            if kind == "d":
                items.append(("d", sidx, item[2].seq))
            elif kind == "i":
                items.append(("i", sidx))
            else:
                items.append((kind, sidx, record.node))
        return states, items

    @staticmethod
    def _key(item: Tuple) -> Tuple:
        kind = item[0]
        record = item[1]
        if kind == "d":
            return ("d", record.node, record.index, item[2].seq)
        return (kind, record.node, record.index)

    # -- table consults (None == compute inline) ---------------------------

    def delivery(
        self, record: "NodeStateRecord", stored: "StoredMessage"
    ) -> Optional[Any]:
        """Precomputed outcome of delivering ``stored`` to ``record``."""
        table = self._table
        if table is None:
            return None
        return table.get(("d", record.node, record.index, stored.seq))

    def internal_actions(
        self, record: "NodeStateRecord"
    ) -> Optional[Tuple[Tuple[Action, ...], Tuple[Any, ...]]]:
        """Precomputed ``(actions, outcomes)`` for ``record``'s local sweep.

        The action tuple is the worker's ``enabled_actions`` enumeration — a
        pure function of the (shipped, equal) state, so it matches what the
        coordinator would enumerate, in the same order.
        """
        table = self._table
        if table is None:
            return None
        hit = table.get(("i", record.node, record.index))
        if hit is None:
            return None
        return hit[1], hit[2]

    def crash(self, record: "NodeStateRecord") -> Optional[SpecExec]:
        """Precomputed crash projection of ``record``."""
        table = self._table
        if table is None:
            return None
        return table.get(("c", record.node, record.index))

    def restart(self, record: "NodeStateRecord") -> Optional[SpecExec]:
        """Precomputed restart boot of the crashed marker ``record``."""
        table = self._table
        if table is None:
            return None
        return table.get(("r", record.node, record.index))
