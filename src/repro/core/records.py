"""Per-node state records: the sets ``LS_n`` with predecessor pointers.

LMC's entire persistent state is, per node ``n``, the append-only list of
distinct local states discovered so far.  Each state carries:

* ``predecessors`` — "all the last immediate node states as well as the
  executed events on them that led to the current node state" (Fig. 9,
  line 14).  Following the paper's prototype, a link stores *hashes*: the
  predecessor state hash, the event hash, the hash of the consumed message
  (for network events) and the hashes of the generated messages — exactly
  what the fast soundness replay needs.  We additionally retain the event
  value itself so confirmed bugs can print readable witness traces.
* ``history`` — the hashes of messages already executed along the path that
  first discovered this state (§4.2 "Duplicate messages" rules (i)/(ii)):
  a message in the history is never redelivered to this state or its
  descendants.  Matching the paper's simplification, history is set only at
  first discovery.
* ``depth`` / ``local_depth`` — events (resp. internal events) on the
  discovery path, for depth bounds and the per-round local-event bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.model.events import Event
from repro.model.hashing import content_hash, content_size
from repro.model.types import NodeId

#: Deterministic memory model: bytes charged per predecessor link (five
#: 64-bit hashes plus container overhead) and per history entry.
LINK_BYTES = 48
HISTORY_ENTRY_BYTES = 8
INDEX_ENTRY_BYTES = 16


@dataclass(frozen=True)
class PredecessorLink:
    """One way of reaching a node state: predecessor + event + message hashes.

    ``prev_hash`` is ``None`` for the initial (live) state, which has no
    predecessor.  ``consumed_hash`` is the hash of the delivered message for
    network events and ``None`` for internal events.  ``generated_hashes``
    are the hashes of the messages the handler emitted, in emission order.
    """

    prev_hash: Optional[int]
    event: Event
    event_hash: int
    consumed_hash: Optional[int]
    generated_hashes: Tuple[int, ...]

    def identity(self) -> Tuple[Optional[int], int]:
        """Deduplication key: same predecessor + same event is the same link."""
        return (self.prev_hash, self.event_hash)


class NodeStateRecord:
    """A visited local state of one node, with discovery metadata."""

    __slots__ = (
        "node",
        "state",
        "hash",
        "index",
        "depth",
        "local_depth",
        "history",
        "predecessors",
        "seed",
        "discarded",
        "crashed",
        "crashes",
        "state_size",
        "_link_keys",
    )

    def __init__(
        self,
        node: NodeId,
        state: object,
        state_hash: int,
        index: int,
        depth: int,
        local_depth: int,
        history: FrozenSet[int],
        crashes: int = 0,
        crashed: bool = False,
        state_size: Optional[int] = None,
    ):
        self.node = node
        self.state = state
        self.hash = state_hash
        self.index = index
        self.depth = depth
        self.local_depth = local_depth
        self.history = history
        self.predecessors: List[PredecessorLink] = []
        #: True for the live/snapshot state the search was seeded with; seed
        #: states are where backward path enumeration terminates.
        self.seed = False
        #: True once a local assertion fired on this state under the
        #: "discard" policy (§4.2): the state is deemed invalid and excluded
        #: from further event execution and from system-state combinations.
        self.discarded = False
        #: True when ``state`` is a :class:`~repro.model.types.CrashedState`
        #: marker minted by the fault scheduler (docs/FAULTS.md).  A crashed
        #: record executes no events (only a restart applies to it) and never
        #: joins an invariant-checked system state.  Immutable after
        #: construction, so the active-record cache key stays valid.
        self.crashed = crashed
        #: Crash events on the discovery path that first reached this state
        #: (like ``depth``/``local_depth``, frozen at first discovery — the
        #: paper's simplification).  Bounded by ``max_crashes_per_node``.
        self.crashes = crashes
        #: Canonical-encoding size of ``state``, when a caller already knows
        #: it (parallel-exploration workers ship it next to the hash so the
        #: coordinator's memory accounting never re-encodes a shipped state);
        #: computed lazily — and then cached — otherwise.
        self.state_size = state_size
        self._link_keys: set = set()

    def add_predecessor(self, link: PredecessorLink) -> bool:
        """Record a new way of reaching this state; False if already known."""
        key = link.identity()
        if key in self._link_keys:
            return False
        self._link_keys.add(key)
        self.predecessors.append(link)
        return True

    @property
    def is_initial(self) -> bool:
        """True for the live/snapshot state LMC was started from."""
        return self.seed

    def retained_bytes(self) -> int:
        """Deterministic memory footprint of this record."""
        size = self.state_size
        if size is None:
            size = self.state_size = content_size(self.state)
        return (
            size
            + INDEX_ENTRY_BYTES
            + LINK_BYTES * len(self.predecessors)
            + HISTORY_ENTRY_BYTES * len(self.history)
        )

    def __repr__(self) -> str:
        return (
            f"NodeStateRecord(node={self.node}, index={self.index}, "
            f"depth={self.depth}, links={len(self.predecessors)}, "
            f"state={self.state!r})"
        )


class NodeStateStore:
    """The set ``LS_n``: append-only distinct states of one node.

    States live in a list in discovery order — the paper's deque, which the
    monotonic network's per-message cursors index into — with a hash index
    for O(1) duplicate detection.
    """

    def __init__(self, node: NodeId):
        self.node = node
        self.records: List[NodeStateRecord] = []
        self._by_hash: Dict[int, NodeStateRecord] = {}
        #: Structural version: bumped when a record is added and — via
        #: :meth:`note_link` — when a predecessor pointer lands anywhere in
        #: the store.  The soundness verifier keys its per-record sequence
        #: memo on this, so a memoised path enumeration is reused exactly
        #: until the predecessor DAG could have changed.
        self.version = 0
        self._discards = 0
        self._active_cache: Optional[Tuple[Tuple[int, int], List[NodeStateRecord]]] = None

    def lookup(self, state_hash: int) -> Optional[NodeStateRecord]:
        """The record with this state hash, if the state was visited."""
        return self._by_hash.get(state_hash)

    def note_link(self) -> None:
        """Record that a predecessor pointer was added to some record here."""
        self.version += 1

    def mark_discarded(self, record: NodeStateRecord) -> None:
        """Discard ``record`` (§4.2 assertion policy), keeping caches honest."""
        if not record.discarded:
            record.discarded = True
            self._discards += 1
            self._active_cache = None

    def active_records(self) -> List[NodeStateRecord]:
        """Non-discarded, non-crashed records in discovery order, cached.

        System-state enumeration reads this list once per new anchor; the
        cache is invalidated by growth or discards, so steady-state rounds
        stop rebuilding an O(states) list per enumeration.  Crashed marker
        records are excluded here — a down node joins no invariant-checked
        system state — and since ``crashed`` is immutable after construction
        the (length, discards) cache key needs no extra component.
        """
        key = (len(self.records), self._discards)
        cached = self._active_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        active = [
            record
            for record in self.records
            if not record.discarded and not record.crashed
        ]
        self._active_cache = (key, active)
        return active

    def add(
        self,
        state: object,
        state_hash: int,
        depth: int,
        local_depth: int,
        history: FrozenSet[int],
        crashes: int = 0,
        crashed: bool = False,
        state_size: Optional[int] = None,
    ) -> NodeStateRecord:
        """Append a new (unvisited) state; caller must have checked lookup."""
        if state_hash in self._by_hash:
            raise ValueError(f"state already stored for node {self.node}")
        record = NodeStateRecord(
            node=self.node,
            state=state,
            state_hash=state_hash,
            index=len(self.records),
            depth=depth,
            local_depth=local_depth,
            history=history,
            crashes=crashes,
            crashed=crashed,
            state_size=state_size,
        )
        self.records.append(record)
        self._by_hash[state_hash] = record
        self.version += 1
        return record

    def restore_record(
        self,
        state: object,
        state_hash: int,
        depth: int,
        local_depth: int,
        history: FrozenSet[int],
        crashes: int,
        crashed: bool,
        seed: bool,
        discarded: bool,
        state_size: Optional[int],
    ) -> NodeStateRecord:
        """Reinstate one checkpointed record (docs/CHECKPOINTS.md).

        Appends like :meth:`add` but also reinstates the flags ``add``
        leaves to the checker (``seed``, ``discarded``).  The caller
        replays predecessor links afterwards and then calls
        :meth:`finalize_restore` to pin the structural version.
        """
        record = self.add(
            state,
            state_hash,
            depth=depth,
            local_depth=local_depth,
            history=history,
            crashes=crashes,
            crashed=crashed,
            state_size=state_size,
        )
        record.seed = seed
        record.discarded = discarded
        return record

    def finalize_restore(self, version: int) -> None:
        """Pin the checkpointed structural version after a restore.

        :meth:`restore_record` and the replayed predecessor links bumped
        ``version`` on their own schedule; overwriting it with the
        checkpointed value makes a snapshot→restore→snapshot round trip
        byte-identical, and keeps future bumps aligned with the original
        run.  Discard and active-record caches are recomputed from the
        reinstated flags.
        """
        self.version = version
        self._discards = sum(1 for record in self.records if record.discarded)
        self._active_cache = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def retained_bytes(self) -> int:
        """Deterministic memory footprint of the whole store."""
        return sum(record.retained_bytes() for record in self.records)


class LocalStateSpace:
    """All per-node stores: the variable ``LS`` of Fig. 9."""

    def __init__(self, node_ids: Tuple[NodeId, ...]):
        self.node_ids = tuple(node_ids)
        self.stores: Dict[NodeId, NodeStateStore] = {
            node: NodeStateStore(node) for node in self.node_ids
        }

    def store(self, node: NodeId) -> NodeStateStore:
        """The store ``LS_n`` for ``node``."""
        return self.stores[node]

    def seed(self, node: NodeId, state: object) -> NodeStateRecord:
        """Install the live/snapshot state of ``node`` (Fig. 9 lines 3-4)."""
        state_hash = content_hash(state)
        record = self.stores[node].add(
            state, state_hash, depth=0, local_depth=0, history=frozenset()
        )
        record.seed = True
        return record

    def total_states(self) -> int:
        """Distinct node states across all nodes (the LMC-local curve)."""
        return sum(len(store) for store in self.stores.values())

    def max_depth(self) -> int:
        """Deepest discovery depth of any node state."""
        depth = 0
        for store in self.stores.values():
            for record in store:
                if record.depth > depth:
                    depth = record.depth
        return depth

    def retained_bytes(self) -> int:
        """Deterministic memory footprint across nodes."""
        return sum(store.retained_bytes() for store in self.stores.values())
