"""Configuration of the local model checker.

Every pragmatic knob the paper describes in §4.2 is explicit here, so each
can be exercised, tested and ablated individually:

* the duplicate-message limit ("This limit is set to zero for the results
  reported in this paper");
* the per-round local-event bound with iterative widening ("in each round we
  put a bound on the number of local events that each node can execute;
  after finishing the round, the bounds are increased and the model checking
  is started from scratch");
* the local-assertion policy (discard the node state vs. ignore);
* phase toggles used by the Fig. 13 overhead decomposition (disable system
  state creation / disable soundness verification);
* the optional re-verification of cached rejected violations when new
  predecessor pointers appear — the completeness patch §4.2 sketches
  ("we could cache the system states in which an invariant is violated and
  reverify them after the changes into LS that affect them") which the
  paper's prototype leaves out but this library implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LMCConfig:
    """Knobs of :class:`~repro.core.checker.LocalModelChecker`."""

    #: Extra copies of an identical message admitted into ``I+`` (§4.2).
    duplicate_limit: int = 0

    #: Starting bound on local (internal) events per node along any discovery
    #: path; ``None`` disables the bound (single un-widened run).
    local_event_bound: Optional[int] = None

    #: When a local-event bound is set and the bounded run saturates without
    #: exhausting the budget, widen the bound by this factor (≥ 1 adds, the
    #: paper just says "increased") and restart from scratch.  0 disables
    #: widening.
    widen_increment: int = 1

    #: Use the invariant's decomposition to create only system states whose
    #: local projections can conflict (LMC-OPT, §4.2).  Requires the invariant
    #: to be a :class:`~repro.invariants.base.DecomposableInvariant`; ignored
    #: otherwise.
    invariant_specific_creation: bool = False

    #: Fig. 13 phase toggle: materialise system states and check invariants.
    #: Disabled gives the "LMC-explore" configuration.
    create_system_states: bool = True

    #: Fig. 13 phase toggle: verify preliminary violations.  Disabled gives
    #: the "LMC-system-state" configuration: violations are counted but never
    #: confirmed or reported.
    verify_soundness: bool = True

    #: Local assertion policy (§4.2): "discard" drops the node state that the
    #: failing handler would have produced (the paper's choice — assertions in
    #: the tested code mostly flag unexpected messages, i.e. invalid states
    #: minted by LMC's conservative delivery); "ignore" keeps exploring as if
    #: the handler were a no-op.
    assertion_policy: str = "discard"

    #: Upper bound on event sequences enumerated per node during one
    #: soundness verification; prevents the §5.2 exponential path blow-up
    #: from hanging a single call.  ``None`` removes the cap.
    max_sequences_per_node: Optional[int] = 256

    #: Upper bound on sequence *combinations* tried per soundness call.
    max_combinations_per_check: Optional[int] = 8192

    #: For :class:`~repro.invariants.base.LocalInvariant` violations, how
    #: many system-state completions (combinations of the *other* nodes'
    #: states) to try before giving the violating node state up as invalid.
    #: A local violation is a bug iff *some* valid system state contains the
    #: state, so this cap bounds a secondary search; like the soundness caps
    #: it trades completeness for bounded work.
    max_completions_per_local_violation: Optional[int] = 64

    #: In the pairwise LMC-OPT enumerator, how many completions over the
    #: remaining nodes to build per conflicting pair of node states.
    max_completions_per_conflict: Optional[int] = 128

    #: Extension beyond the paper's prototype: cache preliminary violations
    #: whose soundness check failed and re-verify them when a new predecessor
    #: pointer is added to any node state they contain.  Restores the
    #: completeness the prototype trades away (§4.2 "Implementation
    #: details"); off by default to match the paper.
    reverify_rejected: bool = False

    #: Stop the whole run at the first confirmed bug.
    stop_on_first_bug: bool = True

    #: With ``verify_soundness=False``, keep the violating combinations for
    #: later (batched or parallel) verification instead of dropping them.
    #: Used by :class:`~repro.core.parallel.ParallelLocalModelChecker`, which
    #: exploits the paper's observation that exploration, system-state
    #: creation and soundness verification are decoupled and "can be
    #: embarrassingly parallelized".
    collect_preliminary: bool = False

    #: Cap on collected unverified combinations.  Bounds both memory and the
    #: per-combination work-unit construction of the parallel verifier.
    max_collected_preliminary: int = 2048

    #: Memoize soundness machinery: per-record sequence enumerations (keyed
    #: on the store version, so new states or predecessor pointers
    #: invalidate exactly) and replay verdicts (keyed on the event hashes of
    #: the combination, which determine the replay outcome).  Semantics are
    #: unchanged — §5.4 counters (``soundness_calls``/``soundness_sequences``)
    #: count cached combinations exactly as uncached ones.
    memoize_soundness: bool = True

    #: LRU bound on cached replay verdicts; ``None`` removes the bound.
    replay_cache_limit: Optional[int] = 4096

    #: LRU bound on the ``reverify_rejected`` combination cache; evictions
    #: trade the §4.2 completeness patch back for bounded memory on long
    #: online runs and are surfaced as ``rejected_cache_evictions``.
    #: ``None`` removes the bound.
    rejected_cache_limit: Optional[int] = 4096

    #: Explore crash/restart fault schedules (docs/FAULTS.md): the checker
    #: additionally mints a :class:`~repro.model.events.CrashEvent` for every
    #: eligible visited node state and a
    #: :class:`~repro.model.events.RestartEvent` for every crashed one.  Off
    #: by default — the paper's event vocabulary, and byte-identical counters,
    #: verdicts and witnesses to a build without the fault scheduler.
    fault_events_enabled: bool = False

    #: Maximum crashes along any single node's discovery path (the per-record
    #: crash count, mirroring how ``local_depth`` bounds local events).  Only
    #: consulted when ``fault_events_enabled``.
    max_crashes_per_node: int = 1

    #: Global cap on crash events executed across the whole run; ``None``
    #: leaves only the per-node bound.  Only consulted when
    #: ``fault_events_enabled``.
    max_total_crashes: Optional[int] = None

    #: Explore message-drop fault schedules (docs/FAULTS.md): the checker
    #: additionally mints a :class:`~repro.model.events.DropEvent` for every
    #: undelivered stored copy whose destination protocol declares a
    #: ``handle_drop`` hook, consuming the copy (it becomes never-deliverable
    #: along that branch).  Off by default and byte-identical-off.
    drop_faults: bool = False

    #: Global cap on drop events executed across the whole run; ``None``
    #: leaves drops bounded only by the finite message space.  Only
    #: consulted when ``drop_faults``.
    max_drops: Optional[int] = None

    #: Explore message-duplication fault schedules (docs/FAULTS.md): the
    #: checker re-admits each generated message once through the network's
    #: ``duplicate_limit`` path and redelivers the fault-minted copy via a
    #: :class:`~repro.model.events.DuplicateEvent`.  Requires
    #: ``duplicate_limit >= 1`` (the admission budget).  Off by default and
    #: byte-identical-off.
    duplicate_faults: bool = False

    #: Timed network-partition schedules (docs/FAULTS.md): each entry is a
    #: ``(start_round, end_round, srcs, dests)`` tuple blocking delivery of
    #: messages from any node in ``srcs`` to any node in ``dests`` while the
    #: checker's round number lies in ``[start_round, end_round]``
    #: (``end_round=None`` = permanent).  Blocked deliveries are counted as
    #: ``partition_blocks`` and retried once the window closes.  Empty (the
    #: default) is byte-identical to a build without partition support.
    partition_schedules: tuple = ()

    #: Worker processes for parallel frontier exploration
    #: (docs/PERFORMANCE.md): each round, the per-node frontier of pending
    #: deliveries, internal actions and fault steps is sharded across the
    #: persistent worker pool, which precomputes handler results and content
    #: hashes; the coordinator then replays the exact serial sweep consuming
    #: those results, so counters, verdicts and witnesses are byte-identical
    #: to the serial checker.  ``0`` (the default) keeps exploration fully
    #: in-process; ``None`` uses ``os.cpu_count()``.
    explore_workers: Optional[int] = 0

    #: Minimum frontier items per exploration shard: below this, fewer (or
    #: larger) shards are used so dispatch overhead never exceeds the work
    #: shipped.  Only consulted when ``explore_workers`` enables parallelism.
    explore_shard_min: int = 64

    #: Rounds with fewer frontier items than this run entirely serially —
    #: early rounds are tiny (a handful of seeds and their first messages)
    #: and pay pool latency without amortizing it.
    explore_round_threshold: int = 128

    #: Symmetry reduction (docs/REDUCTION.md): canonicalise system-state
    #: combinations to orbit representatives under the protocol-declared
    #: node-symmetry group (the optional ``symmetry_classes()`` hook) before
    #: invariant checking, so permutations of interchangeable nodes are
    #: checked once.  Requires a π-invariant system invariant; preserves
    #: verdicts (same bugs, a canonical witness) and reduces
    #: ``system_states_created``.  Off by default — and byte-identical-off:
    #: with the knob off no reducer object exists and every counter, verdict
    #: and witness matches a build without the feature.
    symmetry_reduction: bool = False

    #: Commutativity-based pruning (docs/REDUCTION.md): suppress the
    #: non-canonical predecessor pointer of a same-node delivery-order
    #: diamond when the two deliveries provably commute (neither message was
    #: generated by the other's execution).  Thins the predecessor DAG the
    #: soundness verifier enumerates — fewer ``soundness_sequences`` — at
    #: the cost of a documented conservatism (a suppressed ordering can, in
    #: principle, hide the only valid witness of a combination; never a
    #: false positive).  Off by default and byte-identical-off.
    por_pruning: bool = False

    #: Write a durable checkpoint (docs/CHECKPOINTS.md) every N completed
    #: exploration rounds; ``None`` disables the cadence (a checkpointer, if
    #: attached, then writes only on SIGTERM and at pass completion).
    #: Checkpoints are bookkeeping outside the explored state: every counter,
    #: verdict and witness is byte-identical with the cadence on or off.
    checkpoint_every_rounds: Optional[int] = None

    #: Reuse incremental per-node structures during system-state creation:
    #: cached active-record lists and — for pairwise LMC-OPT — a per-node
    #: index of records with non-``None`` projections, so each anchored
    #: enumeration stops rescanning every visited state.  Enumeration order
    #: (and therefore every count and witness) is unchanged.
    incremental_enumeration: bool = True

    def __post_init__(self) -> None:
        if self.duplicate_limit < 0:
            raise ValueError("duplicate_limit must be >= 0")
        if self.local_event_bound is not None and self.local_event_bound < 0:
            raise ValueError("local_event_bound must be >= 0")
        if self.widen_increment < 0:
            raise ValueError("widen_increment must be >= 0")
        if self.assertion_policy not in ("discard", "ignore"):
            raise ValueError(
                f"assertion_policy must be 'discard' or 'ignore', "
                f"got {self.assertion_policy!r}"
            )
        for name in (
            "max_sequences_per_node",
            "max_combinations_per_check",
            "replay_cache_limit",
            "rejected_cache_limit",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
        if self.explore_workers is not None and self.explore_workers < 0:
            raise ValueError("explore_workers must be >= 0 or None")
        if self.explore_shard_min < 1:
            raise ValueError("explore_shard_min must be >= 1")
        if self.explore_round_threshold < 1:
            raise ValueError("explore_round_threshold must be >= 1")
        if self.checkpoint_every_rounds is not None and self.checkpoint_every_rounds < 1:
            raise ValueError("checkpoint_every_rounds must be >= 1 or None")
        if self.max_crashes_per_node < 0:
            raise ValueError("max_crashes_per_node must be >= 0")
        if self.max_total_crashes is not None and self.max_total_crashes < 0:
            raise ValueError("max_total_crashes must be >= 0 or None")
        if self.max_drops is not None and self.max_drops < 0:
            raise ValueError("max_drops must be >= 0 or None")
        if self.duplicate_faults and self.duplicate_limit < 1:
            raise ValueError(
                "duplicate_faults requires duplicate_limit >= 1 "
                "(the admission budget for fault-minted copies)"
            )
        for entry in self.partition_schedules:
            if not (isinstance(entry, tuple) and len(entry) == 4):
                raise ValueError(
                    "partition_schedules entries must be "
                    "(start_round, end_round, srcs, dests) tuples"
                )
            start, end, srcs, dests = entry
            if not (isinstance(start, int) and start >= 1):
                raise ValueError("partition start_round must be an int >= 1")
            if end is not None and not (isinstance(end, int) and end >= start):
                raise ValueError(
                    "partition end_round must be None or an int >= start_round"
                )
            for side, name in ((srcs, "srcs"), (dests, "dests")):
                if not (
                    isinstance(side, tuple)
                    and side
                    and all(isinstance(node, int) for node in side)
                ):
                    raise ValueError(
                        f"partition {name} must be a non-empty tuple of node ids"
                    )

    @classmethod
    def general(cls, **overrides: object) -> "LMCConfig":
        """The LMC-GEN configuration of §5: no invariant-specific creation."""
        return cls(invariant_specific_creation=False, **overrides)  # type: ignore[arg-type]

    @classmethod
    def optimized(cls, **overrides: object) -> "LMCConfig":
        """The LMC-OPT configuration of §5: invariant-specific creation on."""
        return cls(invariant_specific_creation=True, **overrides)  # type: ignore[arg-type]
